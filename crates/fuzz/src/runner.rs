//! The fuzzing loop: seeded mutation, crash capture, round-trip checking
//! and coverage-light corpus growth.

use crate::mutate::Mutator;
use crate::rng::XorShift64;
use crate::target::{FuzzTarget, TargetOutcome};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Bounds of one fuzzing run. Everything is derived from `seed`, so a
/// run is replayable bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed for the mutation stream.
    pub seed: u64,
    /// Mutated inputs to execute.
    pub iterations: u64,
    /// Upper bound on input size in bytes.
    pub max_len: usize,
    /// Upper bound on corpus growth (seeds always stay).
    pub max_corpus: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED,
            iterations: 2_000,
            max_len: 1 << 14,
            max_corpus: 512,
        }
    }
}

/// Why an input is a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// The decoder unwound instead of returning a typed error.
    Panic {
        /// Rendered panic payload.
        message: String,
    },
    /// Decode→encode of an accepted input is not a fixed point: the
    /// canonical bytes re-decoded to something that re-encodes
    /// differently (or stopped decoding at all).
    RoundTripDivergence {
        /// Canonical bytes after the first decode/encode.
        first: Vec<u8>,
        /// What the second decode/encode produced (empty on rejection).
        second: Vec<u8>,
    },
}

/// One input that violated the target contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The offending target.
    pub target: &'static str,
    /// The exact input bytes (replayable).
    pub input: Vec<u8>,
    /// What went wrong.
    pub kind: FindingKind,
}

/// Aggregate statistics of one fuzzing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// Target fuzzed.
    pub target: &'static str,
    /// Inputs executed (corpus replays + mutated iterations).
    pub executions: u64,
    /// Inputs the decoder accepted.
    pub accepted: u64,
    /// Inputs the decoder rejected with a typed error.
    pub rejected: u64,
    /// Final corpus size.
    pub corpus_size: usize,
    /// Distinct outcome signatures (the coverage-light feedback signal).
    pub distinct_signatures: u64,
    /// Contract violations found (empty on a clean run).
    pub findings: Vec<Finding>,
}

fn signature(outcome: &TargetOutcome) -> u64 {
    let mut h = DefaultHasher::new();
    match outcome {
        TargetOutcome::Rejected { error } => (0u8, error).hash(&mut h),
        TargetOutcome::Accepted { canonical } => (1u8, canonical).hash(&mut h),
    }
    h.finish()
}

/// Runs `input` through `target` with panic capture.
fn execute(target: &dyn FuzzTarget, input: &[u8]) -> Result<TargetOutcome, String> {
    catch_unwind(AssertUnwindSafe(|| target.run(input))).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        }
    })
}

/// Checks the full target contract on one input: no panic, and accepted
/// inputs canonicalise to a decode/encode fixed point. `Ok(outcome)`
/// means the contract held.
pub fn check_input(target: &dyn FuzzTarget, input: &[u8]) -> Result<TargetOutcome, Finding> {
    let outcome = execute(target, input).map_err(|message| Finding {
        target: target.name(),
        input: input.to_vec(),
        kind: FindingKind::Panic { message },
    })?;
    if let TargetOutcome::Accepted { canonical } = &outcome {
        match execute(target, canonical) {
            Err(message) => {
                return Err(Finding {
                    target: target.name(),
                    input: canonical.clone(),
                    kind: FindingKind::Panic { message },
                })
            }
            Ok(TargetOutcome::Rejected { error }) => {
                return Err(Finding {
                    target: target.name(),
                    input: input.to_vec(),
                    kind: FindingKind::RoundTripDivergence {
                        first: canonical.clone(),
                        second: error.into_bytes(),
                    },
                })
            }
            Ok(TargetOutcome::Accepted { canonical: again }) if again != *canonical => {
                return Err(Finding {
                    target: target.name(),
                    input: input.to_vec(),
                    kind: FindingKind::RoundTripDivergence {
                        first: canonical.clone(),
                        second: again,
                    },
                })
            }
            Ok(TargetOutcome::Accepted { .. }) => {}
        }
    }
    Ok(outcome)
}

/// Fuzzes one target: replays the corpus (built-in seeds plus
/// `extra_corpus`, e.g. loaded from `fuzz/corpus/`), then runs
/// `cfg.iterations` mutated inputs, growing the corpus whenever an input
/// produces an outcome signature not seen before.
pub fn fuzz_target(
    target: &dyn FuzzTarget,
    extra_corpus: &[Vec<u8>],
    cfg: &FuzzConfig,
) -> FuzzReport {
    let mut report = FuzzReport {
        target: target.name(),
        executions: 0,
        accepted: 0,
        rejected: 0,
        corpus_size: 0,
        distinct_signatures: 0,
        findings: Vec::new(),
    };
    let mut corpus: Vec<Vec<u8>> = target.seeds();
    corpus.extend(extra_corpus.iter().cloned());
    corpus.retain(|input| input.len() <= cfg.max_len);
    if corpus.is_empty() {
        corpus.push(Vec::new());
    }
    let mut signatures: HashSet<u64> = HashSet::new();

    // Replay the whole starting corpus first: regressions and seeds must
    // uphold the contract before mutation starts.
    for input in corpus.clone() {
        report.executions += 1;
        match check_input(target, &input) {
            Ok(outcome) => {
                signatures.insert(signature(&outcome));
                match outcome {
                    TargetOutcome::Accepted { .. } => report.accepted += 1,
                    TargetOutcome::Rejected { .. } => report.rejected += 1,
                }
            }
            Err(finding) => report.findings.push(finding),
        }
    }

    let mutator = Mutator::new(target.dictionary(), cfg.max_len);
    let mut rng = XorShift64::new(cfg.seed);
    for _ in 0..cfg.iterations {
        let input = if corpus.len() >= 2 && rng.chance(1, 8) {
            let a = rng.below(corpus.len());
            let b = rng.below(corpus.len());
            mutator.splice(&mut rng, &corpus[a], &corpus[b])
        } else {
            let base = rng.below(corpus.len());
            mutator.mutate(&mut rng, &corpus[base])
        };
        report.executions += 1;
        match check_input(target, &input) {
            Ok(outcome) => {
                match outcome {
                    TargetOutcome::Accepted { .. } => report.accepted += 1,
                    TargetOutcome::Rejected { .. } => report.rejected += 1,
                }
                // Coverage-light feedback: a never-seen outcome signature
                // marks an input that reached new decoder behaviour.
                if signatures.insert(signature(&outcome)) && corpus.len() < cfg.max_corpus {
                    corpus.push(input);
                }
            }
            Err(finding) => report.findings.push(finding),
        }
    }

    report.corpus_size = corpus.len();
    report.distinct_signatures = signatures.len() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::registry;

    /// A deliberately broken target: panics on `0xFF`, and violates the
    /// fixed-point contract for inputs starting with `b'x'` by prepending
    /// another `b'x'` on every encode.
    struct BuggyTarget;

    impl FuzzTarget for BuggyTarget {
        fn name(&self) -> &'static str {
            "buggy"
        }
        fn dictionary(&self) -> &'static [&'static [u8]] {
            &[&[0xFF], b"x"]
        }
        fn seeds(&self) -> Vec<Vec<u8>> {
            vec![b"ok".to_vec()]
        }
        fn run(&self, input: &[u8]) -> TargetOutcome {
            if input.contains(&0xFF) {
                panic!("boom");
            }
            if input.first() == Some(&b'x') {
                let mut grown = input.to_vec();
                grown.insert(0, b'x');
                return TargetOutcome::Accepted { canonical: grown };
            }
            TargetOutcome::Accepted {
                canonical: input.to_vec(),
            }
        }
    }

    #[test]
    fn runner_catches_panics_and_roundtrip_divergence() {
        let report = fuzz_target(
            &BuggyTarget,
            &[],
            &FuzzConfig {
                seed: 1,
                iterations: 400,
                ..FuzzConfig::default()
            },
        );
        assert!(
            report
                .findings
                .iter()
                .any(|f| matches!(f.kind, FindingKind::Panic { .. })),
            "panic on 0xFF not caught"
        );
        assert!(
            report
                .findings
                .iter()
                .any(|f| matches!(f.kind, FindingKind::RoundTripDivergence { .. })),
            "fixed-point violation not caught"
        );
    }

    #[test]
    fn check_input_flags_the_exact_panic_input() {
        let finding = check_input(&BuggyTarget, &[b'a', 0xFF]).unwrap_err();
        assert_eq!(finding.input, vec![b'a', 0xFF]);
        assert!(matches!(finding.kind, FindingKind::Panic { ref message } if message == "boom"));
    }

    #[test]
    fn fuzz_run_is_seed_deterministic() {
        let target = &registry()[0];
        let cfg = FuzzConfig {
            seed: 77,
            iterations: 300,
            ..FuzzConfig::default()
        };
        let a = fuzz_target(target.as_ref(), &[], &cfg);
        let b = fuzz_target(target.as_ref(), &[], &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn real_targets_smoke_clean() {
        for target in registry() {
            let report = fuzz_target(
                target.as_ref(),
                &[],
                &FuzzConfig {
                    seed: 0xF00D,
                    iterations: 500,
                    ..FuzzConfig::default()
                },
            );
            assert!(
                report.findings.is_empty(),
                "{}: {:?}",
                target.name(),
                report.findings
            );
            assert!(report.rejected > 0, "{} rejected nothing", target.name());
            assert!(
                report.distinct_signatures > 5,
                "{} explored almost nothing",
                target.name()
            );
        }
    }
}
