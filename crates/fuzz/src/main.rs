//! `mp-fuzz` — the offline fuzz runner.
//!
//! ```text
//! mp-fuzz [--target csv|exchange|envelope|frame|all] [--seed N] [--iters N]
//!         [--emit-seeds]
//! ```
//!
//! Replays the on-disk corpus (`fuzz/corpus/<target>/` plus
//! `fuzz/corpus/regressions/<target>/`), then runs `--iters` seeded
//! mutations per target. Any contract violation (panic, round-trip
//! divergence) is written to `fuzz/corpus/regressions/<target>/` under a
//! content-hash name — commit the file and the regression replays in CI
//! forever — and the process exits non-zero. `--emit-seeds` refreshes the
//! built-in seed files under `fuzz/corpus/<target>/` and exits.

use mp_fuzz::{
    corpus_root, fuzz_target, load_corpus_dir, registry, Finding, FindingKind, FuzzConfig,
};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("mp-fuzz: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<bool, String> {
    let mut target_filter = "all".to_owned();
    let mut seed: u64 = 0x5EED;
    let mut iters: u64 = 2_000;
    let mut emit_seeds = false;
    let mut replay: Option<String> = None;
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--target" => target_filter = take(&mut args, "--target")?,
            "--seed" => seed = parse(&take(&mut args, "--seed")?)?,
            "--iters" => iters = parse(&take(&mut args, "--iters")?)?,
            "--emit-seeds" => emit_seeds = true,
            "--replay" => replay = Some(take(&mut args, "--replay")?),
            "--help" | "-h" => {
                println!(
                    "usage: mp-fuzz [--target csv|exchange|envelope|frame|all] [--seed N] [--iters N] [--emit-seeds]"
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let targets: Vec<_> = registry()
        .into_iter()
        .filter(|t| target_filter == "all" || t.name() == target_filter)
        .collect();
    if targets.is_empty() {
        return Err(format!(
            "unknown target `{target_filter}` (expected csv, exchange, envelope, frame or all)"
        ));
    }

    if let Some(path) = replay {
        if target_filter == "all" {
            return Err("--replay needs an explicit --target".to_owned());
        }
        let target = targets.first().ok_or("no target")?;
        let input = std::fs::read(&path).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "replaying {} bytes against `{}`",
            input.len(),
            target.name()
        );
        std::panic::set_hook(Box::new(|_| {}));
        let verdict = mp_fuzz::check_input(target.as_ref(), &input);
        let _ = std::panic::take_hook();
        match verdict {
            Ok(outcome) => {
                println!("contract holds: {outcome:?}");
                return Ok(true);
            }
            Err(finding) => {
                println!("finding: {finding:?}");
                return Ok(false);
            }
        }
    }

    if emit_seeds {
        for target in &targets {
            let dir = corpus_root().join(target.name());
            std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
            for (i, bytes) in target.seeds().iter().enumerate() {
                let path = dir.join(format!("seed-{i:02}.bin"));
                std::fs::write(&path, bytes).map_err(|e| e.to_string())?;
                println!("wrote {}", path.display());
            }
        }
        return Ok(true);
    }

    // A panicking decoder is a *finding*, not console noise: silence the
    // default hook while fuzzing so reports stay readable.
    std::panic::set_hook(Box::new(|_| {}));
    let mut clean = true;
    for target in &targets {
        let mut extra = Vec::new();
        for dir in [
            corpus_root().join(target.name()),
            corpus_root().join("regressions").join(target.name()),
        ] {
            for (_, bytes) in load_corpus_dir(&dir).map_err(|e| e.to_string())? {
                extra.push(bytes);
            }
        }
        let cfg = FuzzConfig {
            seed,
            iterations: iters,
            ..FuzzConfig::default()
        };
        let report = fuzz_target(target.as_ref(), &extra, &cfg);
        let _ = std::panic::take_hook();
        println!(
            "{:>9}: {} execs (seed {seed}), {} accepted, {} rejected, corpus {}, {} signatures, {} findings",
            report.target,
            report.executions,
            report.accepted,
            report.rejected,
            report.corpus_size,
            report.distinct_signatures,
            report.findings.len()
        );
        std::panic::set_hook(Box::new(|_| {}));
        for finding in &report.findings {
            clean = false;
            report_finding(finding)?;
        }
    }
    let _ = std::panic::take_hook();
    if !clean {
        eprintln!("contract violations found; inputs saved under fuzz/corpus/regressions/");
    }
    Ok(clean)
}

fn report_finding(finding: &Finding) -> Result<(), String> {
    let dir = corpus_root().join("regressions").join(finding.target);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let mut h = DefaultHasher::new();
    finding.input.hash(&mut h);
    let path = dir.join(format!("{:016x}.bin", h.finish()));
    std::fs::write(&path, &finding.input).map_err(|e| e.to_string())?;
    match &finding.kind {
        FindingKind::Panic { message } => {
            eprintln!(
                "[{}] PANIC `{message}` on {} bytes -> {}",
                finding.target,
                finding.input.len(),
                path.display()
            );
        }
        FindingKind::RoundTripDivergence { first, second } => {
            eprintln!(
                "[{}] ROUND-TRIP divergence ({} -> {} vs {} bytes) -> {}",
                finding.target,
                finding.input.len(),
                first.len(),
                second.len(),
                path.display()
            );
        }
    }
    Ok(())
}

fn take(args: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    args.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse(value: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("`{value}` is not a number"))
}
