//! Corpus replay as plain tests: every committed seed and regression
//! input must uphold the full target contract (no panic, typed errors
//! only, canonical round-trip fixed point) on every CI run — no fuzzing
//! budget involved.

use mp_fuzz::{check_input, corpus_root, load_corpus_dir, registry};

#[test]
fn committed_corpus_replays_clean() {
    let mut replayed = 0usize;
    for target in registry() {
        for dir in [
            corpus_root().join(target.name()),
            corpus_root().join("regressions").join(target.name()),
        ] {
            for (name, bytes) in load_corpus_dir(&dir).expect("corpus dir readable") {
                if let Err(finding) = check_input(target.as_ref(), &bytes) {
                    panic!(
                        "regression {}/{name} violates the {} contract: {finding:?}",
                        dir.display(),
                        target.name()
                    );
                }
                replayed += 1;
            }
        }
    }
    assert!(
        replayed >= 12,
        "expected the committed corpus (seeds + regressions), replayed only {replayed}"
    );
}

#[test]
fn built_in_seeds_replay_clean() {
    for target in registry() {
        for (i, seed) in target.seeds().iter().enumerate() {
            assert!(
                check_input(target.as_ref(), seed).is_ok(),
                "{} built-in seed {i} violates the contract",
                target.name()
            );
        }
    }
}
