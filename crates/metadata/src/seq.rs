//! Sequential dependencies (SDs).
//!
//! From the RFD survey's order-based family: on tuples ordered by X,
//! consecutive Y values change by a *bounded gap* —
//! `x_i < x_{i+1} ⇒ y_{i+1} − y_i ∈ [min_gap, max_gap]`. An SD is stronger
//! than the OD it implies when `min_gap ≥ 0` (monotone with bounded
//! steps), and like the OD/DD classes its metadata is structural: bounds,
//! not values.

use mp_relation::{Relation, Result, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sequential dependency `X ↦ Y gaps ∈ [min_gap, max_gap]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequentialDep {
    /// Ordering attribute X.
    pub lhs: usize,
    /// Gap-constrained numeric attribute Y.
    pub rhs: usize,
    /// Smallest allowed consecutive gap.
    pub min_gap: f64,
    /// Largest allowed consecutive gap.
    pub max_gap: f64,
}

impl SequentialDep {
    /// Creates the SD.
    pub fn new(lhs: usize, rhs: usize, min_gap: f64, max_gap: f64) -> Self {
        Self {
            lhs,
            rhs,
            min_gap,
            max_gap,
        }
    }

    /// Consecutive (by ascending X, nulls skipped, X-ties collapsed to
    /// their first row) Y-gaps of the relation. `None` if Y has non-null
    /// non-numeric values.
    pub fn gaps(lhs: usize, rhs: usize, relation: &Relation) -> Result<Option<Vec<f64>>> {
        let xs = &relation.column_values(lhs)?;
        let ys = &relation.column_values(rhs)?;
        if ys.iter().any(|v| !v.is_null() && v.as_f64().is_none()) {
            return Ok(None);
        }
        let mut pairs: Vec<(&Value, f64)> = xs
            .iter()
            .zip(ys.iter())
            .filter_map(|(x, y)| {
                if x.is_null() {
                    None
                } else {
                    y.as_f64().map(|y| (x, y))
                }
            })
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        let mut gaps = Vec::new();
        let mut prev: Option<(&Value, f64)> = None;
        for (x, y) in pairs {
            if let Some((px, py)) = prev {
                if px == x {
                    continue; // tie on X: keep the first representative
                }
                gaps.push(y - py);
            }
            prev = Some((x, y));
        }
        Ok(Some(gaps))
    }

    /// Exact validation: every consecutive gap lies in `[min_gap, max_gap]`.
    pub fn holds(&self, relation: &Relation) -> Result<bool> {
        match Self::gaps(self.lhs, self.rhs, relation)? {
            None => Ok(false),
            Some(gaps) => Ok(gaps
                .iter()
                .all(|g| *g >= self.min_gap - 1e-12 && *g <= self.max_gap + 1e-12)),
        }
    }

    /// The tightest `[min_gap, max_gap]` for which the SD holds; `None`
    /// when there are no consecutive pairs or Y is non-numeric.
    pub fn tight_bounds(lhs: usize, rhs: usize, relation: &Relation) -> Result<Option<(f64, f64)>> {
        match Self::gaps(lhs, rhs, relation)? {
            None => Ok(None),
            Some(gaps) if gaps.is_empty() => Ok(None),
            Some(gaps) => {
                let lo = gaps.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = gaps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                Ok(Some((lo, hi)))
            }
        }
    }
}

impl fmt::Display for SequentialDep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SD {} -> {} (gaps in [{}, {}])",
            self.lhs, self.rhs, self.min_gap, self.max_gap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Schema};

    fn rel(rows: &[(f64, f64)]) -> Relation {
        let schema =
            Schema::new(vec![Attribute::continuous("x"), Attribute::continuous("y")]).unwrap();
        Relation::from_rows(
            schema,
            rows.iter()
                .map(|&(x, y)| vec![x.into(), y.into()])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn gaps_follow_x_order() {
        // Rows unsorted on purpose; sorted by x: y = 10, 12, 15 → gaps 2, 3.
        let r = rel(&[(3.0, 15.0), (1.0, 10.0), (2.0, 12.0)]);
        assert_eq!(
            SequentialDep::gaps(0, 1, &r).unwrap().unwrap(),
            vec![2.0, 3.0]
        );
        assert_eq!(
            SequentialDep::tight_bounds(0, 1, &r).unwrap(),
            Some((2.0, 3.0))
        );
        assert!(SequentialDep::new(0, 1, 2.0, 3.0).holds(&r).unwrap());
        assert!(!SequentialDep::new(0, 1, 2.5, 3.0).holds(&r).unwrap());
        assert!(!SequentialDep::new(0, 1, 0.0, 2.5).holds(&r).unwrap());
    }

    #[test]
    fn x_ties_collapse_to_first() {
        let r = rel(&[(1.0, 10.0), (1.0, 99.0), (2.0, 11.0)]);
        assert_eq!(SequentialDep::gaps(0, 1, &r).unwrap().unwrap(), vec![1.0]);
    }

    #[test]
    fn negative_gaps_allowed_by_bounds() {
        let r = rel(&[(1.0, 10.0), (2.0, 8.0), (3.0, 9.0)]);
        assert!(SequentialDep::new(0, 1, -2.0, 1.0).holds(&r).unwrap());
        assert_eq!(
            SequentialDep::tight_bounds(0, 1, &r).unwrap(),
            Some((-2.0, 1.0))
        );
    }

    #[test]
    fn nonmonotone_fails_monotone_sd() {
        let r = rel(&[(1.0, 10.0), (2.0, 8.0)]);
        assert!(!SequentialDep::new(0, 1, 0.0, 5.0).holds(&r).unwrap());
    }

    #[test]
    fn degenerate_inputs() {
        let r = rel(&[(1.0, 10.0)]);
        assert_eq!(
            SequentialDep::gaps(0, 1, &r).unwrap().unwrap(),
            Vec::<f64>::new()
        );
        assert_eq!(SequentialDep::tight_bounds(0, 1, &r).unwrap(), None);
        // No pairs → holds vacuously.
        assert!(SequentialDep::new(0, 1, 0.0, 0.0).holds(&r).unwrap());
    }

    #[test]
    fn text_rhs_is_undefined() {
        let schema = Schema::new(vec![
            Attribute::continuous("x"),
            Attribute::categorical("t"),
        ])
        .unwrap();
        let r = Relation::from_rows(
            schema,
            vec![vec![1.0.into(), "a".into()], vec![2.0.into(), "b".into()]],
        )
        .unwrap();
        assert_eq!(SequentialDep::gaps(0, 1, &r).unwrap(), None);
        assert!(!SequentialDep::new(0, 1, -1e9, 1e9).holds(&r).unwrap());
    }

    #[test]
    fn serde_and_display() {
        let sd = SequentialDep::new(0, 1, -1.0, 2.0);
        let json = serde_json::to_string(&sd).unwrap();
        assert_eq!(serde_json::from_str::<SequentialDep>(&json).unwrap(), sd);
        assert!(sd.to_string().contains("gaps in [-1, 2]"));
    }
}
