//! Redaction policies over metadata packages.
//!
//! The paper's conclusion recommends a specific disclosure level: *"feature
//! names and dependencies should be communicated without the domain and
//! type."* A [`SharePolicy`] encodes which fields of a
//! [`MetadataPackage`] survive the exchange, with presets for every level
//! the paper discusses.

use crate::dependency::Dependency;
use crate::exchange::{AttributeMeta, MetadataPackage};
use serde::{Deserialize, Serialize};

/// Which metadata fields a party is willing to disclose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharePolicy {
    /// Share attribute kinds (types).
    pub kinds: bool,
    /// Share attribute domains (§III-A shows this enables leakage).
    pub domains: bool,
    /// Share value distributions (leaks more than domains — the collision
    /// probability Σp² exceeds 1/|D| for any non-uniform data).
    pub distributions: bool,
    /// Share the tuple count.
    pub row_count: bool,
    /// Share strict functional dependencies (§III-B).
    pub fds: bool,
    /// Share relaxed functional dependencies (§IV: AFD/OD/ND/DD/OFD).
    pub rfds: bool,
}

impl SharePolicy {
    /// Names only — the minimum for schema matching.
    pub const NAMES_ONLY: SharePolicy = SharePolicy {
        kinds: false,
        domains: false,
        distributions: false,
        row_count: false,
        fds: false,
        rfds: false,
    };

    /// Names, kinds and domains — what the paper observes *"current
    /// federated learning frameworks"* commonly exchange (§III).
    pub const NAMES_AND_DOMAINS: SharePolicy = SharePolicy {
        kinds: true,
        domains: true,
        distributions: false,
        row_count: true,
        fds: false,
        rfds: false,
    };

    /// Everything: names, kinds, domains, row count and all dependencies.
    pub const FULL: SharePolicy = SharePolicy {
        kinds: true,
        domains: true,
        distributions: true,
        row_count: true,
        fds: true,
        rfds: true,
    };

    /// The paper's recommendation (§VI): names and dependencies, but *no*
    /// domains or types.
    pub const PAPER_RECOMMENDED: SharePolicy = SharePolicy {
        kinds: false,
        domains: false,
        distributions: false,
        row_count: true,
        fds: true,
        rfds: true,
    };

    /// Applies the policy, producing the redacted package that actually
    /// crosses the trust boundary.
    pub fn apply(&self, pkg: &MetadataPackage) -> MetadataPackage {
        let attributes = pkg
            .attributes
            .iter()
            .map(|a| AttributeMeta {
                name: a.name.clone(),
                kind: if self.kinds { a.kind } else { None },
                domain: if self.domains { a.domain.clone() } else { None },
                distribution: if self.distributions {
                    a.distribution.clone()
                } else {
                    None
                },
            })
            .collect();
        let dependencies = pkg
            .dependencies
            .iter()
            .filter(|d| match d {
                Dependency::Fd(_) => self.fds,
                _ => self.rfds,
            })
            .cloned()
            .collect();
        MetadataPackage {
            format_version: pkg.format_version,
            party: pkg.party.clone(),
            attributes,
            dependencies,
            n_rows: if self.row_count { pkg.n_rows } else { None },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::{Fd, OrderDep};
    use mp_relation::{Attribute, Relation, Schema};

    fn pkg() -> MetadataPackage {
        let schema = Schema::new(vec![
            Attribute::categorical("dept"),
            Attribute::continuous("salary"),
        ])
        .unwrap();
        let rel = Relation::from_rows(
            schema,
            vec![
                vec!["Sales".into(), 20.0.into()],
                vec!["CS".into(), 30.0.into()],
            ],
        )
        .unwrap();
        MetadataPackage::describe(
            "bank",
            &rel,
            vec![Fd::new(0usize, 1).into(), OrderDep::ascending(0, 1).into()],
        )
        .unwrap()
    }

    #[test]
    fn names_only_strips_everything() {
        let out = SharePolicy::NAMES_ONLY.apply(&pkg());
        assert_eq!(out.arity(), 2);
        assert_eq!(out.attributes[0].name, "dept");
        assert!(out
            .attributes
            .iter()
            .all(|a| a.kind.is_none() && a.domain.is_none()));
        assert!(out.dependencies.is_empty());
        assert_eq!(out.n_rows, None);
    }

    #[test]
    fn names_and_domains_keeps_domains_not_deps() {
        let out = SharePolicy::NAMES_AND_DOMAINS.apply(&pkg());
        assert!(out.shares_domains());
        assert!(!out.shares_dependencies());
        assert_eq!(out.n_rows, Some(2));
    }

    #[test]
    fn full_keeps_all() {
        let out = SharePolicy::FULL.apply(&pkg());
        assert_eq!(out, pkg());
    }

    #[test]
    fn paper_recommended_shares_deps_without_domains() {
        let out = SharePolicy::PAPER_RECOMMENDED.apply(&pkg());
        assert!(!out.shares_domains());
        assert!(out.attributes.iter().all(|a| a.kind.is_none()));
        assert_eq!(out.dependencies.len(), 2);
    }

    #[test]
    fn fd_rfd_split_is_respected() {
        let only_fds = SharePolicy {
            fds: true,
            rfds: false,
            ..SharePolicy::FULL
        };
        let out = only_fds.apply(&pkg());
        assert_eq!(out.dependencies.len(), 1);
        assert!(matches!(out.dependencies[0], Dependency::Fd(_)));

        let only_rfds = SharePolicy {
            fds: false,
            rfds: true,
            ..SharePolicy::FULL
        };
        let out = only_rfds.apply(&pkg());
        assert_eq!(out.dependencies.len(), 1);
        assert!(matches!(out.dependencies[0], Dependency::Od(_)));
    }

    #[test]
    fn serde_roundtrip() {
        let p = SharePolicy::PAPER_RECOMMENDED;
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<SharePolicy>(&json).unwrap(), p);
    }
}
