//! The metadata package a VFL party shares before training.
//!
//! This is the wire artefact at the heart of the paper: *"Participating
//! parties exchange dataset-related information in the preliminary stage of
//! model training ... specifically metadata that describes the content of
//! their respective data."* A [`MetadataPackage`] carries exactly the
//! metadata kinds the paper analyses — attribute names, kinds (types),
//! domains, row count, and (relaxed) functional dependencies — each
//! individually omittable so redaction policies can be expressed.

use crate::dependency::Dependency;
use crate::distribution::Distribution;
use crate::graph::DependencyGraph;
use mp_relation::{AttrKind, Domain, Relation, Result};
use serde::{Deserialize, Serialize};

/// The wire-format version written by [`MetadataPackage::to_json`].
///
/// Decoding accepts packages carrying this version or none at all
/// (pre-versioning packages); anything else is an
/// [`ExchangeError::UnsupportedVersion`], so a future incompatible format
/// fails loudly instead of being half-parsed.
pub const FORMAT_VERSION: u32 = 1;

/// Errors decoding a metadata exchange package.
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeError {
    /// The JSON itself was malformed or did not match the package schema.
    Json(String),
    /// The package declares a wire-format version this build cannot read.
    UnsupportedVersion {
        /// Version declared by the package.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::Json(msg) => write!(f, "malformed metadata package: {msg}"),
            ExchangeError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported package format version {found} (this build reads version {supported})"
            ),
        }
    }
}

impl std::error::Error for ExchangeError {}

/// Metadata shared about a single attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeMeta {
    /// The feature name (always present — it is the minimum needed to refer
    /// to the attribute at all).
    pub name: String,
    /// The attribute kind (type), if shared.
    pub kind: Option<AttrKind>,
    /// The attribute domain, if shared.
    pub domain: Option<Domain>,
    /// The attribute's value distribution, if shared — a disclosure level
    /// above the domain (see [`Distribution`]). Absent in the paper's
    /// setting ("the distribution is not communicated").
    #[serde(default)]
    pub distribution: Option<Distribution>,
}

/// Everything one party shares about its relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetadataPackage {
    /// Wire-format version ([`FORMAT_VERSION`]); `None` on packages from
    /// builds that predate versioning, which decode identically.
    #[serde(default)]
    pub format_version: Option<u32>,
    /// Identifier of the sharing party (e.g. `"bank"`).
    pub party: String,
    /// Per-attribute metadata, in schema order.
    pub attributes: Vec<AttributeMeta>,
    /// Shared dependencies (possibly empty).
    pub dependencies: Vec<Dependency>,
    /// Number of tuples, if shared. After PSI alignment both parties know
    /// the intersection size, so this is usually shared implicitly.
    pub n_rows: Option<usize>,
}

impl MetadataPackage {
    /// Builds the *full-disclosure* package for a relation: names, kinds,
    /// inferred domains, row count and the given dependencies.
    ///
    /// Redaction policies ([`crate::SharePolicy`]) then strip fields.
    pub fn describe(
        party: impl Into<String>,
        relation: &Relation,
        dependencies: Vec<Dependency>,
    ) -> Result<Self> {
        let mut attributes = Vec::with_capacity(relation.arity());
        for (i, attr) in relation.schema().iter() {
            attributes.push(AttributeMeta {
                name: attr.name.clone(),
                kind: Some(attr.kind),
                domain: Some(Domain::infer(relation, i)?),
                distribution: None,
            });
        }
        Ok(Self {
            format_version: Some(FORMAT_VERSION),
            party: party.into(),
            attributes,
            dependencies,
            n_rows: Some(relation.n_rows()),
        })
    }

    /// Builds the package like [`MetadataPackage::describe`] but also
    /// attaches estimated value distributions (`buckets` histogram bins
    /// for continuous attributes) — the over-sharing scenario analysed in
    /// `mp-core::analytical::distribution`.
    pub fn describe_with_distributions(
        party: impl Into<String>,
        relation: &Relation,
        dependencies: Vec<Dependency>,
        buckets: usize,
    ) -> Result<Self> {
        let mut pkg = Self::describe(party, relation, dependencies)?;
        for (i, meta) in pkg.attributes.iter_mut().enumerate() {
            meta.distribution = Distribution::estimate(relation, i, buckets).ok();
        }
        Ok(pkg)
    }

    /// `true` if any attribute's distribution is shared.
    pub fn shares_distributions(&self) -> bool {
        self.attributes.iter().any(|a| a.distribution.is_some())
    }

    /// Number of attributes described.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Index of the attribute named `name`, if described.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// The dependency graph induced by the shared dependencies.
    pub fn dependency_graph(&self) -> std::result::Result<DependencyGraph, String> {
        DependencyGraph::new(self.arity(), self.dependencies.clone())
    }

    /// Serialises to JSON (the exchange wire format).
    pub fn to_json(&self) -> String {
        // The vendored serializer is total over the Content tree, so the
        // Err arm is unreachable; mapping it to the empty string keeps
        // this encoder panic-free (it is a fuzz target).
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Deserialises from JSON, rejecting packages whose declared
    /// [`format_version`](Self::format_version) this build cannot read.
    pub fn from_json(json: &str) -> std::result::Result<Self, ExchangeError> {
        let pkg: Self =
            serde_json::from_str(json).map_err(|e| ExchangeError::Json(e.to_string()))?;
        match pkg.format_version {
            None | Some(FORMAT_VERSION) => Ok(pkg),
            Some(found) => Err(ExchangeError::UnsupportedVersion {
                found,
                supported: FORMAT_VERSION,
            }),
        }
    }

    /// `true` if any attribute's domain is shared — per the paper's
    /// conclusion, *this* is the field enabling random-generation leakage.
    pub fn shares_domains(&self) -> bool {
        self.attributes.iter().any(|a| a.domain.is_some())
    }

    /// `true` if any dependencies are shared.
    pub fn shares_dependencies(&self) -> bool {
        !self.dependencies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::Fd;
    use mp_relation::{Attribute, Schema, Value};

    fn rel() -> Relation {
        let schema = Schema::new(vec![
            Attribute::categorical("dept"),
            Attribute::continuous("salary"),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec!["Sales".into(), 20.0.into()],
                vec!["CS".into(), 30.0.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn describe_is_full_disclosure() {
        let pkg =
            MetadataPackage::describe("bank", &rel(), vec![Fd::new(0usize, 1).into()]).unwrap();
        assert_eq!(pkg.arity(), 2);
        assert_eq!(pkg.n_rows, Some(2));
        assert!(pkg.shares_domains());
        assert!(pkg.shares_dependencies());
        assert_eq!(pkg.attributes[0].kind, Some(AttrKind::Categorical));
        let dom = pkg.attributes[0].domain.as_ref().unwrap();
        assert!(dom.contains(&Value::Text("Sales".into())));
        assert_eq!(pkg.index_of("salary"), Some(1));
        assert_eq!(pkg.index_of("nope"), None);
    }

    #[test]
    fn json_roundtrip() {
        let pkg =
            MetadataPackage::describe("bank", &rel(), vec![Fd::new(0usize, 1).into()]).unwrap();
        let json = pkg.to_json();
        let back = MetadataPackage::from_json(&json).unwrap();
        assert_eq!(back, pkg);
    }

    #[test]
    fn version_tagged_and_legacy_packages_decode() {
        let pkg =
            MetadataPackage::describe("bank", &rel(), vec![Fd::new(0usize, 1).into()]).unwrap();
        assert_eq!(pkg.format_version, Some(FORMAT_VERSION));
        // A pre-versioning package (no format_version key) still decodes.
        let legacy = r#"{"party": "old", "attributes": [], "dependencies": [], "n_rows": null}"#;
        let back = MetadataPackage::from_json(legacy).unwrap();
        assert_eq!(back.format_version, None);
        assert_eq!(back.party, "old");
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let pkg =
            MetadataPackage::describe("bank", &rel(), vec![Fd::new(0usize, 1).into()]).unwrap();
        let json = pkg.to_json().replace(
            &format!("\"format_version\": {FORMAT_VERSION}"),
            "\"format_version\": 99",
        );
        match MetadataPackage::from_json(&json) {
            Err(ExchangeError::UnsupportedVersion { found: 99, .. }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_duplicate_key_packages_are_rejected() {
        let pkg =
            MetadataPackage::describe("bank", &rel(), vec![Fd::new(0usize, 1).into()]).unwrap();
        let json = pkg.to_json();
        // Truncation at any prefix must be a typed error, never a panic.
        for cut in [0, 1, json.len() / 2, json.len() - 1] {
            assert!(
                matches!(
                    MetadataPackage::from_json(&json[..cut]),
                    Err(ExchangeError::Json(_))
                ),
                "truncation at byte {cut} must be rejected"
            );
        }
        // A duplicated key cannot smuggle a second, conflicting value.
        let dup = json.replacen(
            "\"party\": \"bank\"",
            "\"party\": \"bank\", \"party\": \"evil\"",
            1,
        );
        match MetadataPackage::from_json(&dup) {
            Err(ExchangeError::Json(msg)) => assert!(msg.contains("duplicate")),
            other => panic!("expected duplicate-key rejection, got {other:?}"),
        }
    }

    #[test]
    fn graph_from_package() {
        let pkg =
            MetadataPackage::describe("bank", &rel(), vec![Fd::new(0usize, 1).into()]).unwrap();
        let g = pkg.dependency_graph().unwrap();
        assert_eq!(g.n_attrs(), 2);
        assert_eq!(g.dependencies().len(), 1);
    }

    #[test]
    fn invalid_dependency_range_surfaces() {
        let pkg =
            MetadataPackage::describe("bank", &rel(), vec![Fd::new(0usize, 7).into()]).unwrap();
        assert!(pkg.dependency_graph().is_err());
    }
}
