//! Conditional functional dependencies (CFDs).
//!
//! The paper cites CFDs (Bohannon et al., ref \[7\]) as the data-cleaning
//! workhorse among FD extensions, and the RFD survey it draws on treats
//! them as a core class. A CFD is an embedded FD plus a *pattern tableau*
//! whose cells are constants or wildcards; crucially, **the constants are
//! data values**. That puts CFDs in a different privacy class from every
//! dependency in the paper's §III/§IV: sharing one ships actual cells of
//! `R_real` inside the metadata (see `mp-core`'s `analytical::cfd` for the
//! quantified extra leakage).
//!
//! This implementation supports single-pattern-tuple CFDs
//! `(X → Y, tp)` where each LHS attribute carries a constant or a
//! wildcard and the RHS carries a constant or a wildcard:
//!
//! * RHS constant `c`: every tuple matching the LHS pattern must have
//!   `t[Y] = c` (a *constant CFD*).
//! * RHS wildcard: the FD `X → Y` must hold on the tuples matching the
//!   LHS pattern (a *variable CFD*).

use crate::attrset::AttrSet;
use mp_relation::{Relation, Result, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One cell of a CFD pattern tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PatternCell {
    /// Matches only this value (and, on the RHS, *forces* it).
    Const(Value),
    /// Matches anything (`_` in tableau notation).
    Wildcard,
}

impl PatternCell {
    /// `true` if the cell matches `v`.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            PatternCell::Const(c) => c == v,
            PatternCell::Wildcard => true,
        }
    }

    /// The constant, if any.
    pub fn constant(&self) -> Option<&Value> {
        match self {
            PatternCell::Const(c) => Some(c),
            PatternCell::Wildcard => None,
        }
    }
}

/// A single-pattern conditional functional dependency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConditionalFd {
    /// LHS attributes with their pattern cells.
    pub lhs: Vec<(usize, PatternCell)>,
    /// Dependent attribute.
    pub rhs: usize,
    /// RHS pattern cell.
    pub rhs_pattern: PatternCell,
}

impl ConditionalFd {
    /// A *constant CFD*: `X = x ⇒ Y = y` for single-attribute X.
    pub fn constant(lhs: usize, x: impl Into<Value>, rhs: usize, y: impl Into<Value>) -> Self {
        Self {
            lhs: vec![(lhs, PatternCell::Const(x.into()))],
            rhs,
            rhs_pattern: PatternCell::Const(y.into()),
        }
    }

    /// A *variable CFD*: the FD `X → Y` restricted to tuples where
    /// `cond_attr = cond_value`.
    pub fn variable(
        cond_attr: usize,
        cond_value: impl Into<Value>,
        fd_lhs: usize,
        rhs: usize,
    ) -> Self {
        Self {
            lhs: vec![
                (cond_attr, PatternCell::Const(cond_value.into())),
                (fd_lhs, PatternCell::Wildcard),
            ],
            rhs,
            rhs_pattern: PatternCell::Wildcard,
        }
    }

    /// The LHS attribute set.
    pub fn lhs_attrs(&self) -> AttrSet {
        AttrSet::from_iter(self.lhs.iter().map(|(a, _)| *a))
    }

    /// `true` if row `i` of `relation` matches the LHS pattern.
    pub fn row_matches(&self, relation: &Relation, i: usize) -> Result<bool> {
        for (attr, cell) in &self.lhs {
            if !cell.matches(&relation.value(i, *attr)?) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Number of tuples matching the LHS pattern (the CFD's *support*).
    pub fn support(&self, relation: &Relation) -> Result<usize> {
        let mut n = 0;
        for i in 0..relation.n_rows() {
            if self.row_matches(relation, i)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Exact validation per the CFD semantics above.
    pub fn holds(&self, relation: &Relation) -> Result<bool> {
        match &self.rhs_pattern {
            PatternCell::Const(c) => {
                for i in 0..relation.n_rows() {
                    if self.row_matches(relation, i)? && relation.value(i, self.rhs)? != *c {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            PatternCell::Wildcard => {
                // FD on the matching subset, keyed by the wildcard LHS
                // attributes (constants are fixed on the subset anyway).
                let key_attrs: Vec<usize> = self
                    .lhs
                    .iter()
                    .filter(|(_, c)| matches!(c, PatternCell::Wildcard))
                    .map(|(a, _)| *a)
                    .collect();
                let mut seen: HashMap<Vec<Value>, Value> = HashMap::new();
                for i in 0..relation.n_rows() {
                    if !self.row_matches(relation, i)? {
                        continue;
                    }
                    let key: Vec<Value> = key_attrs
                        .iter()
                        .map(|&a| relation.value(i, a))
                        .collect::<Result<_>>()?;
                    let y = relation.value(i, self.rhs)?;
                    match seen.get(&key) {
                        Some(prev) if *prev != y => return Ok(false),
                        Some(_) => {}
                        None => {
                            seen.insert(key, y);
                        }
                    }
                }
                Ok(true)
            }
        }
    }
}

impl fmt::Display for ConditionalFd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CFD (")?;
        for (i, (attr, cell)) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match cell {
                PatternCell::Const(c) => write!(f, "{attr}={c}")?,
                PatternCell::Wildcard => write!(f, "{attr}=_")?,
            }
        }
        write!(f, ") -> {}", self.rhs)?;
        match &self.rhs_pattern {
            PatternCell::Const(c) => write!(f, "={c}"),
            PatternCell::Wildcard => write!(f, "=_"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Schema};

    /// dept, role, bonus — dept=Sales forces bonus=1; within dept=CS,
    /// role → bonus.
    fn rel() -> Relation {
        let schema = Schema::new(vec![
            Attribute::categorical("dept"),
            Attribute::categorical("role"),
            Attribute::categorical("bonus"),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec!["Sales".into(), "jr".into(), "1".into()],
                vec!["Sales".into(), "sr".into(), "1".into()],
                vec!["CS".into(), "jr".into(), "0".into()],
                vec!["CS".into(), "jr".into(), "0".into()],
                vec!["CS".into(), "sr".into(), "2".into()],
                vec!["Mgmt".into(), "sr".into(), "2".into()],
                vec!["Mgmt".into(), "sr".into(), "0".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn constant_cfd_semantics() {
        let r = rel();
        let cfd = ConditionalFd::constant(0, "Sales", 2, "1");
        assert!(cfd.holds(&r).unwrap());
        assert_eq!(cfd.support(&r).unwrap(), 2);

        let wrong = ConditionalFd::constant(0, "Sales", 2, "0");
        assert!(!wrong.holds(&r).unwrap());

        // Unmatched pattern holds vacuously with zero support.
        let vacuous = ConditionalFd::constant(0, "HR", 2, "9");
        assert!(vacuous.holds(&r).unwrap());
        assert_eq!(vacuous.support(&r).unwrap(), 0);
    }

    #[test]
    fn variable_cfd_semantics() {
        let r = rel();
        // Within dept=CS: role → bonus holds (jr→0, sr→2).
        assert!(ConditionalFd::variable(0, "CS", 1, 2).holds(&r).unwrap());
        // Within dept=Mgmt it fails (sr → 2 and 0).
        assert!(!ConditionalFd::variable(0, "Mgmt", 1, 2).holds(&r).unwrap());
        // The unconditional FD role → bonus does NOT hold (jr → 1 in Sales,
        // 0 in CS) — the CFD is strictly weaker, as it should be.
        assert!(!crate::dependency::Fd::new(1usize, 2).holds(&r).unwrap());
    }

    #[test]
    fn lhs_attrs_and_matching() {
        let r = rel();
        let cfd = ConditionalFd::variable(0, "CS", 1, 2);
        assert_eq!(cfd.lhs_attrs().indices(), &[0, 1]);
        assert!(cfd.row_matches(&r, 2).unwrap());
        assert!(!cfd.row_matches(&r, 0).unwrap());
    }

    #[test]
    fn display_tableau_notation() {
        let cfd = ConditionalFd::constant(0, "Sales", 2, "1");
        assert_eq!(cfd.to_string(), "CFD (0=Sales) -> 2=1");
        let v = ConditionalFd::variable(0, "CS", 1, 2);
        assert_eq!(v.to_string(), "CFD (0=CS, 1=_) -> 2=_");
    }

    #[test]
    fn serde_roundtrip() {
        let cfd = ConditionalFd::variable(0, "CS", 1, 2);
        let json = serde_json::to_string(&cfd).unwrap();
        assert_eq!(serde_json::from_str::<ConditionalFd>(&json).unwrap(), cfd);
    }

    #[test]
    fn pattern_cell_api() {
        let c = PatternCell::Const("x".into());
        assert!(c.matches(&"x".into()));
        assert!(!c.matches(&"y".into()));
        assert_eq!(c.constant(), Some(&Value::Text("x".into())));
        assert!(PatternCell::Wildcard.matches(&Value::Null));
        assert_eq!(PatternCell::Wildcard.constant(), None);
    }
}
