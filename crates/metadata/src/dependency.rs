//! The dependency metadata types the paper analyses, with exact validation
//! semantics.
//!
//! Section II-A (functional dependencies) and Section IV (the RFD
//! selection: approximate, numerical, order, differential and ordered
//! functional dependencies) of the paper define each class; the `holds`
//! methods here implement those definitions verbatim so that discovery,
//! generation and the test suite all agree on what a dependency *means*.

use crate::attrset::AttrSet;
use crate::cfd::ConditionalFd;
use mp_relation::{Pli, Relation, Result, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A strict functional dependency `X → Y` (single right-hand attribute;
/// multi-attribute right-hand sides decompose into one FD per attribute).
///
/// Holds iff for all tuples `t, r`: `t[X] = r[X] ⇒ t[Y] = r[Y]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fd {
    /// Determinant attribute set X.
    pub lhs: AttrSet,
    /// Dependent attribute Y.
    pub rhs: usize,
}

impl Fd {
    /// Creates `lhs → rhs`.
    pub fn new(lhs: impl Into<AttrSet>, rhs: usize) -> Self {
        Self {
            lhs: lhs.into(),
            rhs,
        }
    }

    /// `true` if the FD is trivial (`rhs ∈ lhs`).
    pub fn is_trivial(&self) -> bool {
        self.lhs.contains(self.rhs)
    }

    /// Exact validation against a relation via partition refinement.
    pub fn holds(&self, relation: &Relation) -> Result<bool> {
        let lhs_pli = pli_of_set(relation, &self.lhs)?;
        let rhs_sig = Pli::from_column(&relation.column_values(self.rhs)?).full_signature();
        Ok(lhs_pli.satisfies_fd(&rhs_sig))
    }

    /// The `g3` error of the FD on `relation`: the minimum fraction of
    /// tuples to remove for it to hold (0 iff it holds exactly).
    pub fn g3_error(&self, relation: &Relation) -> Result<f64> {
        let lhs_pli = pli_of_set(relation, &self.lhs)?;
        let rhs_sig = Pli::from_column(&relation.column_values(self.rhs)?).full_signature();
        Ok(lhs_pli.g3_error(&rhs_sig))
    }
}

/// Builds Π_X for an attribute set by intersecting single-column PLIs.
///
/// The empty set yields the unit partition (all tuples agree on ∅).
pub fn pli_of_set(relation: &Relation, set: &AttrSet) -> Result<Pli> {
    let mut iter = set.iter();
    let Some(first) = iter.next() else {
        return Ok(Pli::unit(relation.n_rows()));
    };
    let mut pli = Pli::from_column(&relation.column_values(first)?);
    for attr in iter {
        let other = Pli::from_column(&relation.column_values(attr)?);
        pli = pli.intersect(&other);
    }
    Ok(pli)
}

/// An approximate functional dependency (§IV-A): `X → Y` holds after
/// removing at most a `g3_threshold` fraction of tuples (Kivinen–Mannila
/// `g3` error, paper ref \[14\]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Afd {
    /// The underlying dependency shape.
    pub fd: Fd,
    /// Maximum tolerated `g3` error ε ∈ [0, 1].
    pub g3_threshold: f64,
}

impl Afd {
    /// Creates `lhs → rhs` with tolerance `g3_threshold`.
    pub fn new(lhs: impl Into<AttrSet>, rhs: usize, g3_threshold: f64) -> Self {
        Self {
            fd: Fd::new(lhs, rhs),
            g3_threshold,
        }
    }

    /// `true` iff the `g3` error on `relation` is within the threshold.
    pub fn holds(&self, relation: &Relation) -> Result<bool> {
        Ok(self.fd.g3_error(relation)? <= self.g3_threshold + 1e-12)
    }
}

/// Direction of an order dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrderDirection {
    /// `t[X] ≤ u[X] ⇒ t[Y] ≤ u[Y]`.
    Ascending,
    /// `t[X] ≤ u[X] ⇒ t[Y] ≥ u[Y]`.
    Descending,
}

/// An order dependency between two attributes (§IV-C).
///
/// The paper's definition — `∀ t, u: t[X] ≤ u[X] → t[Y] ≤ u[Y]` — applied
/// to the pair `(u, t)` as well forces `t[X] = u[X] ⇒ t[Y] = u[Y]`; order
/// dependency therefore subsumes the FD on ties. Tuples with a null on
/// either side are skipped (their order is undefined).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OrderDep {
    /// Ordering attribute X.
    pub lhs: usize,
    /// Ordered attribute Y.
    pub rhs: usize,
    /// Monotonicity direction.
    pub direction: OrderDirection,
}

impl OrderDep {
    /// Creates an ascending OD `lhs ≤ → rhs ≤`.
    pub fn ascending(lhs: usize, rhs: usize) -> Self {
        Self {
            lhs,
            rhs,
            direction: OrderDirection::Ascending,
        }
    }

    /// Creates a descending OD `lhs ≤ → rhs ≥`.
    pub fn descending(lhs: usize, rhs: usize) -> Self {
        Self {
            lhs,
            rhs,
            direction: OrderDirection::Descending,
        }
    }

    /// Exact validation: sort the non-null pairs by X and check Y is
    /// monotone in the dependency's direction, with X-ties forcing Y-ties.
    pub fn holds(&self, relation: &Relation) -> Result<bool> {
        let xs = &relation.column_values(self.lhs)?;
        let ys = &relation.column_values(self.rhs)?;
        let mut pairs: Vec<(&Value, &Value)> = xs
            .iter()
            .zip(ys.iter())
            .filter(|(x, y)| !x.is_null() && !y.is_null())
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Ok(pairs.windows(2).all(|w| {
            let &[(x0, y0), (x1, y1)] = w else {
                return true;
            };
            if x0 == x1 {
                y0 == y1
            } else {
                match self.direction {
                    OrderDirection::Ascending => y0 <= y1,
                    OrderDirection::Descending => y0 >= y1,
                }
            }
        }))
    }
}

/// A numerical dependency `X →≤k Y` (§IV-B): every X value maps to at most
/// `k` distinct Y values. `k = 1` degenerates to the FD `X → Y`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NumericalDep {
    /// Determinant attribute X.
    pub lhs: usize,
    /// Constrained attribute Y.
    pub rhs: usize,
    /// Cardinality bound k ≥ 1.
    pub k: usize,
}

impl NumericalDep {
    /// Creates `lhs →≤k rhs`.
    pub fn new(lhs: usize, rhs: usize, k: usize) -> Self {
        Self { lhs, rhs, k }
    }

    /// The maximum number of distinct Y values associated with one X value
    /// on `relation` (the tightest k for which the ND holds). Zero for an
    /// empty relation.
    pub fn max_fanout(lhs: usize, rhs: usize, relation: &Relation) -> Result<usize> {
        let lhs_pli = Pli::from_column(&relation.column_values(lhs)?);
        let rhs_sig = Pli::from_column(&relation.column_values(rhs)?).full_signature();
        let mut max = if relation.n_rows() == 0 { 0 } else { 1 };
        let mut seen: Vec<usize> = Vec::new();
        for cluster in lhs_pli.clusters() {
            seen.clear();
            seen.extend(cluster.iter().map(|&r| rhs_sig[r]));
            seen.sort_unstable();
            seen.dedup();
            max = max.max(seen.len());
        }
        Ok(max)
    }

    /// `true` iff no X value maps to more than `k` distinct Y values.
    pub fn holds(&self, relation: &Relation) -> Result<bool> {
        Ok(Self::max_fanout(self.lhs, self.rhs, relation)? <= self.k)
    }
}

/// A differential dependency on two continuous attributes (§IV-D):
/// `|t[X] − u[X]| ≤ eps_lhs ⇒ |t[Y] − u[Y]| ≤ delta_rhs`.
///
/// Tuples with nulls on either attribute are skipped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DifferentialDep {
    /// Source attribute X.
    pub lhs: usize,
    /// Constrained attribute Y.
    pub rhs: usize,
    /// Closeness threshold on X.
    pub eps_lhs: f64,
    /// Implied closeness threshold on Y.
    pub delta_rhs: f64,
}

impl DifferentialDep {
    /// Creates the DD with the given thresholds.
    pub fn new(lhs: usize, rhs: usize, eps_lhs: f64, delta_rhs: f64) -> Self {
        Self {
            lhs,
            rhs,
            eps_lhs,
            delta_rhs,
        }
    }

    /// Exact validation. Sorting by X lets each tuple only be compared
    /// against its ε-neighbourhood, so this is `O(n log n + n·w)` where `w`
    /// is the neighbourhood width, rather than `O(n²)`.
    pub fn holds(&self, relation: &Relation) -> Result<bool> {
        let xs = &relation.column_values(self.lhs)?;
        let ys = &relation.column_values(self.rhs)?;
        let mut pairs: Vec<(f64, f64)> = xs
            .iter()
            .zip(ys.iter())
            .filter_map(|(x, y)| Some((x.as_f64()?, y.as_f64()?)))
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                if pairs[j].0 - pairs[i].0 > self.eps_lhs {
                    break;
                }
                if (pairs[j].1 - pairs[i].1).abs() > self.delta_rhs {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }
}

/// An ordered functional dependency (§IV-E, Ng \[18\]): the conjunction of
/// the FD `X → Y` and the strict-order condition
/// `t[X] < u[X] ⇒ t[Y] < u[Y]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OrderedFd {
    /// Determinant attribute X.
    pub lhs: usize,
    /// Dependent attribute Y.
    pub rhs: usize,
}

impl OrderedFd {
    /// Creates the OFD `lhs → rhs`.
    pub fn new(lhs: usize, rhs: usize) -> Self {
        Self { lhs, rhs }
    }

    /// Exact validation: equal X ⇒ equal Y, and strictly increasing X ⇒
    /// strictly increasing Y (nulls skipped).
    pub fn holds(&self, relation: &Relation) -> Result<bool> {
        let xs = &relation.column_values(self.lhs)?;
        let ys = &relation.column_values(self.rhs)?;
        let mut pairs: Vec<(&Value, &Value)> = xs
            .iter()
            .zip(ys.iter())
            .filter(|(x, y)| !x.is_null() && !y.is_null())
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Ok(pairs.windows(2).all(|w| {
            let &[(x0, y0), (x1, y1)] = w else {
                return true;
            };
            if x0 == x1 {
                y0 == y1
            } else {
                y0 < y1
            }
        }))
    }
}

/// Any dependency the paper's metadata exchange may carry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dependency {
    /// Strict functional dependency (§III-B).
    Fd(Fd),
    /// Approximate functional dependency (§IV-A).
    Afd(Afd),
    /// Order dependency (§IV-C).
    Od(OrderDep),
    /// Numerical dependency (§IV-B).
    Nd(NumericalDep),
    /// Differential dependency (§IV-D).
    Dd(DifferentialDep),
    /// Ordered functional dependency (§IV-E).
    Ofd(OrderedFd),
    /// Conditional functional dependency (paper ref \[7\]; see
    /// [`crate::ConditionalFd`] for why this class is privacy-special).
    Cfd(ConditionalFd),
}

impl Dependency {
    /// Validates the dependency against a relation using its class's exact
    /// semantics.
    pub fn holds(&self, relation: &Relation) -> Result<bool> {
        match self {
            Dependency::Fd(d) => d.holds(relation),
            Dependency::Afd(d) => d.holds(relation),
            Dependency::Od(d) => d.holds(relation),
            Dependency::Nd(d) => d.holds(relation),
            Dependency::Dd(d) => d.holds(relation),
            Dependency::Ofd(d) => d.holds(relation),
            Dependency::Cfd(d) => d.holds(relation),
        }
    }

    /// The determinant attributes.
    pub fn lhs(&self) -> AttrSet {
        match self {
            Dependency::Fd(d) => d.lhs.clone(),
            Dependency::Afd(d) => d.fd.lhs.clone(),
            Dependency::Od(d) => AttrSet::single(d.lhs),
            Dependency::Nd(d) => AttrSet::single(d.lhs),
            Dependency::Dd(d) => AttrSet::single(d.lhs),
            Dependency::Ofd(d) => AttrSet::single(d.lhs),
            Dependency::Cfd(d) => d.lhs_attrs(),
        }
    }

    /// The dependent attribute.
    pub fn rhs(&self) -> usize {
        match self {
            Dependency::Fd(d) => d.rhs,
            Dependency::Afd(d) => d.fd.rhs,
            Dependency::Od(d) => d.rhs,
            Dependency::Nd(d) => d.rhs,
            Dependency::Dd(d) => d.rhs,
            Dependency::Ofd(d) => d.rhs,
            Dependency::Cfd(d) => d.rhs,
        }
    }

    /// Short class tag used in reports (`FD`, `AFD`, `OD`, `ND`, `DD`,
    /// `OFD`).
    pub fn class(&self) -> &'static str {
        match self {
            Dependency::Fd(_) => "FD",
            Dependency::Afd(_) => "AFD",
            Dependency::Od(_) => "OD",
            Dependency::Nd(_) => "ND",
            Dependency::Dd(_) => "DD",
            Dependency::Ofd(_) => "OFD",
            Dependency::Cfd(_) => "CFD",
        }
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dependency::Fd(d) => write!(f, "FD {} -> {}", d.lhs, d.rhs),
            Dependency::Afd(d) => {
                write!(
                    f,
                    "AFD {} -> {} (g3<={})",
                    d.fd.lhs, d.fd.rhs, d.g3_threshold
                )
            }
            Dependency::Od(d) => {
                let arrow = match d.direction {
                    OrderDirection::Ascending => "<=",
                    OrderDirection::Descending => ">=",
                };
                write!(f, "OD {} {} {}", d.lhs, arrow, d.rhs)
            }
            Dependency::Nd(d) => write!(f, "ND {} ->{{{}}} {}", d.lhs, d.k, d.rhs),
            Dependency::Dd(d) => {
                write!(
                    f,
                    "DD {} (eps={}) -> {} (delta={})",
                    d.lhs, d.eps_lhs, d.rhs, d.delta_rhs
                )
            }
            Dependency::Ofd(d) => write!(f, "OFD {} -> {}", d.lhs, d.rhs),
            Dependency::Cfd(d) => write!(f, "{d}"),
        }
    }
}

impl From<Fd> for Dependency {
    fn from(d: Fd) -> Self {
        Dependency::Fd(d)
    }
}
impl From<Afd> for Dependency {
    fn from(d: Afd) -> Self {
        Dependency::Afd(d)
    }
}
impl From<OrderDep> for Dependency {
    fn from(d: OrderDep) -> Self {
        Dependency::Od(d)
    }
}
impl From<NumericalDep> for Dependency {
    fn from(d: NumericalDep) -> Self {
        Dependency::Nd(d)
    }
}
impl From<DifferentialDep> for Dependency {
    fn from(d: DifferentialDep) -> Self {
        Dependency::Dd(d)
    }
}
impl From<OrderedFd> for Dependency {
    fn from(d: OrderedFd) -> Self {
        Dependency::Ofd(d)
    }
}
impl From<ConditionalFd> for Dependency {
    fn from(d: ConditionalFd) -> Self {
        Dependency::Cfd(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Schema};

    /// The paper's Table II: employee(Name, Age, Department, Salary).
    fn employee() -> Relation {
        let schema = Schema::new(vec![
            Attribute::categorical("Name"),
            Attribute::continuous("Age"),
            Attribute::categorical("Department"),
            Attribute::continuous("Salary"),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec![
                    "Alice".into(),
                    18i64.into(),
                    "Sales".into(),
                    20_000i64.into(),
                ],
                vec![
                    "Bob".into(),
                    22i64.into(),
                    "Customer Service".into(),
                    25_000i64.into(),
                ],
                vec![
                    "Charlie".into(),
                    22i64.into(),
                    "Sales".into(),
                    27_000i64.into(),
                ],
                vec![
                    "Danny".into(),
                    26i64.into(),
                    "Management".into(),
                    35_000i64.into(),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_fds_hold() {
        let r = employee();
        // Example 2.1: Name → Age and Name → Salary.
        assert!(Fd::new(0usize, 1).holds(&r).unwrap());
        assert!(Fd::new(0usize, 3).holds(&r).unwrap());
        // Age does not determine Salary (Bob/Charlie tie on age).
        assert!(!Fd::new(1usize, 3).holds(&r).unwrap());
    }

    #[test]
    fn composite_lhs_fd() {
        let r = employee();
        // {Age, Department} → Salary holds (all pairs unique).
        assert!(Fd::new(vec![1, 2], 3).holds(&r).unwrap());
    }

    #[test]
    fn trivial_fd_detected_and_holds() {
        let r = employee();
        let fd = Fd::new(vec![1, 2], 1);
        assert!(fd.is_trivial());
        assert!(fd.holds(&r).unwrap());
    }

    #[test]
    fn empty_lhs_fd_means_constant_column() {
        let r = employee();
        assert!(!Fd::new(AttrSet::empty(), 3).holds(&r).unwrap());
        let schema = Schema::new(vec![Attribute::categorical("c")]).unwrap();
        let constant =
            Relation::from_rows(schema, vec![vec!["x".into()], vec!["x".into()]]).unwrap();
        assert!(Fd::new(AttrSet::empty(), 0).holds(&constant).unwrap());
    }

    #[test]
    fn afd_tolerates_g3_budget() {
        let r = employee();
        // Age → Salary violated by one of the two age-22 rows: g3 = 1/4.
        let err = Fd::new(1usize, 3).g3_error(&r).unwrap();
        assert!((err - 0.25).abs() < 1e-12);
        assert!(!Afd::new(1usize, 3, 0.2).holds(&r).unwrap());
        assert!(Afd::new(1usize, 3, 0.25).holds(&r).unwrap());
    }

    #[test]
    fn order_dependency_semantics() {
        let r = employee();
        // Age ≤ → Salary ≤ fails: ties on age (22) map to 25k vs 27k.
        assert!(!OrderDep::ascending(1, 3).holds(&r).unwrap());
        // Salary ≤ → Age ≤ holds: salaries are unique and age is monotone.
        assert!(OrderDep::ascending(3, 1).holds(&r).unwrap());
        // Descending direction fails on this data.
        assert!(!OrderDep::descending(3, 1).holds(&r).unwrap());
    }

    #[test]
    fn order_dependency_skips_nulls() {
        let schema =
            Schema::new(vec![Attribute::continuous("x"), Attribute::continuous("y")]).unwrap();
        let r = Relation::from_rows(
            schema,
            vec![
                vec![1.0.into(), 10.0.into()],
                vec![Value::Null, 0.0.into()],
                vec![2.0.into(), 20.0.into()],
            ],
        )
        .unwrap();
        assert!(OrderDep::ascending(0, 1).holds(&r).unwrap());
    }

    #[test]
    fn numerical_dependency_fanout() {
        let r = employee();
        // Department → Salary: Sales maps to {20k, 27k} → fanout 2.
        assert_eq!(NumericalDep::max_fanout(2, 3, &r).unwrap(), 2);
        assert!(!NumericalDep::new(2, 3, 1).holds(&r).unwrap());
        assert!(NumericalDep::new(2, 3, 2).holds(&r).unwrap());
        // k=1 ND is exactly the FD.
        assert!(NumericalDep::new(0, 3, 1).holds(&r).unwrap());
    }

    #[test]
    fn numerical_dependency_empty_relation() {
        let schema = Schema::new(vec![
            Attribute::categorical("a"),
            Attribute::categorical("b"),
        ])
        .unwrap();
        let r = Relation::empty(schema);
        assert_eq!(NumericalDep::max_fanout(0, 1, &r).unwrap(), 0);
        assert!(NumericalDep::new(0, 1, 1).holds(&r).unwrap());
    }

    #[test]
    fn differential_dependency_semantics() {
        let r = employee();
        // Ages within 4 of each other have salaries within 7k:
        // pairs (18,22):Δsal≤7k, (22,22):2k, (22,26):8k>7k → violated.
        assert!(!DifferentialDep::new(1, 3, 4.0, 7_000.0).holds(&r).unwrap());
        assert!(DifferentialDep::new(1, 3, 4.0, 10_000.0).holds(&r).unwrap());
        // eps 0 groups only exact ties: ages 22/22 → salaries differ by 2k.
        assert!(!DifferentialDep::new(1, 3, 0.0, 1_000.0).holds(&r).unwrap());
        assert!(DifferentialDep::new(1, 3, 0.0, 2_000.0).holds(&r).unwrap());
    }

    #[test]
    fn ordered_fd_semantics() {
        let r = employee();
        // Salary → Age as OFD: strictly increasing salary ⇒ strictly
        // increasing age? Ages are 18, 22, 22, 26 over sorted salary —
        // 22 repeats for distinct salaries, violating strictness.
        assert!(!OrderedFd::new(3, 1).holds(&r).unwrap());
        // Age → Salary fails (ties). Name → Salary is an FD but names are
        // not ordered consistently with salary (Alice<Bob<Charlie<Danny
        // lexicographic happens to match increasing salary) → holds.
        assert!(OrderedFd::new(0, 3).holds(&r).unwrap());
    }

    #[test]
    fn dependency_enum_dispatch() {
        let r = employee();
        let deps: Vec<Dependency> = vec![
            Fd::new(0usize, 1).into(),
            Afd::new(1usize, 3, 0.25).into(),
            OrderDep::ascending(3, 1).into(),
            NumericalDep::new(2, 3, 2).into(),
            DifferentialDep::new(1, 3, 4.0, 10_000.0).into(),
            OrderedFd::new(0, 3).into(),
        ];
        for d in &deps {
            assert!(d.holds(&r).unwrap(), "{d} should hold");
            assert!(!d.class().is_empty());
            assert!(!d.lhs().is_empty() || matches!(d, Dependency::Fd(_)));
            let _ = d.rhs();
        }
    }

    #[test]
    fn display_is_readable() {
        let d: Dependency = Fd::new(vec![0, 2], 3).into();
        assert_eq!(d.to_string(), "FD {0,2} -> 3");
        let d: Dependency = NumericalDep::new(1, 2, 4).into();
        assert_eq!(d.to_string(), "ND 1 ->{4} 2");
    }

    #[test]
    fn serde_roundtrip_all_classes() {
        let deps: Vec<Dependency> = vec![
            Fd::new(vec![0, 1], 2).into(),
            Afd::new(0usize, 1, 0.1).into(),
            OrderDep::descending(0, 1).into(),
            NumericalDep::new(0, 1, 3).into(),
            DifferentialDep::new(0, 1, 0.5, 2.0).into(),
            OrderedFd::new(0, 1).into(),
        ];
        let json = serde_json::to_string(&deps).unwrap();
        let back: Vec<Dependency> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, deps);
    }
}
