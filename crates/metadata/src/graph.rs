//! The dependency generation graph.
//!
//! The paper's evaluation section: *"The dependencies form a directed graph
//! between the attributes which is used for generation."* Nodes are
//! attributes; an edge `X → Y` exists for every shared dependency with
//! determinant X and dependent Y. The adversary generates attribute values
//! in topological order so that every dependent attribute is produced by
//! its dependency's mapping rather than independently.

use crate::attrset::AttrSet;
use crate::dependency::Dependency;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A directed graph of dependencies over `n_attrs` attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DependencyGraph {
    n_attrs: usize,
    deps: Vec<Dependency>,
}

/// One step of a generation plan: produce attribute `attr` either freely
/// from its domain or through the mapping of a dependency.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStep {
    /// Generate the attribute independently from its shared domain.
    Free {
        /// The attribute to generate.
        attr: usize,
    },
    /// Generate the attribute through dependency `dep` (indexing into
    /// [`DependencyGraph::dependencies`]), whose determinants have already
    /// been generated.
    Derive {
        /// The attribute to generate.
        attr: usize,
        /// Index of the driving dependency.
        dep: usize,
    },
}

impl PlanStep {
    /// The attribute this step produces.
    pub fn attr(&self) -> usize {
        match self {
            PlanStep::Free { attr } | PlanStep::Derive { attr, .. } => *attr,
        }
    }
}

impl DependencyGraph {
    /// Builds a graph over `n_attrs` attributes from shared dependencies.
    ///
    /// Dependencies referring to out-of-range attributes are rejected.
    pub fn new(n_attrs: usize, deps: Vec<Dependency>) -> Result<Self, String> {
        for d in &deps {
            if d.rhs() >= n_attrs || d.lhs().iter().any(|a| a >= n_attrs) {
                return Err(format!(
                    "dependency {d} references attribute out of range (n={n_attrs})"
                ));
            }
        }
        Ok(Self { n_attrs, deps })
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// The dependencies (edge labels).
    pub fn dependencies(&self) -> &[Dependency] {
        &self.deps
    }

    /// Dependencies whose dependent attribute is `attr`.
    pub fn incoming(&self, attr: usize) -> Vec<usize> {
        self.deps
            .iter()
            .enumerate()
            .filter(|(_, d)| d.rhs() == attr)
            .map(|(i, _)| i)
            .collect()
    }

    /// `true` if the edge set contains a directed cycle over attributes
    /// (ignoring self-loops from trivial dependencies).
    pub fn has_cycle(&self) -> bool {
        self.topo_order().is_none()
    }

    /// Kahn topological order of the attributes under dependency edges, or
    /// `None` if the edges are cyclic. Attributes with no dependencies sort
    /// by index for determinism.
    fn topo_order(&self) -> Option<Vec<usize>> {
        let mut indegree = vec![0usize; self.n_attrs];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); self.n_attrs];
        for d in &self.deps {
            let rhs = d.rhs();
            for l in d.lhs().iter() {
                if l != rhs {
                    out_edges[l].push(rhs);
                    indegree[rhs] += 1;
                }
            }
        }
        let mut queue: VecDeque<usize> = (0..self.n_attrs).filter(|&a| indegree[a] == 0).collect();
        let mut order = Vec::with_capacity(self.n_attrs);
        while let Some(a) = queue.pop_front() {
            order.push(a);
            for &b in &out_edges[a] {
                indegree[b] -= 1;
                if indegree[b] == 0 {
                    queue.push_back(b);
                }
            }
        }
        (order.len() == self.n_attrs).then_some(order)
    }

    /// Produces a generation plan: attributes in dependency order, each
    /// marked `Free` or `Derive`.
    ///
    /// * An attribute with at least one incoming dependency whose whole LHS
    ///   precedes it in the order is `Derive`d via the first such
    ///   dependency (FDs are preferred over RFDs when both are available,
    ///   matching the paper's "generation derives from the predefined
    ///   dependencies" methodology).
    /// * Cyclic dependency sets fall back to a deterministic order in which
    ///   cycle-breaking attributes become `Free`.
    pub fn plan(&self) -> Vec<PlanStep> {
        let order = self
            .topo_order()
            .unwrap_or_else(|| self.acyclic_fallback_order());
        let mut produced = AttrSet::empty();
        let mut plan = Vec::with_capacity(self.n_attrs);
        for &attr in &order {
            let candidates: Vec<usize> = self
                .incoming(attr)
                .into_iter()
                .filter(|&i| self.deps[i].lhs().is_subset_of(&produced))
                .filter(|&i| !self.deps[i].lhs().contains(attr))
                .collect();
            // Prefer strict FDs, then the declaration order.
            let chosen = candidates
                .iter()
                .copied()
                .find(|&i| matches!(self.deps[i], Dependency::Fd(_)))
                .or_else(|| candidates.first().copied());
            match chosen {
                Some(dep) => plan.push(PlanStep::Derive { attr, dep }),
                None => plan.push(PlanStep::Free { attr }),
            }
            produced = produced.with(attr);
        }
        plan
    }

    /// Deterministic order used when edges are cyclic: repeatedly emit the
    /// lowest-index attribute whose remaining in-edges all come from
    /// already-emitted attributes, breaking stalemates by emitting the
    /// lowest-index remaining attribute as free.
    fn acyclic_fallback_order(&self) -> Vec<usize> {
        let mut emitted = AttrSet::empty();
        let mut order = Vec::with_capacity(self.n_attrs);
        while order.len() < self.n_attrs {
            let next_ready = (0..self.n_attrs).find(|&a| {
                !emitted.contains(a)
                    && self.incoming(a).iter().all(|&i| {
                        self.deps[i]
                            .lhs()
                            .iter()
                            .all(|l| emitted.contains(l) || l == a)
                    })
            });
            let next = next_ready
                .or_else(|| (0..self.n_attrs).find(|&a| !emitted.contains(a)))
                // lint: allow(no-panic) reason="the loop guard guarantees an unemitted attribute exists for the fallback find"
                .expect("attributes remain");
            emitted = emitted.with(next);
            order.push(next);
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::{Fd, NumericalDep, OrderDep};

    fn fd(lhs: usize, rhs: usize) -> Dependency {
        Fd::new(lhs, rhs).into()
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(DependencyGraph::new(2, vec![fd(0, 5)]).is_err());
        assert!(DependencyGraph::new(2, vec![fd(5, 0)]).is_err());
        assert!(DependencyGraph::new(2, vec![fd(0, 1)]).is_ok());
    }

    #[test]
    fn plan_orders_chain() {
        // 0→1, 1→2: plan must be Free(0), Derive(1), Derive(2).
        let g = DependencyGraph::new(3, vec![fd(0, 1), fd(1, 2)]).unwrap();
        assert!(!g.has_cycle());
        let plan = g.plan();
        assert_eq!(plan[0], PlanStep::Free { attr: 0 });
        assert_eq!(plan[1], PlanStep::Derive { attr: 1, dep: 0 });
        assert_eq!(plan[2], PlanStep::Derive { attr: 2, dep: 1 });
    }

    #[test]
    fn plan_prefers_fd_over_rfd() {
        let g = DependencyGraph::new(2, vec![OrderDep::ascending(0, 1).into(), fd(0, 1)]).unwrap();
        let plan = g.plan();
        assert_eq!(plan[1], PlanStep::Derive { attr: 1, dep: 1 });
    }

    #[test]
    fn independent_attrs_are_free() {
        let g = DependencyGraph::new(3, vec![]).unwrap();
        let plan = g.plan();
        assert_eq!(plan.len(), 3);
        assert!(plan.iter().all(|s| matches!(s, PlanStep::Free { .. })));
    }

    #[test]
    fn cycle_detected_and_broken() {
        // 0→1 and 1→0: cyclic; the plan still covers both attributes,
        // deriving exactly one of them.
        let g = DependencyGraph::new(2, vec![fd(0, 1), fd(1, 0)]).unwrap();
        assert!(g.has_cycle());
        let plan = g.plan();
        assert_eq!(plan.len(), 2);
        let derives = plan
            .iter()
            .filter(|s| matches!(s, PlanStep::Derive { .. }))
            .count();
        assert_eq!(derives, 1);
    }

    #[test]
    fn composite_lhs_waits_for_all_determinants() {
        // {0,1}→2: 2 derivable only after both 0 and 1.
        let dep: Dependency = Fd::new(vec![0, 1], 2).into();
        let g = DependencyGraph::new(3, vec![dep]).unwrap();
        let plan = g.plan();
        let pos = |a: usize| plan.iter().position(|s| s.attr() == a).unwrap();
        assert!(pos(2) > pos(0) && pos(2) > pos(1));
        assert_eq!(plan[pos(2)], PlanStep::Derive { attr: 2, dep: 0 });
    }

    #[test]
    fn incoming_indices() {
        let g = DependencyGraph::new(
            3,
            vec![fd(0, 2), NumericalDep::new(1, 2, 3).into(), fd(0, 1)],
        )
        .unwrap();
        assert_eq!(g.incoming(2), vec![0, 1]);
        assert_eq!(g.incoming(1), vec![2]);
        assert!(g.incoming(0).is_empty());
    }

    #[test]
    fn self_loop_is_not_a_cycle() {
        // Trivial dependency 0→0 must not deadlock planning.
        let g = DependencyGraph::new(1, vec![fd(0, 0)]).unwrap();
        assert!(!g.has_cycle());
        assert_eq!(g.plan(), vec![PlanStep::Free { attr: 0 }]);
    }

    #[test]
    fn plan_covers_every_attribute_once() {
        let g = DependencyGraph::new(5, vec![fd(0, 1), fd(1, 2), fd(3, 4), fd(0, 4)]).unwrap();
        let plan = g.plan();
        let mut attrs: Vec<usize> = plan.iter().map(PlanStep::attr).collect();
        attrs.sort_unstable();
        assert_eq!(attrs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn serde_roundtrip() {
        let g = DependencyGraph::new(3, vec![fd(0, 1)]).unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: DependencyGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}
