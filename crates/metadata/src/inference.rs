//! Functional-dependency inference: Armstrong-axiom consequences, attribute
//! closures, implication tests, minimal covers and candidate keys.
//!
//! The paper's §III-B transitivity argument ("if A → B and B → C, then the
//! value of A will decide B, which in turn decides C") is the `implies`
//! machinery here; the generation graph uses minimal covers so the
//! adversary never materialises redundant mappings.

use crate::attrset::AttrSet;
use crate::dependency::Fd;
use std::collections::BTreeSet;

/// A set of functional dependencies over attributes `0..n_attrs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdSet {
    fds: Vec<Fd>,
    n_attrs: usize,
}

impl FdSet {
    /// Creates an FD set over a schema of `n_attrs` attributes.
    pub fn new(n_attrs: usize) -> Self {
        Self {
            fds: Vec::new(),
            n_attrs,
        }
    }

    /// Creates an FD set from existing dependencies.
    pub fn from_fds(n_attrs: usize, fds: impl IntoIterator<Item = Fd>) -> Self {
        let mut set = Self::new(n_attrs);
        for fd in fds {
            set.insert(fd);
        }
        set
    }

    /// Number of schema attributes.
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// The stored dependencies.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// Number of stored dependencies.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// `true` if no dependencies are stored.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Inserts an FD (duplicates ignored).
    pub fn insert(&mut self, fd: Fd) {
        if !self.fds.contains(&fd) {
            self.fds.push(fd);
        }
    }

    /// The closure `X⁺` of an attribute set under this FD set: the largest
    /// set of attributes functionally determined by `X`.
    ///
    /// Standard fixed-point algorithm, `O(|F| · |X⁺|)` per pass.
    pub fn closure(&self, x: &AttrSet) -> AttrSet {
        let mut closure = x.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for fd in &self.fds {
                if !closure.contains(fd.rhs) && fd.lhs.is_subset_of(&closure) {
                    closure = closure.with(fd.rhs);
                    changed = true;
                }
            }
        }
        closure
    }

    /// `true` iff this FD set logically implies `fd` (Armstrong-derivable):
    /// `fd.rhs ∈ closure(fd.lhs)`.
    pub fn implies(&self, fd: &Fd) -> bool {
        fd.is_trivial() || self.closure(&fd.lhs).contains(fd.rhs)
    }

    /// `true` iff the two FD sets imply each other (equivalent covers).
    pub fn equivalent_to(&self, other: &FdSet) -> bool {
        self.fds.iter().all(|f| other.implies(f)) && other.fds.iter().all(|f| self.implies(f))
    }

    /// Computes a minimal (canonical) cover: every FD has a left-reduced
    /// LHS, no FD is redundant, and the cover is equivalent to the input.
    pub fn minimal_cover(&self) -> FdSet {
        // 1. Drop trivial FDs; left-reduce each remaining LHS.
        let mut work: Vec<Fd> = Vec::new();
        for fd in &self.fds {
            if fd.is_trivial() {
                continue;
            }
            let mut lhs = fd.lhs.clone();
            loop {
                let mut reduced = None;
                for a in lhs.iter() {
                    let candidate = lhs.without(a);
                    if self.closure(&candidate).contains(fd.rhs) {
                        reduced = Some(candidate);
                        break;
                    }
                }
                match reduced {
                    Some(r) => lhs = r,
                    None => break,
                }
            }
            let fd = Fd { lhs, rhs: fd.rhs };
            if !work.contains(&fd) {
                work.push(fd);
            }
        }
        // 2. Drop redundant FDs (those implied by the rest).
        let mut i = 0;
        while i < work.len() {
            let fd = work[i].clone();
            let rest = FdSet {
                fds: work
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, f)| f.clone())
                    .collect(),
                n_attrs: self.n_attrs,
            };
            if rest.implies(&fd) {
                work.remove(i);
            } else {
                i += 1;
            }
        }
        FdSet {
            fds: work,
            n_attrs: self.n_attrs,
        }
    }

    /// All candidate keys: minimal attribute sets whose closure is the full
    /// schema. Exponential in the worst case; intended for the paper-scale
    /// schemas (≤ ~20 attributes) this project handles.
    pub fn candidate_keys(&self) -> Vec<AttrSet> {
        let all: AttrSet = (0..self.n_attrs).collect();
        if self.n_attrs == 0 {
            return vec![AttrSet::empty()];
        }
        // Attributes never appearing on any RHS must be in every key.
        let rhs_attrs: BTreeSet<usize> = self.fds.iter().map(|f| f.rhs).collect();
        let core: AttrSet = (0..self.n_attrs)
            .filter(|a| !rhs_attrs.contains(a))
            .collect();

        if self.closure(&core) == all {
            return vec![core];
        }

        // BFS over supersets of the core, smallest first, keeping minimal hits.
        let optional: Vec<usize> = (0..self.n_attrs).filter(|a| !core.contains(*a)).collect();
        let mut keys: Vec<AttrSet> = Vec::new();
        let mut frontier: Vec<AttrSet> = vec![core];
        let mut seen: BTreeSet<AttrSet> = BTreeSet::new();
        while let Some(cur) = frontier.pop() {
            for &a in &optional {
                if cur.contains(a) {
                    continue;
                }
                let next = cur.with(a);
                if !seen.insert(next.clone()) {
                    continue;
                }
                if keys.iter().any(|k| k.is_subset_of(&next)) {
                    continue;
                }
                if self.closure(&next) == all {
                    keys.retain(|k| !next.is_subset_of(k));
                    keys.push(next);
                } else {
                    frontier.push(next);
                }
            }
        }
        keys.sort();
        keys
    }

    /// A *derivation trace* for an implied FD: the subsequence of stored
    /// FDs that the closure computation fired, in firing order, to reach
    /// `fd.rhs` from `fd.lhs`. `None` if the FD is not implied; trivial
    /// FDs derive from the empty trace (reflexivity).
    ///
    /// The trace is a witness, not a minimal proof: every listed FD was
    /// applicable and contributed its RHS on the way to the target.
    pub fn derivation(&self, fd: &Fd) -> Option<Vec<Fd>> {
        if fd.is_trivial() {
            return Some(Vec::new());
        }
        let mut closure = fd.lhs.clone();
        let mut trace: Vec<Fd> = Vec::new();
        let mut changed = true;
        while changed {
            changed = false;
            for candidate in &self.fds {
                if !closure.contains(candidate.rhs) && candidate.lhs.is_subset_of(&closure) {
                    closure = closure.with(candidate.rhs);
                    trace.push(candidate.clone());
                    if candidate.rhs == fd.rhs {
                        return Some(trace);
                    }
                    changed = true;
                }
            }
        }
        None
    }

    /// Armstrong *transitivity*: from `X → Y` and `Y ⊆ Z`, `Z → W` derive
    /// `X → W` consequences reachable in one step. Exposed mainly for
    /// didactic tests; [`FdSet::implies`] is the complete decision
    /// procedure.
    pub fn transitive_step(&self) -> Vec<Fd> {
        let mut out = Vec::new();
        for a in &self.fds {
            for b in &self.fds {
                if b.lhs.len() == 1 && b.lhs.contains(a.rhs) {
                    let fd = Fd {
                        lhs: a.lhs.clone(),
                        rhs: b.rhs,
                    };
                    if !fd.is_trivial() && !self.fds.contains(&fd) && !out.contains(&fd) {
                        out.push(fd);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(lhs: &[usize], rhs: usize) -> Fd {
        Fd::new(lhs.to_vec(), rhs)
    }

    #[test]
    fn closure_fixed_point() {
        // 0→1, 1→2, {2,3}→4 over 5 attrs.
        let f = FdSet::from_fds(5, [fd(&[0], 1), fd(&[1], 2), fd(&[2, 3], 4)]);
        assert_eq!(f.closure(&AttrSet::single(0)).indices(), &[0, 1, 2]);
        assert_eq!(
            f.closure(&AttrSet::from_iter([0, 3])).indices(),
            &[0, 1, 2, 3, 4]
        );
        assert_eq!(f.closure(&AttrSet::single(4)).indices(), &[4]);
    }

    #[test]
    fn implication_covers_transitivity() {
        // The paper's §III-B: A→B, B→C ⊢ A→C.
        let f = FdSet::from_fds(3, [fd(&[0], 1), fd(&[1], 2)]);
        assert!(f.implies(&fd(&[0], 2)));
        assert!(!f.implies(&fd(&[2], 0)));
        // Reflexivity: trivial FDs are always implied.
        assert!(f.implies(&fd(&[0, 2], 2)));
        // Augmentation: A→B ⊢ AC→B.
        assert!(f.implies(&fd(&[0, 2], 1)));
    }

    #[test]
    fn minimal_cover_left_reduces() {
        // {0,1}→2 where 0→2 already: LHS reduces to {0}.
        let f = FdSet::from_fds(3, [fd(&[0], 2), fd(&[0, 1], 2)]);
        let m = f.minimal_cover();
        assert_eq!(m.len(), 1);
        assert_eq!(m.fds()[0], fd(&[0], 2));
        assert!(m.equivalent_to(&f));
    }

    #[test]
    fn minimal_cover_drops_redundant() {
        // 0→1, 1→2, 0→2 (redundant via transitivity).
        let f = FdSet::from_fds(3, [fd(&[0], 1), fd(&[1], 2), fd(&[0], 2)]);
        let m = f.minimal_cover();
        assert_eq!(m.len(), 2);
        assert!(m.equivalent_to(&f));
        assert!(!m.fds().contains(&fd(&[0], 2)));
    }

    #[test]
    fn minimal_cover_drops_trivial() {
        let f = FdSet::from_fds(2, [fd(&[0, 1], 1)]);
        assert!(f.minimal_cover().is_empty());
    }

    #[test]
    fn minimal_cover_of_empty_is_empty() {
        assert!(FdSet::new(4).minimal_cover().is_empty());
    }

    #[test]
    fn candidate_keys_simple_chain() {
        // 0→1, 1→2: only key is {0}.
        let f = FdSet::from_fds(3, [fd(&[0], 1), fd(&[1], 2)]);
        assert_eq!(f.candidate_keys(), vec![AttrSet::single(0)]);
    }

    #[test]
    fn candidate_keys_multiple() {
        // 0→1 and 1→0 with 2 free: keys {0,2} and {1,2}.
        let f = FdSet::from_fds(3, [fd(&[0], 1), fd(&[1], 0)]);
        let keys = f.candidate_keys();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&AttrSet::from_iter([0, 2])));
        assert!(keys.contains(&AttrSet::from_iter([1, 2])));
    }

    #[test]
    fn candidate_keys_no_fds() {
        // Without FDs the whole schema is the only key.
        let f = FdSet::new(3);
        assert_eq!(f.candidate_keys(), vec![AttrSet::from_iter([0, 1, 2])]);
    }

    #[test]
    fn candidate_keys_zero_attrs() {
        assert_eq!(FdSet::new(0).candidate_keys(), vec![AttrSet::empty()]);
    }

    #[test]
    fn equivalence_is_mutual_implication() {
        let f = FdSet::from_fds(3, [fd(&[0], 1), fd(&[1], 2)]);
        let g = FdSet::from_fds(3, [fd(&[0], 1), fd(&[1], 2), fd(&[0], 2)]);
        assert!(f.equivalent_to(&g));
        let h = FdSet::from_fds(3, [fd(&[0], 1)]);
        assert!(!f.equivalent_to(&h));
    }

    #[test]
    fn transitive_step_derives_paper_example() {
        let f = FdSet::from_fds(3, [fd(&[0], 1), fd(&[1], 2)]);
        assert_eq!(f.transitive_step(), vec![fd(&[0], 2)]);
    }

    #[test]
    fn insert_ignores_duplicates() {
        let mut f = FdSet::new(2);
        f.insert(fd(&[0], 1));
        f.insert(fd(&[0], 1));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn derivation_traces_transitivity() {
        let f = FdSet::from_fds(4, [fd(&[0], 1), fd(&[1], 2), fd(&[2], 3)]);
        let trace = f.derivation(&fd(&[0], 3)).expect("implied");
        // The chain fires in order and ends at the target.
        assert_eq!(trace, vec![fd(&[0], 1), fd(&[1], 2), fd(&[2], 3)]);
        assert_eq!(trace.last().unwrap().rhs, 3);
        // Every step was applicable given the prefix.
        let mut have = AttrSet::single(0);
        for step in &trace {
            assert!(step.lhs.is_subset_of(&have), "step {step:?} not applicable");
            have = have.with(step.rhs);
        }
    }

    #[test]
    fn derivation_none_when_not_implied() {
        let f = FdSet::from_fds(3, [fd(&[0], 1)]);
        assert!(f.derivation(&fd(&[1], 0)).is_none());
    }

    #[test]
    fn derivation_of_trivial_is_empty() {
        let f = FdSet::new(2);
        assert_eq!(f.derivation(&fd(&[0, 1], 1)), Some(vec![]));
    }

    #[test]
    fn derivation_agrees_with_implies() {
        let f = FdSet::from_fds(5, [fd(&[0], 1), fd(&[1, 2], 3), fd(&[3], 4), fd(&[4], 0)]);
        for lhs in 0..5usize {
            for rhs in 0..5usize {
                let candidate = fd(&[lhs], rhs);
                assert_eq!(
                    f.derivation(&candidate).is_some(),
                    f.implies(&candidate),
                    "{lhs} → {rhs}"
                );
            }
        }
    }
}
