//! Pooling and perturbation of metadata packages — the collusion and
//! noisy-domain adversary surfaces.
//!
//! *Pooling*: when k receiving parties collude, each contributes the
//! (differently redacted) package it received and the coalition merges
//! them into one view ([`MetadataPackage::pool`]). The merge is strict:
//! packages describing different schemas, or carrying *conflicting*
//! values for the same field, are rejected with a typed [`PoolError`] —
//! never silently unioned. A field one party has and another lacks is the
//! normal collusion case and merges fine; two parties claiming different
//! domains for the same attribute is inconsistent metadata and fails.
//!
//! *Perturbation*: a sharing party can blunt the §III-A random-generation
//! attack without withholding domains entirely by publishing a widened /
//! padded domain ([`MetadataPackage::with_noisy_domains`]): the
//! adversary's per-tuple hit probability θ drops monotonically with the
//! noise level, which `crates/core/src/matrix.rs` verifies empirically
//! against the analytical model.

use crate::exchange::{AttributeMeta, MetadataPackage};
use mp_relation::{Domain, Value};

/// Why two packages refused to merge.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolError {
    /// No packages were supplied.
    Empty,
    /// A package describes a different number of attributes.
    ArityMismatch {
        /// Arity of the first package.
        expected: usize,
        /// Arity of the offending package.
        found: usize,
        /// Party name of the offending package.
        party: String,
    },
    /// Attribute `index` is named differently across packages — the
    /// packages describe different schemas.
    NameMismatch {
        /// Position of the offending attribute.
        index: usize,
        /// Name in the first package.
        expected: String,
        /// Conflicting name.
        found: String,
    },
    /// Two packages declare different kinds for the same attribute.
    KindConflict {
        /// Position of the offending attribute.
        index: usize,
    },
    /// Two packages declare different domains for the same attribute.
    DomainConflict {
        /// Position of the offending attribute.
        index: usize,
    },
    /// Two packages declare different distributions for the same
    /// attribute.
    DistributionConflict {
        /// Position of the offending attribute.
        index: usize,
    },
    /// Two packages declare different row counts.
    RowCountConflict {
        /// First row count.
        a: usize,
        /// Conflicting row count.
        b: usize,
    },
    /// Two packages declare different wire-format versions.
    VersionConflict {
        /// First declared version.
        a: u32,
        /// Conflicting version.
        b: u32,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Empty => write!(f, "cannot pool zero packages"),
            PoolError::ArityMismatch {
                expected,
                found,
                party,
            } => write!(
                f,
                "package from `{party}` describes {found} attributes, expected {expected}"
            ),
            PoolError::NameMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "attribute {index} is `{expected}` in one package and `{found}` in another"
            ),
            PoolError::KindConflict { index } => {
                write!(f, "conflicting kinds for attribute {index}")
            }
            PoolError::DomainConflict { index } => {
                write!(f, "conflicting domains for attribute {index}")
            }
            PoolError::DistributionConflict { index } => {
                write!(f, "conflicting distributions for attribute {index}")
            }
            PoolError::RowCountConflict { a, b } => {
                write!(f, "conflicting row counts {a} and {b}")
            }
            PoolError::VersionConflict { a, b } => {
                write!(f, "conflicting format versions {a} and {b}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Merges `Option` fields: a value present in one package and absent in
/// another combines; two *different* present values are a conflict.
fn merge_opt<T: Clone + PartialEq>(
    a: &Option<T>,
    b: &Option<T>,
    conflict: PoolError,
) -> Result<Option<T>, PoolError> {
    match (a, b) {
        (Some(x), Some(y)) if x != y => Err(conflict),
        (Some(x), _) => Ok(Some(x.clone())),
        (None, y) => Ok(y.clone()),
    }
}

impl MetadataPackage {
    /// Merges the packages a coalition of colluding receivers pooled.
    ///
    /// All packages must describe the same schema (same arity, same
    /// attribute names in the same order); per-attribute fields merge by
    /// union-of-knowledge (`Some` beats `None`), but any two packages
    /// carrying *different* values for the same field — kind, domain,
    /// distribution, row count or format version — are rejected with a
    /// typed [`PoolError`]. Dependencies are concatenated in input order
    /// with exact duplicates dropped; party names join with `+`.
    pub fn pool(packages: &[MetadataPackage]) -> Result<MetadataPackage, PoolError> {
        let Some(first) = packages.first() else {
            return Err(PoolError::Empty);
        };
        let mut merged = first.clone();
        for pkg in packages.iter().skip(1) {
            if pkg.arity() != merged.arity() {
                return Err(PoolError::ArityMismatch {
                    expected: merged.arity(),
                    found: pkg.arity(),
                    party: pkg.party.clone(),
                });
            }
            merged.format_version = match (merged.format_version, pkg.format_version) {
                (Some(a), Some(b)) if a != b => return Err(PoolError::VersionConflict { a, b }),
                (Some(a), _) => Some(a),
                (None, b) => b,
            };
            merged.n_rows = match (merged.n_rows, pkg.n_rows) {
                (Some(a), Some(b)) if a != b => return Err(PoolError::RowCountConflict { a, b }),
                (Some(a), _) => Some(a),
                (None, b) => b,
            };
            let mut attributes = Vec::with_capacity(merged.arity());
            for (index, (have, new)) in merged.attributes.iter().zip(&pkg.attributes).enumerate() {
                if have.name != new.name {
                    return Err(PoolError::NameMismatch {
                        index,
                        expected: have.name.clone(),
                        found: new.name.clone(),
                    });
                }
                attributes.push(AttributeMeta {
                    name: have.name.clone(),
                    kind: merge_opt(&have.kind, &new.kind, PoolError::KindConflict { index })?,
                    domain: merge_opt(
                        &have.domain,
                        &new.domain,
                        PoolError::DomainConflict { index },
                    )?,
                    distribution: merge_opt(
                        &have.distribution,
                        &new.distribution,
                        PoolError::DistributionConflict { index },
                    )?,
                });
            }
            merged.attributes = attributes;
            for dep in &pkg.dependencies {
                if !merged.dependencies.contains(dep) {
                    merged.dependencies.push(dep.clone());
                }
            }
            merged.party = format!("{}+{}", merged.party, pkg.party);
        }
        Ok(merged)
    }

    /// The package with every shared domain deterministically perturbed
    /// by `noise_pct` percent before crossing the trust boundary.
    ///
    /// Continuous domains widen by `noise_pct`% of their range on *each*
    /// side; categorical domains are padded with
    /// `ceil(|D| · noise_pct / 100)` spurious labels. Both shrink the
    /// adversary's per-tuple hit probability `θ` monotonically in
    /// `noise_pct` (the generated values spread over a strictly larger
    /// domain), which is exactly the analytical-model prediction the
    /// leakage matrix checks. `noise_pct = 0` returns the package
    /// unchanged. No randomness is involved: the perturbed package is a
    /// pure function of the input, so matrix cells stay reproducible.
    pub fn with_noisy_domains(&self, noise_pct: u8) -> MetadataPackage {
        let mut out = self.clone();
        if noise_pct == 0 {
            return out;
        }
        for meta in &mut out.attributes {
            meta.domain = meta.domain.as_ref().map(|d| perturb(d, noise_pct));
        }
        out
    }
}

fn perturb(domain: &Domain, noise_pct: u8) -> Domain {
    let pct = f64::from(noise_pct) / 100.0;
    match domain {
        Domain::Continuous { min, max } => {
            let pad = (max - min).abs() * pct;
            Domain::continuous(min - pad, max + pad)
        }
        Domain::Categorical(vals) => {
            let extra = (vals.len() as f64 * pct).ceil() as usize;
            let mut padded = vals.clone();
            // The padding must be type-compatible with the values already
            // in the domain, or the adversary's synthetic draws would mix
            // types within one column: integer-coded domains grow past
            // their maximum, float-coded ones likewise, and anything else
            // gains fresh labels.
            let max_int = vals
                .iter()
                .filter_map(|v| match v {
                    Value::Int(i) => Some(*i),
                    _ => None,
                })
                .max();
            let max_float = vals
                .iter()
                .filter_map(|v| match v {
                    Value::Float(f) => Some(*f),
                    _ => None,
                })
                .fold(None::<f64>, |acc, f| Some(acc.map_or(f, |a| a.max(f))));
            let int_coded = vals
                .iter()
                .all(|v| matches!(v, Value::Int(_) | Value::Null));
            let float_coded = vals
                .iter()
                .all(|v| matches!(v, Value::Float(_) | Value::Null));
            match (int_coded, max_int, float_coded, max_float) {
                (true, Some(m), _, _) => {
                    padded.extend((0..extra).map(|i| Value::Int(m + 1 + i as i64)));
                }
                (_, _, true, Some(m)) => {
                    padded.extend((0..extra).map(|i| Value::Float(m + 1.0 + i as f64)));
                }
                _ => {
                    padded.extend((0..extra).map(|i| Value::Text(format!("__noise_{i}"))));
                }
            }
            Domain::Categorical(padded)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::{Fd, OrderDep};
    use crate::SharePolicy;
    use mp_relation::{Attribute, Relation, Schema};

    fn rel() -> Relation {
        let schema = Schema::new(vec![
            Attribute::categorical("dept"),
            Attribute::continuous("salary"),
            Attribute::categorical("region"),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec!["Sales".into(), 20.0.into(), "north".into()],
                vec!["CS".into(), 30.0.into(), "south".into()],
                vec!["Mgmt".into(), 40.0.into(), "north".into()],
            ],
        )
        .unwrap()
    }

    fn full() -> MetadataPackage {
        MetadataPackage::describe(
            "bank",
            &rel(),
            vec![Fd::new(0usize, 2).into(), OrderDep::ascending(1, 2).into()],
        )
        .unwrap()
    }

    /// Strips the domain (and distribution) of every attribute except
    /// those owned by colluder `i` of `k`.
    fn view(pkg: &MetadataPackage, i: usize, k: usize) -> MetadataPackage {
        let mut v = pkg.clone();
        v.party = format!("colluder{i}");
        for (a, meta) in v.attributes.iter_mut().enumerate() {
            if a % k != i {
                meta.domain = None;
                meta.distribution = None;
            }
        }
        v
    }

    #[test]
    fn pooled_views_reassemble_the_full_package() {
        let pkg = full();
        let views: Vec<_> = (0..2).map(|i| view(&pkg, i, 2)).collect();
        // Neither view alone shares every domain…
        for v in &views {
            assert!(v.attributes.iter().any(|a| a.domain.is_none()));
        }
        // …but the pool does.
        let pooled = MetadataPackage::pool(&views).unwrap();
        assert_eq!(pooled.party, "colluder0+colluder1");
        assert!(pooled.attributes.iter().all(|a| a.domain.is_some()));
        assert_eq!(pooled.attributes.len(), pkg.attributes.len());
        for (p, o) in pooled.attributes.iter().zip(&pkg.attributes) {
            assert_eq!(p.domain, o.domain);
        }
        assert_eq!(pooled.dependencies, pkg.dependencies);
        assert_eq!(pooled.n_rows, pkg.n_rows);
    }

    #[test]
    fn duplicate_dependencies_dedup() {
        let pkg = full();
        let pooled = MetadataPackage::pool(&[pkg.clone(), pkg.clone()]).unwrap();
        assert_eq!(pooled.dependencies, pkg.dependencies);
    }

    #[test]
    fn empty_pool_rejected() {
        assert_eq!(MetadataPackage::pool(&[]), Err(PoolError::Empty));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let pkg = full();
        let mut other = pkg.clone();
        other.party = "evil".into();
        other.attributes.pop();
        match MetadataPackage::pool(&[pkg, other]) {
            Err(PoolError::ArityMismatch {
                expected: 3,
                found: 2,
                party,
            }) => assert_eq!(party, "evil"),
            other => panic!("expected ArityMismatch, got {other:?}"),
        }
    }

    #[test]
    fn renamed_attribute_rejected() {
        let pkg = full();
        let mut other = pkg.clone();
        other.attributes[1].name = "wages".into();
        match MetadataPackage::pool(&[pkg, other]) {
            Err(PoolError::NameMismatch {
                index: 1,
                expected,
                found,
            }) => {
                assert_eq!(expected, "salary");
                assert_eq!(found, "wages");
            }
            other => panic!("expected NameMismatch, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_domain_is_not_silently_unioned() {
        let pkg = full();
        let mut other = pkg.clone();
        other.attributes[0].domain = Some(Domain::categorical(vec!["Sales", "Legal"]));
        match MetadataPackage::pool(&[pkg, other]) {
            Err(PoolError::DomainConflict { index: 0 }) => {}
            other => panic!("expected DomainConflict, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_kind_row_count_and_version_rejected() {
        let pkg = full();

        let mut kind = pkg.clone();
        kind.attributes[2].kind = Some(mp_relation::AttrKind::Continuous);
        assert_eq!(
            MetadataPackage::pool(&[pkg.clone(), kind]),
            Err(PoolError::KindConflict { index: 2 })
        );

        let mut rows = pkg.clone();
        rows.n_rows = Some(99);
        assert_eq!(
            MetadataPackage::pool(&[pkg.clone(), rows]),
            Err(PoolError::RowCountConflict { a: 3, b: 99 })
        );

        let mut version = pkg.clone();
        version.format_version = Some(7);
        assert!(matches!(
            MetadataPackage::pool(&[pkg, version]),
            Err(PoolError::VersionConflict { .. })
        ));
    }

    #[test]
    fn missing_fields_merge_without_conflict() {
        let pkg = full();
        let redacted = SharePolicy::NAMES_ONLY.apply(&pkg);
        let pooled = MetadataPackage::pool(&[redacted, pkg.clone()]).unwrap();
        assert!(pooled.attributes.iter().all(|a| a.domain.is_some()));
        assert_eq!(pooled.n_rows, pkg.n_rows);
    }

    #[test]
    fn single_package_pools_to_itself() {
        let pkg = full();
        assert_eq!(
            MetadataPackage::pool(std::slice::from_ref(&pkg)).unwrap(),
            pkg
        );
    }

    #[test]
    fn noisy_domains_widen_and_pad() {
        let pkg = full();
        let noisy = pkg.with_noisy_domains(50);
        // dept: 3 labels + ceil(3·0.5) = 2 spurious.
        match noisy.attributes[0].domain.as_ref().unwrap() {
            Domain::Categorical(vals) => {
                assert_eq!(vals.len(), 5);
                assert!(vals.contains(&Value::Text("__noise_0".into())));
            }
            other => panic!("dept stayed categorical, got {other:?}"),
        }
        // salary: [20, 40] widens by 10 each side.
        match noisy.attributes[1].domain.as_ref().unwrap() {
            Domain::Continuous { min, max } => {
                assert!((min - 10.0).abs() < 1e-9 && (max - 50.0).abs() < 1e-9);
            }
            other => panic!("salary stayed continuous, got {other:?}"),
        }
    }

    #[test]
    fn noise_shrinks_theta_monotonically() {
        let pkg = full();
        for attr in 0..pkg.arity() {
            let mut last = f64::INFINITY;
            for pct in [0u8, 10, 25, 50, 100] {
                let d = pkg.with_noisy_domains(pct).attributes[attr]
                    .domain
                    .clone()
                    .unwrap();
                let theta = d.theta(1.0);
                assert!(
                    theta <= last + 1e-12,
                    "θ must be non-increasing in noise (attr {attr}, {pct}%)"
                );
                last = theta;
            }
        }
    }

    #[test]
    fn zero_noise_is_identity() {
        let pkg = full();
        assert_eq!(pkg.with_noisy_domains(0), pkg);
    }

    #[test]
    fn noisy_package_without_domains_is_unchanged() {
        let pkg = SharePolicy::PAPER_RECOMMENDED.apply(&full());
        assert_eq!(pkg.with_noisy_domains(30), pkg);
    }
}
