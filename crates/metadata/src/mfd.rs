//! Metric functional dependencies (MFDs).
//!
//! Another core class from the RFD survey the paper draws on (\[9\]): the
//! FD's equality on the *dependent* side is relaxed to a metric bound —
//! `t[X] = u[X] ⇒ d(t[Y], u[Y]) ≤ δ`. Useful when Y is a measurement
//! (two readings of the same entity agree only approximately). Sits
//! between the FD (δ = 0) and the unconstrained pair; its generation and
//! privacy behaviour interpolate the paper's FD and DD analyses.

use mp_relation::{Pli, Relation, Result, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A metric functional dependency `X → Y (δ)` on a numeric dependent
/// attribute: tuples equal on X have Y values within `delta`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricFd {
    /// Determinant attribute X.
    pub lhs: usize,
    /// Dependent (numeric) attribute Y.
    pub rhs: usize,
    /// Maximum spread of Y within an X-partition.
    pub delta: f64,
}

impl MetricFd {
    /// Creates `lhs → rhs (delta)`.
    pub fn new(lhs: usize, rhs: usize, delta: f64) -> Self {
        Self { lhs, rhs, delta }
    }

    /// The tightest δ for which the MFD holds: the maximum Y-spread over
    /// any X-partition (0 when no partition has two numeric Y values, or
    /// `None` when Y has non-null non-numeric values, for which no metric
    /// exists).
    pub fn tight_delta(lhs: usize, rhs: usize, relation: &Relation) -> Result<Option<f64>> {
        let ys = &relation.column_values(rhs)?;
        if ys.iter().any(|v| !v.is_null() && v.as_f64().is_none()) {
            return Ok(None);
        }
        let pli = Pli::from_column(&relation.column_values(lhs)?);
        let mut delta = 0.0f64;
        for cluster in pli.clusters() {
            let nums: Vec<f64> = cluster.iter().filter_map(|&r| ys[r].as_f64()).collect();
            if nums.len() < 2 {
                continue;
            }
            let lo = nums.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            delta = delta.max(hi - lo);
        }
        Ok(Some(delta))
    }

    /// Exact validation: every X-partition's numeric Y values span at most
    /// `delta`. Mixed null/numeric partitions check only the numerics.
    pub fn holds(&self, relation: &Relation) -> Result<bool> {
        match Self::tight_delta(self.lhs, self.rhs, relation)? {
            Some(t) => Ok(t <= self.delta + 1e-12),
            None => Ok(false),
        }
    }
}

impl fmt::Display for MetricFd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MFD {} -> {} (delta={})", self.lhs, self.rhs, self.delta)
    }
}

/// An inclusion dependency (IND) `R.A ⊆ S.B` between two relations —
/// the cross-silo metadata used during VFL schema matching (the paper's
/// Figure 1 parties must first agree which columns refer to the same
/// concepts).
///
/// Privacy note: *declaring* an IND to a partner asserts that every value
/// of your column appears in theirs — the partner can then intersect its
/// own column with generated candidates, shrinking the effective domain
/// of yours. Like domains, INDs are value-level metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InclusionDep {
    /// Column of the including relation (ours).
    pub from_attr: usize,
    /// Column of the included-in relation (theirs).
    pub to_attr: usize,
}

impl InclusionDep {
    /// Creates `from.from_attr ⊆ to.to_attr`.
    pub fn new(from_attr: usize, to_attr: usize) -> Self {
        Self { from_attr, to_attr }
    }

    /// Exact validation: every non-null value of `from`'s column appears
    /// in `to`'s column.
    pub fn holds(&self, from: &Relation, to: &Relation) -> Result<bool> {
        let to_vals = to.column_values(self.to_attr)?;
        let mut haystack: Vec<&Value> = to_vals.iter().collect();
        haystack.sort();
        haystack.dedup();
        Ok(from
            .column_values(self.from_attr)?
            .iter()
            .filter(|v| !v.is_null())
            .all(|v| haystack.binary_search(&v).is_ok()))
    }
}

impl fmt::Display for InclusionDep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IND from.{} ⊆ to.{}", self.from_attr, self.to_attr)
    }
}

/// Discovers all unary INDs from `from` into `to`: pairs `(a, b)` with
/// `from.a ⊆ to.b`, skipping empty `from` columns (vacuous).
pub fn discover_inds(from: &Relation, to: &Relation) -> Result<Vec<InclusionDep>> {
    let mut out = Vec::new();
    for a in 0..from.arity() {
        let non_null = from.column(a)?.null_count() < from.n_rows();
        if !non_null {
            continue;
        }
        for b in 0..to.arity() {
            let ind = InclusionDep::new(a, b);
            if ind.holds(from, to)? {
                out.push(ind);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Schema};

    fn rel(vals: &[(&str, f64)]) -> Relation {
        let schema = Schema::new(vec![
            Attribute::categorical("k"),
            Attribute::continuous("y"),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vals.iter()
                .map(|&(k, y)| vec![k.into(), y.into()])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn mfd_semantics() {
        // Partition "a": spread 1.5; partition "b": spread 0.
        let r = rel(&[("a", 1.0), ("a", 2.5), ("b", 9.0), ("b", 9.0)]);
        assert_eq!(MetricFd::tight_delta(0, 1, &r).unwrap(), Some(1.5));
        assert!(MetricFd::new(0, 1, 1.5).holds(&r).unwrap());
        assert!(!MetricFd::new(0, 1, 1.0).holds(&r).unwrap());
        // δ = 0 degenerates to the FD.
        let fd_like = rel(&[("a", 1.0), ("a", 1.0), ("b", 2.0)]);
        assert!(MetricFd::new(0, 1, 0.0).holds(&fd_like).unwrap());
    }

    #[test]
    fn mfd_on_text_rhs_is_undefined() {
        let schema = Schema::new(vec![
            Attribute::categorical("k"),
            Attribute::categorical("t"),
        ])
        .unwrap();
        let r = Relation::from_rows(
            schema,
            vec![vec!["a".into(), "x".into()], vec!["a".into(), "y".into()]],
        )
        .unwrap();
        assert_eq!(MetricFd::tight_delta(0, 1, &r).unwrap(), None);
        assert!(!MetricFd::new(0, 1, 100.0).holds(&r).unwrap());
    }

    #[test]
    fn mfd_skips_nulls_inside_partitions() {
        let schema = Schema::new(vec![
            Attribute::categorical("k"),
            Attribute::continuous("y"),
        ])
        .unwrap();
        let r = Relation::from_rows(
            schema,
            vec![
                vec!["a".into(), 1.0.into()],
                vec!["a".into(), Value::Null],
                vec!["a".into(), 1.4.into()],
            ],
        )
        .unwrap();
        assert!((MetricFd::tight_delta(0, 1, &r).unwrap().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ind_semantics() {
        let from = rel(&[("a", 1.0), ("b", 2.0)]);
        let to = rel(&[("a", 1.0), ("b", 5.0), ("c", 9.0)]);
        assert!(InclusionDep::new(0, 0).holds(&from, &to).unwrap());
        assert!(!InclusionDep::new(1, 1).holds(&from, &to).unwrap()); // 2.0 ∉ {1,5,9}
        assert!(!InclusionDep::new(0, 1).holds(&from, &to).unwrap());
    }

    #[test]
    fn ind_nulls_are_ignored_on_the_from_side() {
        let schema = Schema::new(vec![Attribute::categorical("k")]).unwrap();
        let from =
            Relation::from_rows(schema.clone(), vec![vec!["a".into()], vec![Value::Null]]).unwrap();
        let to = Relation::from_rows(schema, vec![vec!["a".into()]]).unwrap();
        assert!(InclusionDep::new(0, 0).holds(&from, &to).unwrap());
    }

    #[test]
    fn ind_discovery() {
        let from = rel(&[("a", 1.0), ("b", 2.0)]);
        let to = rel(&[("a", 1.0), ("b", 2.0), ("c", 3.0)]);
        let inds = discover_inds(&from, &to).unwrap();
        assert!(inds.contains(&InclusionDep::new(0, 0)));
        assert!(inds.contains(&InclusionDep::new(1, 1)));
        assert!(!inds.contains(&InclusionDep::new(0, 1)));
        // Every discovered IND holds.
        for ind in &inds {
            assert!(ind.holds(&from, &to).unwrap());
        }
    }

    #[test]
    fn ind_discovery_skips_all_null_columns() {
        let schema = Schema::new(vec![Attribute::categorical("k")]).unwrap();
        let from = Relation::from_rows(schema.clone(), vec![vec![Value::Null]]).unwrap();
        let to = Relation::from_rows(schema, vec![vec!["a".into()]]).unwrap();
        assert!(discover_inds(&from, &to).unwrap().is_empty());
    }

    #[test]
    fn displays() {
        assert_eq!(
            MetricFd::new(0, 1, 2.5).to_string(),
            "MFD 0 -> 1 (delta=2.5)"
        );
        assert_eq!(InclusionDep::new(2, 3).to_string(), "IND from.2 ⊆ to.3");
    }
}
