//! # mp-metadata — metadata model for VFL exchange
//!
//! The metadata artefacts whose sharing the paper *"Will Sharing Metadata
//! Leak Privacy?"* (Zhan & Hai, ICDE 2024) analyses:
//!
//! * [`Fd`], [`Afd`], [`OrderDep`], [`NumericalDep`], [`DifferentialDep`],
//!   [`OrderedFd`] — the dependency classes of §II-A/§IV, each with exact
//!   validation semantics against a relation ([`Dependency::holds`]);
//! * [`FdSet`] — FD inference: attribute closures, implication, minimal
//!   covers, candidate keys (the §III-B transitivity machinery);
//! * [`DependencyGraph`] — the directed attribute graph the adversary uses
//!   for generation (§V), with topological generation plans;
//! * [`MetadataPackage`] — the wire artefact a party shares: names, kinds,
//!   domains, row count and dependencies;
//! * [`SharePolicy`] — redaction presets for every disclosure level the
//!   paper discusses, including its recommended policy.

#![warn(missing_docs)]

mod attrset;
mod cfd;
mod dependency;
mod distribution;
mod exchange;
mod generalization;
mod graph;
mod inference;
mod mfd;
mod pool;
mod redaction;
mod seq;

pub use attrset::AttrSet;
pub use cfd::{ConditionalFd, PatternCell};
pub use dependency::{
    pli_of_set, Afd, Dependency, DifferentialDep, Fd, NumericalDep, OrderDep, OrderDirection,
    OrderedFd,
};
pub use distribution::Distribution;
pub use exchange::{AttributeMeta, ExchangeError, MetadataPackage, FORMAT_VERSION};
pub use generalization::DomainGeneralization;
pub use graph::{DependencyGraph, PlanStep};
pub use inference::FdSet;
pub use mfd::{discover_inds, InclusionDep, MetricFd};
pub use pool::PoolError;
pub use redaction::SharePolicy;
pub use seq::SequentialDep;
