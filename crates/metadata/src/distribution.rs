//! Distribution metadata — the disclosure level *above* domains.
//!
//! The paper's evaluation assumes the value distribution is withheld:
//! *"this distribution is not communicated, so we will assume a uniform
//! distribution for our experiments"*. Real federated-learning frameworks
//! often do exchange richer statistics (histograms for binning, value
//! frequencies for encoders), so this module models that next level:
//! per-value frequencies for categorical attributes and equi-width
//! histograms for continuous ones. `mp-core`'s
//! `analytical::distribution` quantifies why this leaks strictly more
//! than a domain: the match rate becomes the collision probability
//! `Σ p_v²`, which is ≥ `1/|D|` with equality only for uniform data.

use mp_relation::{AttrKind, Relation, RelationError, Result, Value};
use serde::{Deserialize, Serialize};

/// Shared distribution metadata for one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Categorical value frequencies (probabilities summing to ~1).
    Categorical(Vec<(Value, f64)>),
    /// Equi-width histogram over `[min, max]` with bucket probabilities.
    Histogram {
        /// Lower bound of the first bucket.
        min: f64,
        /// Upper bound of the last bucket.
        max: f64,
        /// Per-bucket probabilities (sum ~1).
        densities: Vec<f64>,
    },
}

impl Distribution {
    /// Estimates the distribution of column `col` (categorical:
    /// frequencies including nulls; continuous: `buckets` equi-width bins
    /// over the observed range).
    pub fn estimate(relation: &Relation, col: usize, buckets: usize) -> Result<Distribution> {
        let kind = relation.schema().attribute(col)?.kind;
        let column = relation.column_values(col)?;
        let n = column.len().max(1) as f64;
        match kind {
            AttrKind::Categorical => {
                let mut values: Vec<Value> = column.clone();
                values.sort();
                let mut out: Vec<(Value, f64)> = Vec::new();
                let mut i = 0;
                while i < values.len() {
                    let mut j = i;
                    while j < values.len() && values[j] == values[i] {
                        j += 1;
                    }
                    out.push((values[i].clone(), (j - i) as f64 / n));
                    i = j;
                }
                Ok(Distribution::Categorical(out))
            }
            AttrKind::Continuous => {
                let hist = mp_relation::Histogram::compute(relation, col, buckets)?
                    .ok_or(RelationError::EmptyRelation)?;
                let total: usize = hist.counts.iter().sum();
                let total = total.max(1) as f64;
                Ok(Distribution::Histogram {
                    min: hist.min,
                    max: hist.max,
                    densities: hist.counts.iter().map(|&c| c as f64 / total).collect(),
                })
            }
        }
    }

    /// Collision probability `Σ p²` — the probability two independent
    /// draws from the distribution coincide (categorical) or land in the
    /// same bucket (continuous). This is the §III-A `θ` generalised beyond
    /// uniformity.
    pub fn collision_probability(&self) -> f64 {
        match self {
            Distribution::Categorical(freqs) => freqs.iter().map(|(_, p)| p * p).sum(),
            Distribution::Histogram { densities, .. } => densities.iter().map(|p| p * p).sum(),
        }
    }

    /// The uniform-equivalent support size: `1/Σp²` (the Rényi-2
    /// "effective cardinality"). Sharing a distribution is as leaky as
    /// sharing a *uniform* domain of this (smaller) size.
    pub fn effective_cardinality(&self) -> f64 {
        let c = self.collision_probability();
        if c > 0.0 {
            1.0 / c
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Schema};

    fn rel() -> Relation {
        let schema = Schema::new(vec![
            Attribute::categorical("c"),
            Attribute::continuous("x"),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec!["a".into(), 0.0.into()],
                vec!["a".into(), 1.0.into()],
                vec!["a".into(), 2.0.into()],
                vec!["b".into(), 9.0.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn categorical_frequencies() {
        let d = Distribution::estimate(&rel(), 0, 0).unwrap();
        let Distribution::Categorical(freqs) = &d else {
            panic!()
        };
        assert_eq!(freqs.len(), 2);
        assert!((freqs[0].1 - 0.75).abs() < 1e-12); // "a"
        assert!((freqs[1].1 - 0.25).abs() < 1e-12); // "b"
                                                    // Σp² = 0.5625 + 0.0625 = 0.625 > 1/2 (uniform over 2).
        assert!((d.collision_probability() - 0.625).abs() < 1e-12);
        assert!((d.effective_cardinality() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn histogram_estimation() {
        let d = Distribution::estimate(&rel(), 1, 3).unwrap();
        let Distribution::Histogram {
            min,
            max,
            densities,
        } = &d
        else {
            panic!()
        };
        assert_eq!((*min, *max), (0.0, 9.0));
        assert_eq!(densities.len(), 3);
        assert!((densities.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Buckets [0,3), [3,6), [6,9]: counts 3, 0, 1.
        assert!((densities[0] - 0.75).abs() < 1e-12);
        assert_eq!(densities[1], 0.0);
    }

    #[test]
    fn skew_raises_collision_probability() {
        let uniform = Distribution::Categorical(vec![(Value::Int(0), 0.5), (Value::Int(1), 0.5)]);
        let skewed = Distribution::Categorical(vec![(Value::Int(0), 0.9), (Value::Int(1), 0.1)]);
        assert!(skewed.collision_probability() > uniform.collision_probability());
        assert!(skewed.effective_cardinality() < 2.0);
        assert!((uniform.effective_cardinality() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nulls_counted_as_values() {
        let schema = Schema::new(vec![Attribute::categorical("c")]).unwrap();
        let r = Relation::from_rows(
            schema,
            vec![vec![Value::Null], vec![Value::Null], vec!["x".into()]],
        )
        .unwrap();
        let d = Distribution::estimate(&r, 0, 0).unwrap();
        let Distribution::Categorical(freqs) = &d else {
            panic!()
        };
        assert_eq!(freqs[0].0, Value::Null);
        assert!((freqs[0].1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let d = Distribution::estimate(&rel(), 1, 4).unwrap();
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(serde_json::from_str::<Distribution>(&json).unwrap(), d);
    }

    #[test]
    fn empty_continuous_column_errors() {
        let schema = Schema::new(vec![Attribute::continuous("x")]).unwrap();
        let r = Relation::empty(schema);
        assert!(Distribution::estimate(&r, 0, 4).is_err());
    }
}
