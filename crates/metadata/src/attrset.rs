//! Compact attribute sets (sorted index vectors).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of attribute indices, stored sorted and de-duplicated.
///
/// Dependency left-hand sides and closures are attribute sets; keeping them
/// as sorted `Vec<usize>` makes subset tests linear, keeps them hashable for
/// level-wise discovery, and keeps serialisation obvious.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrSet(Vec<usize>);

impl AttrSet {
    /// The empty set.
    pub fn empty() -> Self {
        AttrSet(Vec::new())
    }

    /// A singleton set.
    pub fn single(attr: usize) -> Self {
        AttrSet(vec![attr])
    }

    /// Builds from any index iterator (sorted, de-duplicated).
    ///
    /// Shadows `FromIterator::from_iter` deliberately: `AttrSet::from_iter`
    /// reads better at call sites than `.collect::<AttrSet>()`.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut v: Vec<usize> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        AttrSet(v)
    }

    /// Number of attributes in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Sorted indices.
    pub fn indices(&self) -> &[usize] {
        &self.0
    }

    /// Iterator over indices.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().copied()
    }

    /// Membership test (binary search).
    pub fn contains(&self, attr: usize) -> bool {
        self.0.binary_search(&attr).is_ok()
    }

    /// `true` if every element of `self` is in `other`.
    pub fn is_subset_of(&self, other: &AttrSet) -> bool {
        let mut it = other.0.iter();
        'outer: for a in &self.0 {
            for b in it.by_ref() {
                match b.cmp(a) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Set union.
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    v.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    v.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    v.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        v.extend_from_slice(&self.0[i..]);
        v.extend_from_slice(&other.0[j..]);
        AttrSet(v)
    }

    /// Inserts one attribute, returning the extended set.
    pub fn with(&self, attr: usize) -> AttrSet {
        if self.contains(attr) {
            self.clone()
        } else {
            let mut v = self.0.clone();
            let pos = v.partition_point(|&x| x < attr);
            v.insert(pos, attr);
            AttrSet(v)
        }
    }

    /// Removes one attribute, returning the reduced set.
    pub fn without(&self, attr: usize) -> AttrSet {
        AttrSet(self.0.iter().copied().filter(|&a| a != attr).collect())
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        AttrSet(
            self.0
                .iter()
                .copied()
                .filter(|a| !other.contains(*a))
                .collect(),
        )
    }

    /// Renders the set against attribute names, e.g. `{Name, Age}`.
    pub fn display_with(&self, names: &[String]) -> String {
        let parts: Vec<&str> = self
            .0
            .iter()
            .map(|&i| names.get(i).map_or("<?>", String::as_str))
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for AttrSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        AttrSet::from_iter(iter)
    }
}

impl From<Vec<usize>> for AttrSet {
    fn from(v: Vec<usize>) -> Self {
        AttrSet::from_iter(v)
    }
}

impl From<usize> for AttrSet {
    fn from(a: usize) -> Self {
        AttrSet::single(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let s = AttrSet::from_iter([3, 1, 3, 0]);
        assert_eq!(s.indices(), &[0, 1, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn subset_tests() {
        let a = AttrSet::from_iter([1, 3]);
        let b = AttrSet::from_iter([0, 1, 3, 5]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(AttrSet::empty().is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        let c = AttrSet::from_iter([1, 4]);
        assert!(!c.is_subset_of(&b));
    }

    #[test]
    fn union_merges() {
        let a = AttrSet::from_iter([0, 2]);
        let b = AttrSet::from_iter([1, 2, 4]);
        assert_eq!(a.union(&b).indices(), &[0, 1, 2, 4]);
        assert_eq!(AttrSet::empty().union(&a), a);
    }

    #[test]
    fn with_and_without() {
        let a = AttrSet::from_iter([0, 2]);
        assert_eq!(a.with(1).indices(), &[0, 1, 2]);
        assert_eq!(a.with(2).indices(), &[0, 2]);
        assert_eq!(a.without(0).indices(), &[2]);
        assert_eq!(a.without(7).indices(), &[0, 2]);
    }

    #[test]
    fn difference_removes_members() {
        let a = AttrSet::from_iter([0, 1, 2, 3]);
        let b = AttrSet::from_iter([1, 3]);
        assert_eq!(a.difference(&b).indices(), &[0, 2]);
    }

    #[test]
    fn display_variants() {
        let s = AttrSet::from_iter([0, 2]);
        assert_eq!(s.to_string(), "{0,2}");
        let names = vec!["Name".to_owned(), "Age".to_owned(), "Dept".to_owned()];
        assert_eq!(s.display_with(&names), "{Name, Dept}");
        assert_eq!(AttrSet::single(9).display_with(&names), "{<?>}");
    }

    #[test]
    fn conversions() {
        assert_eq!(AttrSet::from(vec![2, 1]).indices(), &[1, 2]);
        assert_eq!(AttrSet::from(4usize).indices(), &[4]);
        let collected: AttrSet = [5usize, 5, 1].into_iter().collect();
        assert_eq!(collected.indices(), &[1, 5]);
    }
}
