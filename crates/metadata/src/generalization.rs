//! Domain generalization — a defense between "share the domain" and
//! "withhold it".
//!
//! The paper's conclusion is binary: domains leak, so withhold them. But a
//! party may need to share *something* about value ranges for feature
//! engineering to work. Generalization blunts the §III-A attack instead of
//! blocking it: widening a continuous range by a factor `w` divides the
//! adversary's ε-hit rate `2ε/range` by `w`; suppressing rare categorical
//! values removes exactly the values whose reproduction is most
//! identifying, replacing them with a synthetic placeholder that can never
//! match a real cell.

use crate::exchange::MetadataPackage;
use mp_relation::{Domain, Relation, Result, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Generalization parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainGeneralization {
    /// Widen continuous ranges by this factor (≥ 1), centred on the range
    /// midpoint.
    pub widen: f64,
    /// Snap the widened bounds outward to multiples of this step
    /// (`0` disables snapping). Snapping hides the exact observed
    /// min/max — themselves data values of the two extreme tuples.
    pub snap: f64,
    /// Replace categorical values occurring fewer than this many times
    /// with a single `*` placeholder (`0` disables suppression).
    pub suppress_below: usize,
}

impl Default for DomainGeneralization {
    fn default() -> Self {
        Self {
            widen: 2.0,
            snap: 10.0,
            suppress_below: 2,
        }
    }
}

impl DomainGeneralization {
    /// Generalises one domain. Categorical suppression needs the source
    /// column for frequencies; pass `None` to skip suppression.
    pub fn apply_domain(&self, domain: &Domain, column: Option<&[Value]>) -> Domain {
        match domain {
            Domain::Continuous { min, max } => {
                let mid = (min + max) / 2.0;
                let half = (max - min) / 2.0 * self.widen.max(1.0);
                let (mut lo, mut hi) = (mid - half, mid + half);
                if self.snap > 0.0 {
                    lo = (lo / self.snap).floor() * self.snap;
                    hi = (hi / self.snap).ceil() * self.snap;
                }
                Domain::continuous(lo, hi)
            }
            Domain::Categorical(values) => {
                if self.suppress_below == 0 {
                    return domain.clone();
                }
                let Some(col) = column else {
                    return domain.clone();
                };
                let mut freq: HashMap<&Value, usize> = HashMap::new();
                for v in col {
                    *freq.entry(v).or_insert(0) += 1;
                }
                let mut kept: Vec<Value> = values
                    .iter()
                    .filter(|v| freq.get(v).copied().unwrap_or(0) >= self.suppress_below)
                    .cloned()
                    .collect();
                if kept.len() < values.len() {
                    kept.push(Value::Text("*".into()));
                }
                Domain::categorical(kept)
            }
        }
    }

    /// Generalises every shared domain of a package, using `source` for
    /// categorical frequencies.
    pub fn apply(&self, pkg: &MetadataPackage, source: &Relation) -> Result<MetadataPackage> {
        let mut out = pkg.clone();
        for (i, meta) in out.attributes.iter_mut().enumerate() {
            if let Some(dom) = &meta.domain {
                let column = source.column_values(i).ok();
                meta.domain = Some(self.apply_domain(dom, column.as_deref()));
            }
        }
        Ok(out)
    }

    /// The §III-A leakage-reduction factor for a continuous attribute:
    /// generalised θ over original θ, i.e. `range/range'` (≤ 1).
    pub fn continuous_theta_ratio(&self, domain: &Domain) -> Option<f64> {
        let original = domain.range()?;
        let generalised = self.apply_domain(domain, None).range()?;
        if generalised <= 0.0 {
            return None;
        }
        Some(original / generalised)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Schema};

    #[test]
    fn continuous_widening_and_snapping() {
        let g = DomainGeneralization {
            widen: 2.0,
            snap: 10.0,
            suppress_below: 0,
        };
        let d = g.apply_domain(&Domain::continuous(20.0, 40.0), None);
        // Width 20 → 40 centred on 30 → [10, 50]; snap keeps them.
        assert_eq!(d.bounds(), Some((10.0, 50.0)));

        let g = DomainGeneralization {
            widen: 1.0,
            snap: 25.0,
            suppress_below: 0,
        };
        let d = g.apply_domain(&Domain::continuous(20.0, 40.0), None);
        assert_eq!(d.bounds(), Some((0.0, 50.0)));
    }

    #[test]
    fn widen_below_one_is_clamped() {
        let g = DomainGeneralization {
            widen: 0.5,
            snap: 0.0,
            suppress_below: 0,
        };
        let d = g.apply_domain(&Domain::continuous(0.0, 10.0), None);
        assert_eq!(d.bounds(), Some((0.0, 10.0)));
    }

    #[test]
    fn categorical_suppression() {
        let g = DomainGeneralization {
            widen: 1.0,
            snap: 0.0,
            suppress_below: 2,
        };
        let col: Vec<Value> = ["a", "a", "b", "b", "rare"]
            .iter()
            .map(|&s| s.into())
            .collect();
        let dom = Domain::categorical(vec!["a", "b", "rare"]);
        let out = g.apply_domain(&dom, Some(&col));
        let values = out.values().unwrap();
        assert!(values.contains(&Value::Text("a".into())));
        assert!(!values.contains(&Value::Text("rare".into())));
        assert!(values.contains(&Value::Text("*".into())));
        // Cardinality unchanged here (one suppressed, one placeholder) —
        // the point is the *identifying* value is gone.
        assert_eq!(out.cardinality(), Some(3));
    }

    #[test]
    fn suppression_skipped_without_column_or_threshold() {
        let dom = Domain::categorical(vec!["a", "b"]);
        let g = DomainGeneralization {
            widen: 1.0,
            snap: 0.0,
            suppress_below: 2,
        };
        assert_eq!(g.apply_domain(&dom, None), dom);
        let g0 = DomainGeneralization {
            widen: 1.0,
            snap: 0.0,
            suppress_below: 0,
        };
        assert_eq!(g0.apply_domain(&dom, Some(&["a".into()])), dom);
    }

    #[test]
    fn theta_ratio_reflects_widening() {
        let g = DomainGeneralization {
            widen: 4.0,
            snap: 0.0,
            suppress_below: 0,
        };
        let ratio = g
            .continuous_theta_ratio(&Domain::continuous(0.0, 10.0))
            .unwrap();
        assert!((ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn package_level_application() {
        let schema = Schema::new(vec![
            Attribute::categorical("c"),
            Attribute::continuous("x"),
        ])
        .unwrap();
        let rel = Relation::from_rows(
            schema,
            vec![
                vec!["a".into(), 0.0.into()],
                vec!["a".into(), 100.0.into()],
                vec!["solo".into(), 50.0.into()],
            ],
        )
        .unwrap();
        let pkg = MetadataPackage::describe("p", &rel, vec![]).unwrap();
        let g = DomainGeneralization {
            widen: 2.0,
            snap: 50.0,
            suppress_below: 2,
        };
        let out = g.apply(&pkg, &rel).unwrap();
        let cont = out.attributes[1].domain.as_ref().unwrap();
        assert_eq!(cont.bounds(), Some((-50.0, 150.0)));
        let cat = out.attributes[0].domain.as_ref().unwrap();
        assert!(!cat.values().unwrap().contains(&Value::Text("solo".into())));
    }
}
