//! Property-based tests for FD inference, attribute sets and dependency
//! validation invariants.

use mp_metadata::{AttrSet, Dependency, Fd, FdSet, MetadataPackage, SharePolicy};
use mp_relation::{Attribute, Relation, Schema, Value};
use proptest::prelude::*;

const N_ATTRS: usize = 6;

/// Strategy: a random FD set over `N_ATTRS` attributes.
fn fdset_strategy() -> impl Strategy<Value = FdSet> {
    prop::collection::vec(
        (
            prop::collection::vec(0usize..N_ATTRS, 0..3),
            0usize..N_ATTRS,
        ),
        0..10,
    )
    .prop_map(|pairs| {
        FdSet::from_fds(
            N_ATTRS,
            pairs.into_iter().map(|(lhs, rhs)| Fd::new(lhs, rhs)),
        )
    })
}

fn attrset_strategy() -> impl Strategy<Value = AttrSet> {
    prop::collection::vec(0usize..N_ATTRS, 0..N_ATTRS).prop_map(AttrSet::from_iter)
}

proptest! {
    #[test]
    fn closure_is_extensive_monotone_idempotent(
        f in fdset_strategy(),
        x in attrset_strategy(),
        y in attrset_strategy(),
    ) {
        let cx = f.closure(&x);
        // Extensive: X ⊆ X⁺.
        prop_assert!(x.is_subset_of(&cx));
        // Idempotent: (X⁺)⁺ = X⁺.
        prop_assert_eq!(f.closure(&cx), cx.clone());
        // Monotone: X ⊆ Y ⇒ X⁺ ⊆ Y⁺.
        let union = x.union(&y);
        prop_assert!(cx.is_subset_of(&f.closure(&union)));
    }

    #[test]
    fn minimal_cover_is_equivalent_and_irredundant(f in fdset_strategy()) {
        let m = f.minimal_cover();
        prop_assert!(m.equivalent_to(&f));
        // No trivial FDs survive.
        prop_assert!(m.fds().iter().all(|fd| !fd.is_trivial()));
        // Dropping any FD breaks equivalence (irredundancy).
        for i in 0..m.len() {
            let rest = FdSet::from_fds(
                N_ATTRS,
                m.fds()
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, fd)| fd.clone()),
            );
            prop_assert!(
                !rest.implies(&m.fds()[i]),
                "cover kept a redundant FD: {:?}",
                m.fds()[i]
            );
        }
    }

    #[test]
    fn implication_is_sound_on_data(
        f in fdset_strategy(),
        rows in prop::collection::vec(
            prop::collection::vec(0i64..3, N_ATTRS),
            1..30,
        ),
    ) {
        // Build a relation SATISFYING every FD in `f` by rejection: repair
        // violations by copying the first tuple of each violating group.
        let schema = Schema::new(
            (0..N_ATTRS).map(|i| Attribute::categorical(format!("a{i}"))).collect(),
        ).unwrap();
        let mut data: Vec<Vec<Value>> = rows
            .into_iter()
            .map(|r| r.into_iter().map(Value::Int).collect())
            .collect();
        // Repair until all FDs hold (bounded iterations).
        for _ in 0..20 {
            let rel = Relation::from_rows(schema.clone(), data.clone()).unwrap();
            let mut dirty = false;
            for fd in f.fds() {
                if fd.holds(&rel).unwrap() {
                    continue;
                }
                dirty = true;
                // Repair: force rhs to be a function of lhs by keying.
                use std::collections::HashMap;
                let mut map: HashMap<Vec<Value>, Value> = HashMap::new();
                for row in data.iter_mut() {
                    let key: Vec<Value> =
                        fd.lhs.iter().map(|a| row[a].clone()).collect();
                    let v = map.entry(key).or_insert_with(|| row[fd.rhs].clone());
                    row[fd.rhs] = v.clone();
                }
            }
            if !dirty {
                break;
            }
        }
        let rel = Relation::from_rows(schema, data).unwrap();
        prop_assume!(f.fds().iter().all(|fd| fd.holds(&rel).unwrap()));
        // Soundness: every implied FD holds on every satisfying relation.
        for lhs in 0..N_ATTRS {
            for rhs in 0..N_ATTRS {
                let fd = Fd::new(lhs, rhs);
                if f.implies(&fd) {
                    prop_assert!(
                        fd.holds(&rel).unwrap(),
                        "implied FD {lhs}→{rhs} violated"
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_keys_determine_everything_and_are_minimal(f in fdset_strategy()) {
        let all = AttrSet::from_iter(0..N_ATTRS);
        for key in f.candidate_keys() {
            prop_assert_eq!(f.closure(&key), all.clone());
            for a in key.iter() {
                prop_assert!(
                    f.closure(&key.without(a)) != all,
                    "key {} not minimal",
                    key
                );
            }
        }
    }

    #[test]
    fn attrset_union_laws(
        a in attrset_strategy(),
        b in attrset_strategy(),
        c in attrset_strategy(),
    ) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert!(a.is_subset_of(&a.union(&b)));
        prop_assert_eq!(a.difference(&b).union(&b), a.union(&b));
    }

    #[test]
    fn policy_application_is_idempotent(
        kinds in any::<bool>(),
        domains in any::<bool>(),
        distributions in any::<bool>(),
        row_count in any::<bool>(),
        fds in any::<bool>(),
        rfds in any::<bool>(),
    ) {
        let policy = SharePolicy { kinds, domains, distributions, row_count, fds, rfds };
        let rel = Relation::from_rows(
            Schema::new(vec![
                Attribute::categorical("c"),
                Attribute::continuous("x"),
            ]).unwrap(),
            vec![vec!["a".into(), 1.0.into()], vec!["b".into(), 2.0.into()]],
        ).unwrap();
        let pkg = MetadataPackage::describe_with_distributions(
            "p",
            &rel,
            vec![Dependency::from(Fd::new(0usize, 1))],
            4,
        ).unwrap();
        let once = policy.apply(&pkg);
        let twice = policy.apply(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn package_json_roundtrips(
        deps_on in any::<bool>(),
        dists_on in any::<bool>(),
    ) {
        let rel = Relation::from_rows(
            Schema::new(vec![
                Attribute::categorical("c"),
                Attribute::continuous("x"),
            ]).unwrap(),
            vec![vec!["a".into(), 1.5.into()], vec!["a".into(), 2.5.into()]],
        ).unwrap();
        let deps = if deps_on {
            vec![Dependency::from(Fd::new(0usize, 1))]
        } else {
            vec![]
        };
        let pkg = if dists_on {
            MetadataPackage::describe_with_distributions("p", &rel, deps, 3).unwrap()
        } else {
            MetadataPackage::describe("p", &rel, deps).unwrap()
        };
        let back = MetadataPackage::from_json(&pkg.to_json()).unwrap();
        prop_assert_eq!(back, pkg);
    }

    /// JSON whitespace between tokens is not part of the exchange format:
    /// any amount of it may be inserted without changing what the package
    /// *means*, and re-serialising must reproduce the canonical bytes
    /// exactly.
    #[test]
    fn whitespace_perturbed_package_reserialises_byte_identically(
        dists_on in any::<bool>(),
        inserts in prop::collection::vec(
            (0usize..100_000, 0usize..4),
            1..64,
        ),
    ) {
        let rel = Relation::from_rows(
            Schema::new(vec![
                Attribute::categorical("c"),
                Attribute::continuous("x"),
            ]).unwrap(),
            vec![vec!["a".into(), 1.5.into()], vec!["b".into(), 2.5.into()]],
        ).unwrap();
        let deps = vec![Dependency::from(Fd::new(0usize, 1))];
        let pkg = if dists_on {
            MetadataPackage::describe_with_distributions("p", &rel, deps, 3).unwrap()
        } else {
            MetadataPackage::describe("p", &rel, deps).unwrap()
        };
        let json = pkg.to_json();
        let bytes = json.as_bytes();
        // Insertion points that cannot change meaning: adjacent to a
        // structural character or existing whitespace, outside string
        // literals (inserting inside a string or number atom would).
        let mut legal: Vec<usize> = Vec::new();
        let mut in_str = false;
        let mut esc = false;
        let is_safe = |b: u8| b.is_ascii_whitespace() || b"{}[],:".contains(&b);
        for i in 0..=bytes.len() {
            let prev_ok = i > 0 && is_safe(bytes[i - 1]);
            let next_ok = i < bytes.len() && is_safe(bytes[i]);
            if !in_str && (prev_ok || next_ok || i == 0 || i == bytes.len()) {
                legal.push(i);
            }
            if i < bytes.len() {
                match (in_str, esc, bytes[i]) {
                    (true, true, _) => esc = false,
                    (true, false, b'\\') => esc = true,
                    (true, false, b'"') => in_str = false,
                    (false, _, b'"') => in_str = true,
                    _ => {}
                }
            }
        }
        let ws = [b' ', b'\t', b'\n', b'\r'];
        let mut at: Vec<(usize, u8)> = inserts
            .iter()
            .map(|(ix, w)| (legal[ix % legal.len()], ws[*w]))
            .collect();
        at.sort_by_key(|&(pos, _)| std::cmp::Reverse(pos));
        let mut mutated = bytes.to_vec();
        for (pos, b) in at {
            mutated.insert(pos, b);
        }
        let mutated = String::from_utf8(mutated).unwrap();
        prop_assert!(mutated != json, "perturbation inserted nothing");
        let back = MetadataPackage::from_json(&mutated).unwrap();
        let reserialised = back.to_json();
        prop_assert_eq!(reserialised.as_bytes(), bytes);
        prop_assert_eq!(back, pkg);
    }
}
