//! A fuzzed decoder: `fuzzed-decoder-no-panic` ignores in-source allows
//! here — a reasoned suppression is still a reachable panic to the fuzzer.

/// The same suppressed unwrap as `parse_flag`, but the allow is not
/// honoured in this file.
pub fn decode(bytes: &[u8]) -> u64 {
    // lint: allow(no-panic) reason="fixture: not honoured in fuzzed decoders"
    u64::from_le_bytes(bytes[..8].try_into().unwrap())
}
