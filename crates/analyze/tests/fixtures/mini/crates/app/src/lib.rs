//! Fixture app crate: every function here sits in a lint scope and calls
//! into `fx-util`, so the violations only surface interprocedurally.

pub mod decode;
pub mod report;

/// Indirect panic chain: newest -> checked_tail -> last_or_panic.
pub fn newest(xs: &[u64]) -> u64 {
    fx_util::checked_tail(xs)
}

/// Regression pin for the poisoned-lock chain.
pub fn registry_size() -> usize {
    fx_util::registry_len()
}

/// A suppressed direct site: honoured here, because this file is not a
/// fuzzed decoder.
pub fn parse_flag(s: &str) -> bool {
    // lint: allow(no-panic) reason="fixture: demonstrates an honoured suppression"
    s.parse().unwrap()
}
