//! The fixture's byte-stable serialization path (no-unordered-iteration
//! scope): the hash-order taint arrives two hops away.

/// Two-hop taint chain: render -> summarize -> tally (HashMap iteration).
pub fn render(values: &[u64]) -> String {
    let mut out = String::new();
    for (v, n) in fx_util::summarize(values) {
        out.push_str(&format!("{v}={n}\n"));
    }
    out
}
