//! Fixture helper crate — deliberately violating. Nothing here is in a
//! lint scope; every violation must be found *through* the call graph
//! from `fx-app`.

use std::collections::HashMap;
use std::sync::Mutex;

pub static REGISTRY: Mutex<Vec<u64>> = Mutex::new(Vec::new());

/// Bottom of the indirect panic chain.
pub fn last_or_panic(xs: &[u64]) -> u64 {
    *xs.last().unwrap()
}

/// Middle hop: clean on its own, may-panic transitively.
pub fn checked_tail(xs: &[u64]) -> u64 {
    last_or_panic(xs)
}

/// Mirrors the poisoned-lock regression found in the real workspace: the
/// panic hides behind `lock().expect(..)` one crate away from the
/// no-panic scope that calls it.
pub fn registry_len() -> usize {
    REGISTRY.lock().expect("registry poisoned").len()
}

/// Hash-order taint source: iterates a `HashMap`.
pub fn tally(values: &[u64]) -> Vec<(u64, usize)> {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

/// Middle hop for the two-hop taint chain.
pub fn summarize(values: &[u64]) -> Vec<(u64, usize)> {
    tally(values)
}

/// Two mutexes acquired in both orders across two methods: the lock
/// identity is the shared field (`Store::registry`, `Store::journal`), so
/// the nested acquisitions form a two-lock cycle.
pub struct Store {
    registry: Mutex<Vec<u64>>,
    journal: Mutex<Vec<u64>>,
}

impl Store {
    /// Acquires registry, then journal while still holding it.
    pub fn sync_forward(&self) {
        if let Ok(mut r) = self.registry.lock() {
            if let Ok(j) = self.journal.lock() {
                r.extend(j.iter().copied());
            }
        }
    }

    /// The same two locks in the opposite order.
    pub fn sync_backward(&self) {
        if let Ok(mut j) = self.journal.lock() {
            if let Ok(r) = self.registry.lock() {
                j.extend(r.iter().copied());
            }
        }
    }
}
