//! Property tests for the interprocedural fact engine: propagation must
//! match a reference reachability closure, be independent of declaration
//! order, render byte-identical reports across runs, and honour reasoned
//! suppressions everywhere except fuzzed-decoder files.

use mp_analyze::callgraph::CallGraph;
use mp_analyze::config::Config;
use mp_analyze::facts::FactDb;
use mp_analyze::source::SourceFile;
use mp_analyze::workspace::{Manifest, Workspace};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// One generated function: an optional (possibly suppressed) panic site
/// plus direct calls to other generated functions.
#[derive(Debug, Clone)]
struct FnSpec {
    panics: bool,
    suppressed: bool,
    calls: Vec<usize>,
}

fn fn_specs() -> impl Strategy<Value = Vec<FnSpec>> {
    prop::collection::vec(
        (
            any::<bool>(),
            any::<bool>(),
            prop::collection::vec(0usize..16, 0..4),
        ),
        2..8,
    )
    .prop_map(|raw| {
        let n = raw.len();
        raw.into_iter()
            .map(|(panics, suppressed, calls)| FnSpec {
                panics,
                suppressed,
                calls: calls.into_iter().map(|c| c % n).collect(),
            })
            .collect()
    })
}

/// Renders the generated functions as one crate file, declared in the
/// given order (the *names* stay `f0..fN`, so facts can be compared
/// across declaration orders).
fn render(specs: &[FnSpec], order: &[usize]) -> String {
    let mut out = String::from("//! generated property fixture\n");
    for &i in order {
        let s = &specs[i];
        out.push_str(&format!("pub fn f{i}() {{\n"));
        if s.panics {
            out.push_str("    let v: Option<u8> = None;\n");
            if s.suppressed {
                out.push_str("    // lint: allow(no-panic) reason=\"generated fixture\"\n");
            }
            out.push_str("    let _ = v.unwrap();\n");
        }
        for &c in &s.calls {
            out.push_str(&format!("    f{c}();\n"));
        }
        out.push_str("}\n");
    }
    out
}

fn workspace(src: &str) -> Workspace {
    Workspace {
        root: PathBuf::from("/nonexistent"),
        files: vec![SourceFile::parse("crates/alpha/src/lib.rs", src.to_owned())],
        manifests: vec![Manifest::parse(
            "crates/alpha/Cargo.toml",
            "[package]\nname = \"mp-alpha\"\n",
        )],
    }
}

/// A config scoping `no-panic` over the generated file. The
/// fuzzed-decoder scope must be pinned explicitly: a rule section left
/// out of the config applies *everywhere*, which would turn the whole
/// generated workspace into a fuzzed surface and void every suppression.
fn scoped_config(fuzzed_path: &str) -> Config {
    let toml = format!(
        "[rules.no-panic]\npaths = [\"crates/alpha/src\"]\n\
         [rules.fuzzed-decoder-no-panic]\npaths = [\"{fuzzed_path}\"]\n"
    );
    Config::parse(&toml).expect("generated config parses")
}

/// Reference semantics: `fi` may panic iff an *unsuppressed* panic site is
/// reachable from it over the call edges (a reasoned allow does not
/// propagate).
fn reference_may_panic(specs: &[FnSpec]) -> Vec<bool> {
    let n = specs.len();
    let mut may: Vec<bool> = specs.iter().map(|s| s.panics && !s.suppressed).collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            if !may[i] && specs[i].calls.iter().any(|&c| may[c]) {
                may[i] = true;
                changed = true;
            }
        }
        if !changed {
            return may;
        }
    }
}

/// `f{i}` -> computed may-panic, keyed by name so declaration order drops
/// out of the comparison.
fn computed_may_panic(src: &str, config: &Config) -> BTreeMap<String, bool> {
    let ws = workspace(src);
    let graph = CallGraph::build(&ws);
    let db = FactDb::build(&ws, &graph, config);
    graph
        .fns
        .iter()
        .enumerate()
        .map(|(f, node)| (node.item.name.clone(), db.panic_dist[f].is_some()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn propagation_matches_reference_closure_in_any_declaration_order(
        specs in fn_specs(),
        seed_order in prop::collection::vec(any::<u64>(), 8),
    ) {
        let config = scoped_config("crates/alpha/src/none.rs");
        let reference = reference_may_panic(&specs);

        // Declaration order A: as generated.
        let forward: Vec<usize> = (0..specs.len()).collect();
        // Declaration order B: a permutation drawn from the seed stream.
        let mut shuffled = forward.clone();
        for (k, s) in seed_order.iter().enumerate() {
            let n = shuffled.len();
            shuffled.swap(k % n, (*s as usize) % n);
        }

        for order in [&forward, &shuffled] {
            let src = render(&specs, order);
            let computed = computed_may_panic(&src, &config);
            for (i, &expect) in reference.iter().enumerate() {
                prop_assert_eq!(
                    computed.get(&format!("f{i}")).copied(),
                    Some(expect),
                    "f{} under order {:?}\nsource:\n{}", i, order, src
                );
            }
        }
    }

    #[test]
    fn report_renders_byte_identical_across_runs(specs in fn_specs()) {
        let config = scoped_config("crates/alpha/src/none.rs");
        let order: Vec<usize> = (0..specs.len()).collect();
        let src = render(&specs, &order);
        let first = mp_analyze::rules::run(&workspace(&src), &config).render_json();
        let second = mp_analyze::rules::run(&workspace(&src), &config).render_json();
        prop_assert_eq!(first, second);
    }

    #[test]
    fn suppressions_honoured_except_in_fuzzed_decoders(specs in fn_specs()) {
        let order: Vec<usize> = (0..specs.len()).collect();
        let src = render(&specs, &order);

        // Under plain no-panic scope, exactly the unsuppressed local
        // sites are flagged lexically.
        let plain = mp_analyze::rules::run(&workspace(&src), &scoped_config("crates/alpha/src/none.rs"));
        let lexical = plain.diagnostics.iter().filter(|d| d.rule == "no-panic").count();
        let unsuppressed = specs.iter().filter(|s| s.panics && !s.suppressed).count();
        prop_assert_eq!(lexical, unsuppressed);

        // A fuzzed-decoder scope ignores the allows: every panic site is
        // flagged, suppressed or not.
        let fuzzed_config = scoped_config("crates/alpha/src/lib.rs");
        let fuzzed = mp_analyze::rules::run(&workspace(&src), &fuzzed_config);
        let on_surface = fuzzed
            .diagnostics
            .iter()
            .filter(|d| d.rule == "fuzzed-decoder-no-panic")
            .count();
        let all_sites = specs.iter().filter(|s| s.panics).count();
        prop_assert_eq!(on_surface, all_sites);
    }
}
