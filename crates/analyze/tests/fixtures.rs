//! Golden-report test over the committed fixture mini-workspace in
//! `tests/fixtures/mini/`: two crates where every violation is only
//! visible interprocedurally — an indirect panic chain, a regression pin
//! for the poisoned-lock chain found in the real workspace, a two-hop
//! determinism taint into a serialization path, a two-lock ordering
//! cycle, and a fuzzed-decoder file whose suppression is ignored.
//!
//! To regenerate after an intentional diagnostic change:
//!
//! ```text
//! cargo run -p mp-analyze -- --root crates/analyze/tests/fixtures/mini \
//!     --format json > crates/analyze/tests/fixtures/mini.golden.json
//! ```

use std::path::PathBuf;

fn mini_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini")
}

fn analyze_mini() -> mp_analyze::diagnostics::Report {
    mp_analyze::analyze_with_default_config(&mini_root()).expect("fixture analysis")
}

#[test]
fn fixture_report_matches_golden_json() {
    let rendered = analyze_mini().render_json();
    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini.golden.json");
    let golden = std::fs::read_to_string(&golden_path).expect("mini.golden.json is committed");
    assert_eq!(
        rendered, golden,
        "fixture diagnostics drifted from mini.golden.json; \
         regenerate it if the change is intentional (see module docs)"
    );
}

#[test]
fn fixture_chains_cover_every_interprocedural_rule() {
    let report = analyze_mini();
    let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
    for rule in [
        "no-panic-reachable",
        "determinism-taint",
        "lock-order",
        "fuzzed-decoder-no-panic",
    ] {
        assert!(rules.contains(&rule), "fixture lost its {rule} case");
    }
    // Every interprocedural diagnostic carries its full call chain.
    for d in &report.diagnostics {
        if d.rule != "fuzzed-decoder-no-panic" {
            assert!(!d.chain.is_empty(), "{} diagnostic lost its chain", d.rule);
        }
    }
}

#[test]
fn poisoned_lock_regression_stays_pinned() {
    // The real finding this fixture pins: a `lock().expect(..)` panic one
    // crate away from the no-panic scope that calls it — invisible to the
    // lexical rule, caught by propagation.
    let report = analyze_mini();
    let hit = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "no-panic-reachable" && d.message.contains("registry_len"))
        .expect("the poisoned-lock chain must stay flagged");
    assert!(
        hit.chain.iter().any(|hop| hop.contains("`expect()`")),
        "chain must bottom out at the lock().expect site: {:?}",
        hit.chain
    );
}

#[test]
fn honoured_suppression_stays_silent() {
    // `parse_flag` in fx-app suppresses its unwrap with a reason; outside
    // fuzzed-decoder files that allow must hold.
    let report = analyze_mini();
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.path == "crates/app/src/lib.rs" && d.line == 21),
        "the reasoned allow on parse_flag's unwrap was not honoured"
    );
}
