//! The linter's own acceptance gate: the workspace at HEAD must be clean
//! under the shipped `analyze.toml`, and the JSON report must be
//! byte-stable across runs (CI diffs two runs of the real binary; this
//! test catches the same regression without leaving the test harness).

use std::path::Path;

/// Workspace root, two levels up from this crate's manifest.
fn workspace_root() -> &'static Path {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels below the workspace root");
    assert!(
        root.join("analyze.toml").is_file(),
        "no analyze.toml at {}",
        root.display()
    );
    root
}

#[test]
fn workspace_head_is_clean_under_shipped_config() {
    let report = mp_analyze::analyze_with_default_config(workspace_root())
        .expect("analysis of the workspace must not error");
    assert!(
        report.is_clean(),
        "mp-analyze found violations at HEAD:\n{}",
        report.render_human()
    );
}

#[test]
fn shipped_config_parses_and_matches_builtin_default() {
    // analyze.toml is the source of truth for CI; the built-in default is
    // the fallback when the file is missing. They must agree, or local
    // runs and CI runs would lint different scopes.
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("analyze.toml")).expect("read analyze.toml");
    let shipped = mp_analyze::config::Config::parse(&text).expect("analyze.toml must parse");
    let builtin = mp_analyze::config::Config::workspace_default();
    assert_eq!(
        format!("{shipped:?}"),
        format!("{builtin:?}"),
        "analyze.toml drifted from Config::workspace_default()"
    );
}

#[test]
fn json_report_is_byte_stable_across_runs() {
    let root = workspace_root();
    let first = mp_analyze::analyze_with_default_config(root)
        .expect("first run")
        .render_json();
    let second = mp_analyze::analyze_with_default_config(root)
        .expect("second run")
        .render_json();
    assert_eq!(
        first, second,
        "two runs over the same tree must render identical bytes"
    );
    assert!(first.contains("\"schema_version\": 2"));
}

#[test]
fn committed_baseline_has_no_regressions() {
    // The shipped analyze-baseline.toml must pass the ratchet at HEAD —
    // otherwise CI's blocking `--ratchet` run and this test disagree.
    let root = workspace_root();
    let report = mp_analyze::analyze_with_default_config(root).expect("analysis");
    let text = std::fs::read_to_string(root.join("analyze-baseline.toml"))
        .expect("analyze-baseline.toml is committed");
    let baseline = mp_analyze::ratchet::Baseline::parse(&text).expect("baseline parses");
    let outcome = mp_analyze::ratchet::compare(&baseline, &report.facts);
    assert!(
        outcome.passed(),
        "debt counters rose above the committed baseline:\n{}",
        outcome.regressions.join("\n")
    );
}
