//! The burn-down ratchet: `analyze-baseline.toml` pins per-crate debt
//! counters (lexical panic sites, locally-tainted functions — suppressed
//! ones included, because a reasoned allow is still recorded debt), and
//! `--ratchet` fails the run when any counter *rises*. When counters fall,
//! the run stays green and a tightened baseline is suggested so the
//! improvement gets locked in.
//!
//! The baseline is deliberately coarse — counts per crate, not per site —
//! so ordinary refactors that move a suppressed `unwrap` between lines
//! don't churn the file, while adding net-new debt anywhere cannot pass CI
//! unnoticed.

use crate::facts::CrateCounts;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// A parsed `analyze-baseline.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Per-crate pinned counters, keyed by package name.
    pub counts: BTreeMap<String, CrateCounts>,
}

impl Baseline {
    /// Parses the baseline file: `[crate-name]` sections with
    /// `panic_sites = N` / `tainted_fns = N` integer keys. Unknown keys are
    /// errors — a typo must not silently unpin a counter.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts: BTreeMap<String, CrateCounts> = BTreeMap::new();
        let mut current: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(at) => raw[..at].trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let Some(name) = header.strip_suffix(']') else {
                    return Err(format!("line {lineno}: unclosed section header"));
                };
                let name = name.trim().to_owned();
                if counts.contains_key(&name) {
                    return Err(format!("line {lineno}: duplicate crate section `{name}`"));
                }
                counts.insert(name.clone(), CrateCounts::ZERO);
                current = Some(name);
                continue;
            }
            let Some(crate_name) = &current else {
                return Err(format!(
                    "line {lineno}: expected a `[crate-name]` section before `{line}`"
                ));
            };
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {lineno}: expected `key = integer`"));
            };
            let value: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("line {lineno}: `{}` is not an integer", value.trim()))?;
            let Some(entry) = counts.get_mut(crate_name) else {
                continue; // section header always inserts first
            };
            match key.trim() {
                "panic_sites" => entry.panic_sites = value,
                "tainted_fns" => entry.tainted_fns = value,
                other => {
                    return Err(format!(
                        "line {lineno}: unknown key `{other}` (expected panic_sites or tainted_fns)"
                    ));
                }
            }
        }
        Ok(Baseline { counts })
    }

    /// Renders counters in the canonical baseline format (sorted crates,
    /// fixed key order) — what `--write-baseline` emits and what a
    /// tightened-baseline suggestion prints.
    pub fn render(counts: &BTreeMap<String, CrateCounts>) -> String {
        let mut out = String::from(
            "# Debt ratchet baseline for `mpriv analyze --ratchet`.\n\
             # Counts may only fall. When they do, run\n\
             # `mpriv analyze --ratchet --write-baseline` to lock the improvement in.\n",
        );
        for (name, c) in counts {
            let _ = write!(
                out,
                "\n[{name}]\npanic_sites = {}\ntainted_fns = {}\n",
                c.panic_sites, c.tainted_fns
            );
        }
        out
    }
}

/// Result of comparing current counters against the pinned baseline.
#[derive(Debug, Clone, Default)]
pub struct RatchetOutcome {
    /// Counter increases — each fails the run.
    pub regressions: Vec<String>,
    /// Counter decreases — the baseline can be tightened.
    pub improvements: Vec<String>,
}

impl RatchetOutcome {
    /// The no-news outcome. Mirrors [`CrateCounts::ZERO`]: an associated
    /// const keeps audited callers off derive-generated `default()`.
    pub const EMPTY: RatchetOutcome = RatchetOutcome {
        regressions: Vec::new(),
        improvements: Vec::new(),
    };

    /// True when no counter rose.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares `current` counters against `baseline`. A crate missing from
/// the baseline is treated as pinned at zero (new crates start debt-free);
/// a baselined crate missing from `current` simply dropped to zero.
pub fn compare(baseline: &Baseline, current: &BTreeMap<String, CrateCounts>) -> RatchetOutcome {
    let mut out = RatchetOutcome::EMPTY;
    let zero = CrateCounts::ZERO;
    let names: std::collections::BTreeSet<&String> =
        baseline.counts.keys().chain(current.keys()).collect();
    for name in names {
        let pinned = baseline.counts.get(name).unwrap_or(&zero);
        let now = current.get(name).unwrap_or(&zero);
        for (what, was, is) in [
            ("panic_sites", pinned.panic_sites, now.panic_sites),
            ("tainted_fns", pinned.tainted_fns, now.tainted_fns),
        ] {
            if is > was {
                out.regressions
                    .push(format!("{name}: {what} rose {was} -> {is}"));
            } else if is < was {
                out.improvements
                    .push(format!("{name}: {what} fell {was} -> {is}"));
            }
        }
    }
    out
}

/// Applies the ratchet flags against the baseline file at `path`.
///
/// With `write`, the current counters are rendered in canonical form and
/// written to `path` (creating it on first use), and the run passes.
/// Otherwise `path` must exist; the pinned counters are compared against
/// `current` and a ready-to-print summary is returned alongside the
/// outcome. The summary is meant for stderr — stdout stays reserved for
/// the byte-stable report.
pub fn apply(
    current: &BTreeMap<String, CrateCounts>,
    path: &Path,
    write: bool,
) -> Result<(RatchetOutcome, String), String> {
    if write {
        let rendered = Baseline::render(current);
        std::fs::write(path, &rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
        return Ok((
            RatchetOutcome::EMPTY,
            format!(
                "ratchet: wrote {} ({} crate(s) pinned)",
                path.display(),
                current.len()
            ),
        ));
    }
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "reading {}: {e} (run with --ratchet --write-baseline to create it)",
            path.display()
        )
    })?;
    let baseline = Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let outcome = compare(&baseline, current);
    let mut summary = String::new();
    for r in &outcome.regressions {
        let _ = writeln!(summary, "ratchet: REGRESSION {r}");
    }
    for i in &outcome.improvements {
        let _ = writeln!(summary, "ratchet: improved {i}");
    }
    if !outcome.improvements.is_empty() {
        let _ = writeln!(
            summary,
            "ratchet: counters fell; tighten the baseline with --ratchet --write-baseline"
        );
    }
    if outcome.passed() && outcome.improvements.is_empty() {
        let _ = writeln!(
            summary,
            "ratchet: OK ({} crate(s) pinned)",
            baseline.counts.len()
        );
    }
    Ok((outcome, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, usize, usize)]) -> BTreeMap<String, CrateCounts> {
        entries
            .iter()
            .map(|&(n, p, t)| {
                (
                    n.to_owned(),
                    CrateCounts {
                        panic_sites: p,
                        tainted_fns: t,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn parse_render_round_trip() {
        let c = counts(&[("mp-core", 3, 1), ("mp-observe", 0, 0)]);
        let rendered = Baseline::render(&c);
        let parsed = Baseline::parse(&rendered).expect("own rendering parses");
        assert_eq!(parsed.counts, c);
        // Canonical: rendering the parse is byte-identical.
        assert_eq!(Baseline::render(&parsed.counts), rendered);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Baseline::parse("[unclosed\n").is_err());
        assert!(Baseline::parse("panic_sites = 3\n").is_err());
        assert!(Baseline::parse("[mp-core]\npanic_sites = many\n").is_err());
        assert!(Baseline::parse("[mp-core]\ntypo_key = 3\n").is_err());
        assert!(Baseline::parse("[mp-core]\n[mp-core]\n").is_err());
    }

    #[test]
    fn regressions_fail_improvements_suggest() {
        let baseline = Baseline {
            counts: counts(&[("mp-core", 3, 1), ("mp-relation", 2, 0)]),
        };
        let current = counts(&[("mp-core", 4, 0), ("mp-relation", 2, 0)]);
        let out = compare(&baseline, &current);
        assert!(!out.passed());
        assert_eq!(out.regressions, vec!["mp-core: panic_sites rose 3 -> 4"]);
        assert_eq!(out.improvements, vec!["mp-core: tainted_fns fell 1 -> 0"]);
    }

    #[test]
    fn unbaselined_crate_is_pinned_at_zero() {
        let baseline = Baseline::default();
        let current = counts(&[("mp-new", 1, 0)]);
        let out = compare(&baseline, &current);
        assert_eq!(out.regressions, vec!["mp-new: panic_sites rose 0 -> 1"]);
        // And the reverse: a baselined crate that vanished is an
        // improvement, not an error.
        let out = compare(
            &Baseline {
                counts: counts(&[("mp-gone", 2, 2)]),
            },
            &BTreeMap::new(),
        );
        assert!(out.passed());
        assert_eq!(out.improvements.len(), 2);
    }

    #[test]
    fn equal_counts_pass_silently() {
        let c = counts(&[("mp-core", 3, 1)]);
        let out = compare(&Baseline { counts: c.clone() }, &c);
        assert!(out.passed());
        assert!(out.improvements.is_empty());
    }
}
