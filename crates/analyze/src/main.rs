//! `mp-analyze` — run the workspace invariant linter from the command line.
//!
//! ```text
//! mp-analyze [--root DIR] [--config PATH] [--format human|json] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage/configuration
//! error. The JSON report is byte-stable across runs on an unchanged tree.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Outcome { report, clean }) => {
            print!("{report}");
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("mp-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}

struct Outcome {
    report: String,
    clean: bool,
}

fn run(args: &[String]) -> Result<Outcome, String> {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut format = "human".to_owned();
    let mut list_rules = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(PathBuf::from(
                    iter.next().ok_or("--root needs a directory")?,
                ));
            }
            "--config" => {
                config_path = Some(PathBuf::from(iter.next().ok_or("--config needs a path")?));
            }
            "--format" => {
                format = iter.next().ok_or("--format needs human|json")?.clone();
                if format != "human" && format != "json" {
                    return Err(format!("unknown format `{format}` (expected human|json)"));
                }
            }
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                return Ok(Outcome {
                    report: USAGE.to_owned(),
                    clean: true,
                });
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }

    if list_rules {
        let mut out = String::new();
        for lint in mp_analyze::rules::registry() {
            out.push_str(&format!("{:<24} {}\n", lint.name(), lint.description()));
        }
        return Ok(Outcome {
            report: out,
            clean: true,
        });
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getting cwd: {e}"))?;
            mp_analyze::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory; pass --root")?
        }
    };

    let config = match config_path {
        Some(p) => {
            let text =
                std::fs::read_to_string(&p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            mp_analyze::config::Config::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?
        }
        None => {
            let p = root.join("analyze.toml");
            if p.exists() {
                let text = std::fs::read_to_string(&p)
                    .map_err(|e| format!("reading {}: {e}", p.display()))?;
                mp_analyze::config::Config::parse(&text)
                    .map_err(|e| format!("analyze.toml: {e}"))?
            } else {
                mp_analyze::config::Config::workspace_default()
            }
        }
    };

    let report = mp_analyze::analyze(&root, &config)?;
    let rendered = match format.as_str() {
        "json" => report.render_json(),
        _ => report.render_human(),
    };
    Ok(Outcome {
        report: rendered,
        clean: report.is_clean(),
    })
}

const USAGE: &str = "\
mp-analyze: workspace invariant linter (determinism, panic-safety, layering, I/O hygiene)

USAGE:
    mp-analyze [--root DIR] [--config PATH] [--format human|json] [--list-rules]

OPTIONS:
    --root DIR       workspace root (default: nearest [workspace] above cwd)
    --config PATH    analyze.toml to use (default: <root>/analyze.toml)
    --format FMT     human (file:line:col lines) or json (stable sorted keys)
    --list-rules     print every registered rule and exit

EXIT CODES:
    0  clean    1  violations found    2  usage or configuration error
";
