//! `mp-analyze` — run the workspace invariant linter from the command line.
//!
//! ```text
//! mp-analyze [--root DIR] [--config PATH] [--format human|json] [--list-rules]
//!            [--ratchet] [--baseline PATH] [--write-baseline]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found or ratchet regression, `2`
//! usage/configuration error. The JSON report is byte-stable across runs
//! on an unchanged tree; ratchet chatter goes to stderr to keep it so.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Outcome { report, clean }) => {
            print!("{report}");
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("mp-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}

struct Outcome {
    report: String,
    clean: bool,
}

/// Runs the debt ratchet after the analysis proper. Messages go to
/// stderr; a regression flips the exit code to 1.
fn run_ratchet(
    report: &mp_analyze::diagnostics::Report,
    root: &std::path::Path,
    baseline: Option<PathBuf>,
    write: bool,
) -> Result<bool, String> {
    let path = baseline.unwrap_or_else(|| root.join("analyze-baseline.toml"));
    let (outcome, summary) = mp_analyze::ratchet::apply(&report.facts, &path, write)?;
    eprint!("{summary}");
    if !summary.ends_with('\n') && !summary.is_empty() {
        eprintln!();
    }
    Ok(outcome.passed())
}

fn run(args: &[String]) -> Result<Outcome, String> {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut format = "human".to_owned();
    let mut list_rules = false;
    let mut ratchet = false;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(PathBuf::from(
                    iter.next().ok_or("--root needs a directory")?,
                ));
            }
            "--config" => {
                config_path = Some(PathBuf::from(iter.next().ok_or("--config needs a path")?));
            }
            "--format" => {
                format = iter.next().ok_or("--format needs human|json")?.clone();
                if format != "human" && format != "json" {
                    return Err(format!("unknown format `{format}` (expected human|json)"));
                }
            }
            "--list-rules" => list_rules = true,
            "--ratchet" => ratchet = true,
            "--baseline" => {
                baseline = Some(PathBuf::from(iter.next().ok_or("--baseline needs a path")?));
            }
            "--write-baseline" => {
                ratchet = true;
                write_baseline = true;
            }
            "--help" | "-h" => {
                return Ok(Outcome {
                    report: USAGE.to_owned(),
                    clean: true,
                });
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }

    if list_rules {
        let mut out = String::new();
        for lint in mp_analyze::rules::registry() {
            out.push_str(&format!("{:<24} {}\n", lint.name(), lint.description()));
        }
        return Ok(Outcome {
            report: out,
            clean: true,
        });
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getting cwd: {e}"))?;
            mp_analyze::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory; pass --root")?
        }
    };

    let config = match config_path {
        Some(p) => {
            let text =
                std::fs::read_to_string(&p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            mp_analyze::config::Config::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?
        }
        None => {
            let p = root.join("analyze.toml");
            if p.exists() {
                let text = std::fs::read_to_string(&p)
                    .map_err(|e| format!("reading {}: {e}", p.display()))?;
                mp_analyze::config::Config::parse(&text)
                    .map_err(|e| format!("analyze.toml: {e}"))?
            } else {
                mp_analyze::config::Config::workspace_default()
            }
        }
    };

    let report = mp_analyze::analyze(&root, &config)?;
    let mut clean = report.is_clean();
    if ratchet {
        clean &= run_ratchet(&report, &root, baseline, write_baseline)?;
    }
    let rendered = match format.as_str() {
        "json" => report.render_json(),
        _ => report.render_human(),
    };
    Ok(Outcome {
        report: rendered,
        clean,
    })
}

const USAGE: &str = "\
mp-analyze: workspace invariant linter (determinism, panic-safety, layering, I/O hygiene)

USAGE:
    mp-analyze [--root DIR] [--config PATH] [--format human|json] [--list-rules]
               [--ratchet] [--baseline PATH] [--write-baseline]

OPTIONS:
    --root DIR        workspace root (default: nearest [workspace] above cwd)
    --config PATH     analyze.toml to use (default: <root>/analyze.toml)
    --format FMT      human (file:line:col lines) or json (stable sorted keys)
    --list-rules      print every registered rule and exit
    --ratchet         compare per-crate debt counters against the baseline;
                      any counter rise fails the run (stderr, exit 1)
    --baseline PATH   baseline file (default: <root>/analyze-baseline.toml)
    --write-baseline  write current counters as the new baseline (implies
                      --ratchet; use after burning debt down)

EXIT CODES:
    0  clean    1  violations found or ratchet regression    2  usage error
";
