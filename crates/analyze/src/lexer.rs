//! A hand-rolled Rust lexer, sufficient for lexical lint passes.
//!
//! The lexer turns source text into a flat token stream with byte spans and
//! 1-based line/column positions. It is deliberately *not* a parser: lints
//! work on token patterns (`. unwrap ( )`, `Instant :: now`, …), so the
//! lexer only has to get the hard lexical cases right so that token-pattern
//! matching never fires inside strings or comments:
//!
//! * raw strings with arbitrary hash fences (`r##"…"##`, `br#"…"#`),
//! * nested block comments (`/* /* */ */`),
//! * char literals vs lifetimes (`'a'` vs `'a`, `'\u{1F600}'`),
//! * raw identifiers (`r#fn`) vs raw strings (`r#"…"#`),
//! * line/block doc comments (`///`, `//!`, `/** */`, `/*! */`).
//!
//! Unterminated constructs never panic: the offending token extends to end
//! of input and is surfaced as [`TokenKind::Unterminated`] so a lint can
//! report it instead of the lexer crashing on adversarial input.

/// What a token is, at the granularity lint passes care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including the `foo` of a raw `r#foo`).
    Ident,
    /// Raw identifier `r#foo`; `text` keeps the `r#` prefix.
    RawIdent,
    /// Lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// Character literal `'x'`, including escapes (`'\n'`, `'\u{7FFF}'`).
    CharLit,
    /// Byte literal `b'x'`.
    ByteLit,
    /// String literal `"…"` (escapes allowed).
    StrLit,
    /// Raw string literal `r"…"` / `r#"…"#` (any fence width).
    RawStrLit,
    /// Byte-string literal `b"…"` or raw byte-string `br#"…"#`.
    ByteStrLit,
    /// Numeric literal (integer or float, any base, with suffix).
    NumberLit,
    /// Non-doc line comment `// …`.
    LineComment,
    /// Doc line comment `/// …` or `//! …`.
    DocLineComment,
    /// Non-doc block comment `/* … */`, nesting handled.
    BlockComment,
    /// Doc block comment `/** … */` or `/*! … */`.
    DocBlockComment,
    /// A single punctuation byte (`.`, `:`, `[`, `!`, …).
    Punct,
    /// A lexically unterminated string/char/comment reaching end of input.
    Unterminated,
}

/// One lexed token: kind plus byte span and 1-based position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification used by lint pattern matching.
    pub kind: TokenKind,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based column (in bytes) of the first byte.
    pub col: usize,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into tokens, skipping whitespace but keeping comments.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic() || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining the line/column counters.
    fn bump(&mut self) {
        if let Some(&b) = self.bytes.get(self.pos) {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.bump();
                continue;
            }
            let (start, line, col) = (self.pos, self.line, self.col);
            let kind = self.next_kind(b);
            debug_assert!(self.pos > start, "lexer must always make progress");
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
                col,
            });
        }
        self.tokens
    }

    /// Consumes one token starting at the current position and returns its kind.
    fn next_kind(&mut self, b: u8) -> TokenKind {
        match b {
            b'/' => match self.peek(1) {
                Some(b'/') => self.line_comment(),
                Some(b'*') => self.block_comment(),
                _ => self.punct(),
            },
            b'\'' => self.quote(),
            b'"' => self.string_lit(),
            b'r' => self.maybe_raw(),
            b'b' => self.maybe_byte(),
            _ if is_ident_start(b) => self.ident(),
            _ if b.is_ascii_digit() => self.number(),
            _ => self.punct(),
        }
    }

    fn punct(&mut self) -> TokenKind {
        self.bump();
        TokenKind::Punct
    }

    fn ident(&mut self) -> TokenKind {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        // Integer part: decimal digits or a base prefix (0x/0o/0b) with its
        // wider digit alphabet; `_` separators allowed throughout.
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'))
        {
            self.bump_n(2);
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.bump();
            }
            return TokenKind::NumberLit;
        }
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_digit() || c == b'_')
        {
            self.bump();
        }
        // Fraction only when a digit follows the dot: `1.5` is one number,
        // `1.max(2)` is a number then a method call, `0..n` is a range.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_digit() || c == b'_')
            {
                self.bump();
            }
        }
        // Exponent (`1e9`, `2.5E-3`).
        if matches!(self.peek(0), Some(b'e' | b'E'))
            && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek(1), Some(b'+' | b'-'))
                    && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
        {
            self.bump_n(2);
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_digit() || c == b'_')
            {
                self.bump();
            }
        }
        // Type suffix (`1u32`, `1.0f64`).
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        TokenKind::NumberLit
    }

    fn line_comment(&mut self) -> TokenKind {
        // `///` and `//!` are docs; `////…` (4+ slashes) is a plain comment,
        // matching rustc.
        let doc = match (self.peek(2), self.peek(3)) {
            (Some(b'!'), _) => true,
            (Some(b'/'), Some(b'/')) => false,
            (Some(b'/'), _) => true,
            _ => false,
        };
        while self.peek(0).is_some_and(|c| c != b'\n') {
            self.bump();
        }
        if doc {
            TokenKind::DocLineComment
        } else {
            TokenKind::LineComment
        }
    }

    fn block_comment(&mut self) -> TokenKind {
        // `/**` and `/*!` are docs, except `/**/` (empty) and `/***` which
        // are plain comments, matching rustc.
        let doc = match (self.peek(2), self.peek(3)) {
            (Some(b'!'), _) => true,
            (Some(b'*'), Some(b'/')) => false,
            (Some(b'*'), Some(b'*')) => false,
            (Some(b'*'), _) => true,
            _ => false,
        };
        self.bump_n(2);
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => return TokenKind::Unterminated,
            }
        }
        if doc {
            TokenKind::DocBlockComment
        } else {
            TokenKind::BlockComment
        }
    }

    /// `'` starts either a lifetime (`'a`, `'static`, the `'s` in `&'s str`)
    /// or a char literal (`'a'`, `'\n'`, `'\u{1F600}'`).
    fn quote(&mut self) -> TokenKind {
        // `'ident` not followed by `'` is a lifetime; `'x'` is a char.
        if self.peek(1).is_some_and(is_ident_start) {
            let mut ahead = 2;
            while self.peek(ahead).is_some_and(is_ident_continue) {
                ahead += 1;
            }
            if self.peek(ahead) != Some(b'\'') {
                self.bump(); // the quote
                self.bump_n(ahead - 1);
                return TokenKind::Lifetime;
            }
        }
        self.char_like(b'\'', TokenKind::CharLit)
    }

    /// Consumes a quoted literal with escape handling; `open` is `'` or `"`.
    fn char_like(&mut self, open: u8, kind: TokenKind) -> TokenKind {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                None => return TokenKind::Unterminated,
                Some(b'\\') => self.bump_n(2),
                Some(c) if c == open => {
                    self.bump();
                    return kind;
                }
                // A newline inside a char literal means it was really a
                // stray quote; stop so the lexer can't swallow the file.
                Some(b'\n') if open == b'\'' => return TokenKind::Unterminated,
                Some(_) => self.bump(),
            }
        }
    }

    fn string_lit(&mut self) -> TokenKind {
        self.char_like(b'"', TokenKind::StrLit)
    }

    /// `r` starts a raw string (`r"…"`, `r#"…"#`), a raw identifier
    /// (`r#match`) or a plain identifier (`result`).
    fn maybe_raw(&mut self) -> TokenKind {
        let mut hashes = 0;
        while self.peek(1 + hashes) == Some(b'#') {
            hashes += 1;
        }
        match self.peek(1 + hashes) {
            Some(b'"') => self.raw_string(1, hashes, TokenKind::RawStrLit),
            Some(c) if hashes == 1 && is_ident_start(c) => {
                self.bump_n(2); // r#
                self.ident();
                TokenKind::RawIdent
            }
            _ => self.ident(),
        }
    }

    /// `b` starts `b'x'`, `b"…"`, `br#"…"#` or a plain identifier.
    fn maybe_byte(&mut self) -> TokenKind {
        match self.peek(1) {
            Some(b'\'') => {
                self.bump();
                self.char_like(b'\'', TokenKind::ByteLit)
            }
            Some(b'"') => {
                self.bump();
                self.char_like(b'"', TokenKind::ByteStrLit)
            }
            Some(b'r') => {
                let mut hashes = 0;
                while self.peek(2 + hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(2 + hashes) == Some(b'"') {
                    self.raw_string(2, hashes, TokenKind::ByteStrLit)
                } else {
                    self.ident()
                }
            }
            _ => self.ident(),
        }
    }

    /// Consumes `r##"…"##`-style raw strings. `prefix` is the length of the
    /// `r`/`br` introducer, `hashes` the fence width. No escapes inside; the
    /// literal ends only at `"` followed by exactly `hashes` `#`s.
    fn raw_string(&mut self, prefix: usize, hashes: usize, kind: TokenKind) -> TokenKind {
        self.bump_n(prefix + hashes + 1); // introducer, fence, opening quote
        'scan: loop {
            match self.peek(0) {
                None => return TokenKind::Unterminated,
                Some(b'"') => {
                    for i in 0..hashes {
                        if self.peek(1 + i) != Some(b'#') {
                            self.bump();
                            continue 'scan;
                        }
                    }
                    self.bump_n(1 + hashes);
                    return kind;
                }
                Some(_) => self.bump(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.unwrap();");
        assert_eq!(toks[0], (TokenKind::Ident, "let"));
        assert_eq!(toks[3], (TokenKind::Ident, "a"));
        assert_eq!(toks[4], (TokenKind::Punct, "."));
        assert_eq!(toks[5], (TokenKind::Ident, "unwrap"));
    }

    #[test]
    fn line_and_col_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"x = "call .unwrap() // not a comment";"#);
        assert_eq!(toks[2].0, TokenKind::StrLit);
        assert_eq!(toks.len(), 4); // x = "…" ;
    }

    #[test]
    fn string_escapes() {
        let toks = kinds(r#""a\"b" c"#);
        assert_eq!(toks[0], (TokenKind::StrLit, r#""a\"b""#));
        assert_eq!(toks[1], (TokenKind::Ident, "c"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r##"quote: "# inside"##; done"####;
        let toks = kinds(src);
        assert_eq!(toks[3].0, TokenKind::RawStrLit);
        assert_eq!(toks[3].1, r###"r##"quote: "# inside"##"###);
        assert_eq!(toks[5], (TokenKind::Ident, "done"));
    }

    #[test]
    fn raw_byte_strings() {
        let toks = kinds(r###"br#"raw "bytes""# x"###);
        assert_eq!(toks[0].0, TokenKind::ByteStrLit);
        assert_eq!(toks[1], (TokenKind::Ident, "x"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(toks[0], (TokenKind::Ident, "a"));
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[2], (TokenKind::Ident, "b"));
    }

    #[test]
    fn doc_comments_are_distinguished() {
        assert_eq!(kinds("/// doc")[0].0, TokenKind::DocLineComment);
        assert_eq!(kinds("//! inner doc")[0].0, TokenKind::DocLineComment);
        assert_eq!(kinds("// plain")[0].0, TokenKind::LineComment);
        assert_eq!(kinds("//// rule")[0].0, TokenKind::LineComment);
        assert_eq!(kinds("/** doc */")[0].0, TokenKind::DocBlockComment);
        assert_eq!(kinds("/*! inner */")[0].0, TokenKind::DocBlockComment);
        assert_eq!(kinds("/* plain */")[0].0, TokenKind::BlockComment);
        assert_eq!(kinds("/**/")[0].0, TokenKind::BlockComment);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("&'a str, 'static, 'x', '\\n', '\\u{1F600}'");
        let got: Vec<TokenKind> = toks
            .iter()
            .filter(|t| !matches!(t.0, TokenKind::Punct | TokenKind::Ident))
            .map(|t| t.0)
            .collect();
        assert_eq!(
            got,
            vec![
                TokenKind::Lifetime,
                TokenKind::Lifetime,
                TokenKind::CharLit,
                TokenKind::CharLit,
                TokenKind::CharLit,
            ]
        );
        assert_eq!(toks[1], (TokenKind::Lifetime, "'a"));
    }

    #[test]
    fn escaped_quote_char_literal() {
        let toks = kinds(r"'\'' x");
        assert_eq!(toks[0], (TokenKind::CharLit, r"'\''"));
        assert_eq!(toks[1], (TokenKind::Ident, "x"));
    }

    #[test]
    fn raw_ident_vs_raw_string() {
        let toks = kinds(r##"r#match r"str" r#"also str"# rest"##);
        assert_eq!(toks[0], (TokenKind::RawIdent, "r#match"));
        assert_eq!(toks[1].0, TokenKind::RawStrLit);
        assert_eq!(toks[2].0, TokenKind::RawStrLit);
        assert_eq!(toks[3], (TokenKind::Ident, "rest"));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r#"b'x' b"bytes" banana"#);
        assert_eq!(toks[0].0, TokenKind::ByteLit);
        assert_eq!(toks[1].0, TokenKind::ByteStrLit);
        assert_eq!(toks[2], (TokenKind::Ident, "banana"));
    }

    #[test]
    fn numbers() {
        let toks = kinds("0 42_000u64 0xFF 0b1010 1.5e-3 1.max(2) 0..n");
        assert_eq!(toks[0].0, TokenKind::NumberLit);
        assert_eq!(toks[1], (TokenKind::NumberLit, "42_000u64"));
        assert_eq!(toks[2], (TokenKind::NumberLit, "0xFF"));
        assert_eq!(toks[3], (TokenKind::NumberLit, "0b1010"));
        assert_eq!(toks[4], (TokenKind::NumberLit, "1.5e-3"));
        // `1.max` is number, dot, ident — not a malformed float.
        assert_eq!(toks[5], (TokenKind::NumberLit, "1"));
        assert_eq!(toks[6], (TokenKind::Punct, "."));
        assert_eq!(toks[7], (TokenKind::Ident, "max"));
        // `0..n` keeps the range operator intact.
        assert_eq!(toks[11], (TokenKind::NumberLit, "0"));
        assert_eq!(toks[12], (TokenKind::Punct, "."));
        assert_eq!(toks[13], (TokenKind::Punct, "."));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        assert_eq!(kinds("\"abc").last().unwrap().0, TokenKind::Unterminated);
        assert_eq!(kinds("/* abc").last().unwrap().0, TokenKind::Unterminated);
        assert_eq!(
            kinds("r#\"abc\" no fence").last().unwrap().0,
            TokenKind::Unterminated
        );
        assert_eq!(kinds("'\nx")[0].0, TokenKind::Unterminated);
    }

    #[test]
    fn every_byte_is_progressed() {
        // A pile of pathological fragments; the lexer must terminate and
        // cover the whole input.
        let src = "r# b' '' r#\"\"# /*/**/*/ 'a 'a' b\"\\\"\" 0x 1e 1e+ r";
        let toks = lex(src);
        assert!(!toks.is_empty());
        assert_eq!(toks.last().unwrap().end, src.len());
    }
}
