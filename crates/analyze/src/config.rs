//! `analyze.toml` — allowlists and per-path rule scoping.
//!
//! The workspace is offline, so instead of a TOML dependency this module
//! hand-parses the small, line-oriented TOML subset the config needs:
//! `[section]` / `[section.sub-section]` headers, `key = "string"`,
//! `key = true|false`, and single-line string arrays. Unknown sections and
//! keys are *errors*, not silently ignored — a typo in a lint config must
//! not quietly disable a gate.

use std::collections::BTreeMap;

/// Where a rule applies. Paths are workspace-relative, `/`-separated and
/// match whole components (`crates/bench` matches `crates/bench/src/x.rs`
/// but not `crates/bench2/…`).
#[derive(Debug, Clone, Default)]
pub struct RuleScope {
    /// When non-empty, the rule fires only under these paths.
    pub paths: Vec<String>,
    /// Paths exempted from the rule.
    pub allow_paths: Vec<String>,
    /// `enabled = false` turns the rule off entirely.
    pub disabled: bool,
}

impl RuleScope {
    /// True when the rule applies to `rel_path` under this scope.
    pub fn applies_to(&self, rel_path: &str) -> bool {
        if self.disabled {
            return false;
        }
        if self.allow_paths.iter().any(|p| path_matches(p, rel_path)) {
            return false;
        }
        self.paths.is_empty() || self.paths.iter().any(|p| path_matches(p, rel_path))
    }
}

/// `prefix` matches `path` when equal or when `path` continues with `/`.
pub fn path_matches(prefix: &str, path: &str) -> bool {
    path == prefix
        || (path.len() > prefix.len()
            && path.starts_with(prefix)
            && path.as_bytes()[prefix.len()] == b'/')
}

/// Crate-layering constraints checked against the `Cargo.toml` graph.
#[derive(Debug, Clone, Default)]
pub struct LayeringConfig {
    /// Crates that may not depend on anything in-workspace.
    pub isolated: Vec<String>,
    /// `(from, to)` pairs forbidden even transitively.
    pub forbidden: Vec<(String, String)>,
}

/// Full analyzer configuration (see the shipped `analyze.toml`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace-relative path prefixes never scanned (vendored code,
    /// build output, data files).
    pub exclude: Vec<String>,
    /// Per-rule scoping, keyed by rule name.
    pub rules: BTreeMap<String, RuleScope>,
    /// Layering constraints.
    pub layering: LayeringConfig,
}

impl Config {
    /// Scope for `rule`, defaulting to "applies everywhere".
    pub fn scope(&self, rule: &str) -> RuleScope {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// The configuration the workspace ships in `analyze.toml`, usable when
    /// no config file is present (e.g. unit tests on synthetic trees).
    pub fn workspace_default() -> Config {
        let mut rules = BTreeMap::new();
        rules.insert(
            "no-wall-clock".to_owned(),
            RuleScope {
                allow_paths: vec!["crates/bench".to_owned()],
                ..RuleScope::default()
            },
        );
        rules.insert(
            "no-unordered-iteration".to_owned(),
            RuleScope {
                paths: vec![
                    "crates/cli/src/commands.rs".to_owned(),
                    "crates/cli/src/main.rs".to_owned(),
                    "crates/core/src/matrix.rs".to_owned(),
                    "crates/federated/src/serve.rs".to_owned(),
                    "crates/observe/src/snapshot.rs".to_owned(),
                ],
                ..RuleScope::default()
            },
        );
        rules.insert(
            "no-panic".to_owned(),
            RuleScope {
                paths: vec![
                    "crates/core/src".to_owned(),
                    "crates/discovery/src".to_owned(),
                    "crates/federated/src".to_owned(),
                    "crates/relation/src".to_owned(),
                ],
                ..RuleScope::default()
            },
        );
        rules.insert(
            "no-literal-index".to_owned(),
            RuleScope {
                paths: vec![
                    "crates/core/src".to_owned(),
                    "crates/discovery/src".to_owned(),
                    "crates/federated/src".to_owned(),
                    "crates/relation/src".to_owned(),
                ],
                ..RuleScope::default()
            },
        );
        rules.insert(
            "fuzzed-decoder-no-panic".to_owned(),
            RuleScope {
                paths: vec![
                    "crates/federated/src/net.rs".to_owned(),
                    "crates/federated/src/transport.rs".to_owned(),
                    "crates/metadata/src/exchange.rs".to_owned(),
                    "crates/relation/src/csv.rs".to_owned(),
                ],
                ..RuleScope::default()
            },
        );
        rules.insert(
            "no-stdout-in-libs".to_owned(),
            RuleScope {
                allow_paths: vec!["crates/bench".to_owned()],
                ..RuleScope::default()
            },
        );
        Config {
            exclude: vec![
                "crates/analyze/tests/fixtures".to_owned(),
                "data".to_owned(),
                "target".to_owned(),
                "vendor".to_owned(),
            ],
            rules,
            layering: LayeringConfig {
                isolated: vec!["mp-observe".to_owned()],
                forbidden: vec![
                    ("mp-relation".to_owned(), "mp-discovery".to_owned()),
                    ("mp-relation".to_owned(), "mp-federated".to_owned()),
                ],
            },
        }
    }

    /// Parses the `analyze.toml` subset; returns a descriptive error with a
    /// 1-based line number on malformed input.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config {
            exclude: Vec::new(),
            rules: BTreeMap::new(),
            layering: LayeringConfig::default(),
        };
        let mut section: Vec<String> = Vec::new();
        // Join multi-line arrays first: a `key = [` value accumulates
        // physical lines until the bracket closes.
        let mut lines: Vec<(usize, String)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let stripped = strip_comment(raw).trim().to_owned();
            let continuing = lines
                .last()
                .is_some_and(|(_, prev)| prev.contains('[') && !prev.ends_with(']'));
            if continuing {
                let (_, prev) = lines.last_mut().expect("just checked non-empty");
                prev.push(' ');
                prev.push_str(&stripped);
            } else {
                lines.push((idx + 1, stripped));
            }
        }
        for (lineno, line) in &lines {
            let (lineno, line) = (*lineno, line.as_str());
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let Some(header) = header.strip_suffix(']') else {
                    return Err(format!("line {lineno}: unclosed section header"));
                };
                section = header
                    .trim()
                    .split('.')
                    .map(|s| s.trim().to_owned())
                    .collect();
                match section.first().map(String::as_str) {
                    Some("workspace") | Some("layering") if section.len() == 1 => {}
                    Some("rules") if section.len() == 2 => {}
                    _ => {
                        return Err(format!(
                            "line {lineno}: unknown section `[{}]` (expected [workspace], [layering] or [rules.<name>])",
                            header.trim()
                        ));
                    }
                }
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(format!("line {lineno}: expected `key = value`"));
            };
            let key = line[..eq].trim();
            let value = line[eq + 1..].trim();
            match (section.first().map(String::as_str), key) {
                (Some("workspace"), "exclude") => {
                    config.exclude =
                        parse_string_array(value).map_err(|e| format!("line {lineno}: {e}"))?;
                }
                (Some("layering"), "isolated") => {
                    config.layering.isolated =
                        parse_string_array(value).map_err(|e| format!("line {lineno}: {e}"))?;
                }
                (Some("layering"), "forbidden") => {
                    for edge in
                        parse_string_array(value).map_err(|e| format!("line {lineno}: {e}"))?
                    {
                        let Some((from, to)) = edge.split_once("->") else {
                            return Err(format!(
                                "line {lineno}: forbidden edge `{edge}` must look like `a -> b`"
                            ));
                        };
                        config
                            .layering
                            .forbidden
                            .push((from.trim().to_owned(), to.trim().to_owned()));
                    }
                }
                (Some("rules"), _) => {
                    let rule = section[1].clone();
                    let scope = config.rules.entry(rule).or_default();
                    match key {
                        "paths" => {
                            scope.paths = parse_string_array(value)
                                .map_err(|e| format!("line {lineno}: {e}"))?;
                        }
                        "allow_paths" => {
                            scope.allow_paths = parse_string_array(value)
                                .map_err(|e| format!("line {lineno}: {e}"))?;
                        }
                        "enabled" => {
                            scope.disabled = match value {
                                "true" => false,
                                "false" => true,
                                other => {
                                    return Err(format!(
                                        "line {lineno}: `enabled` must be true or false, got `{other}`"
                                    ));
                                }
                            };
                        }
                        other => {
                            return Err(format!(
                                "line {lineno}: unknown rule key `{other}` (expected paths, allow_paths or enabled)"
                            ));
                        }
                    }
                }
                (_, other) => {
                    return Err(format!(
                        "line {lineno}: unknown key `{other}` for this section"
                    ));
                }
            }
        }
        // Deterministic reports regardless of how the file orders entries.
        config.exclude.sort();
        for scope in config.rules.values_mut() {
            scope.paths.sort();
            scope.allow_paths.sort();
        }
        config.layering.isolated.sort();
        config.layering.forbidden.sort();
        Ok(config)
    }
}

/// Drops a trailing `# comment`, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parses `["a", "b"]` (single-line, string elements only).
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) else {
        return Err(format!("expected a `[\"…\"]` array, got `{value}`"));
    };
    let mut out = Vec::new();
    for part in split_top_level_commas(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let Some(s) = part.strip_prefix('"').and_then(|p| p.strip_suffix('"')) else {
            return Err(format!("array element `{part}` is not a quoted string"));
        };
        out.push(s.to_owned());
    }
    Ok(out)
}

/// Splits on commas outside quoted strings.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut prev_backslash = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' if !prev_backslash => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let text = r#"
# analyzer config
[workspace]
exclude = ["vendor", "target"]

[rules.no-panic]
paths = ["crates/relation/src", "crates/core/src"]  # scoped

[rules.no-wall-clock]
allow_paths = ["crates/bench"]

[rules.experimental]
enabled = false

[layering]
isolated = ["mp-observe"]
forbidden = ["mp-relation -> mp-discovery", "mp-relation -> mp-federated"]
"#;
        let c = Config::parse(text).expect("valid config");
        assert_eq!(c.exclude, vec!["target", "vendor"]);
        assert!(c.scope("no-panic").applies_to("crates/relation/src/csv.rs"));
        assert!(!c.scope("no-panic").applies_to("crates/cli/src/main.rs"));
        assert!(!c
            .scope("no-wall-clock")
            .applies_to("crates/bench/src/bin/table3.rs"));
        assert!(c
            .scope("no-wall-clock")
            .applies_to("crates/cli/src/main.rs"));
        assert!(!c.scope("experimental").applies_to("anything.rs"));
        assert_eq!(c.layering.isolated, vec!["mp-observe"]);
        assert_eq!(c.layering.forbidden.len(), 2);
    }

    #[test]
    fn unknown_sections_and_keys_are_errors() {
        assert!(Config::parse("[surprise]\n").is_err());
        assert!(Config::parse("[workspace]\ntypo = [\"x\"]\n").is_err());
        assert!(Config::parse("[rules.no-panic]\npath = [\"x\"]\n").is_err());
        assert!(Config::parse("[rules.no-panic]\nenabled = maybe\n").is_err());
        assert!(Config::parse("[layering]\nforbidden = [\"a b\"]\n").is_err());
    }

    #[test]
    fn component_boundary_matching() {
        assert!(path_matches("crates/bench", "crates/bench/src/lib.rs"));
        assert!(path_matches("crates/bench", "crates/bench"));
        assert!(!path_matches("crates/bench", "crates/bench2/src/lib.rs"));
        assert!(!path_matches("crates/bench/src", "crates/bench"));
    }

    #[test]
    fn default_scope_applies_everywhere() {
        let c = Config::parse("").expect("empty config is valid");
        assert!(c
            .scope("no-unsafe")
            .applies_to("crates/anything/src/lib.rs"));
    }

    #[test]
    fn workspace_default_matches_shipped_semantics() {
        let c = Config::workspace_default();
        assert!(c
            .scope("no-panic")
            .applies_to("crates/federated/src/sim.rs"));
        // Burned down: discovery joined the no-panic scope once its
        // unwrap/expect debt was retired.
        assert!(c
            .scope("no-panic")
            .applies_to("crates/discovery/src/tane.rs"));
        assert!(!c
            .scope("no-panic")
            .applies_to("crates/synth/src/sampler.rs"));
        // `commands.rs` builds report strings and must not print; only the
        // binary entrypoint (exempt by role, not by path) may.
        assert!(c
            .scope("no-stdout-in-libs")
            .applies_to("crates/cli/src/commands.rs"));
        assert!(!c
            .scope("no-stdout-in-libs")
            .applies_to("crates/bench/src/reports.rs"));
        assert!(c
            .scope("no-unordered-iteration")
            .applies_to("crates/observe/src/snapshot.rs"));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let c =
            Config::parse("[workspace]\nexclude = [\"we#ird\"] # real comment\n").expect("parses");
        assert_eq!(c.exclude, vec!["we#ird"]);
    }
}
