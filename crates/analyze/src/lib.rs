//! # mp-analyze — workspace invariant linter
//!
//! The leakage tables (paper Tables III/IV) and the golden metrics
//! snapshots reproduce bit-identically only because the whole workspace
//! obeys conventions no compiler checks: logical clocks instead of wall
//! time, sorted-key serialization instead of hash-iteration order, seeded
//! randomness only, typed errors instead of panics on wire/CSV input, and
//! a strict crate-layering direction. This crate turns those conventions
//! into machine-checked constraints that gate CI, in the spirit of
//! metadata-constraint systems (CFDs/denial constraints) the paper's
//! discovery layer itself reproduces.
//!
//! ## Pipeline
//!
//! 1. [`workspace::Workspace::discover`] walks the repository, collecting
//!    every first-party `.rs` file and `Cargo.toml` in sorted order.
//! 2. [`lexer`] tokenizes each file — a hand-rolled lexer that gets raw
//!    strings, nested block comments, lifetimes-vs-char-literals and raw
//!    identifiers right, so token-pattern rules never fire inside strings
//!    or comments.
//! 3. [`source::SourceFile`] layers `#[cfg(test)]`/`#[test]` region
//!    detection and `// lint: allow(rule) reason="…"` suppressions on top.
//! 4. [`parser`] recovers item structure (functions, impl owners, inline
//!    modules, `use` imports) from the token stream; [`callgraph`] builds
//!    a conservative, `use`-aware workspace call graph over it; [`facts`]
//!    propagates may-panic, determinism-taint and lock-acquisition facts
//!    through the graph (see DESIGN.md §15 for the lattice and the
//!    soundness caveats).
//! 5. The [`rules`] registry runs every lint — lexical and
//!    interprocedural — and produces a [`diagnostics::Report`] whose human
//!    and JSON renderings are byte-stable across runs, call chains
//!    included.
//! 6. [`ratchet`] compares the report's per-crate debt counters against
//!    the committed `analyze-baseline.toml`: counters may only fall.
//!
//! The binary (`mp-analyze`, also reachable as `mpriv analyze`) exits
//! non-zero when any violation survives or `--ratchet` detects a counter
//! regression, making the invariants blocking in CI. Zero dependencies,
//! like `mp-observe`.

pub mod callgraph;
pub mod config;
pub mod diagnostics;
pub mod facts;
pub mod lexer;
pub mod parser;
pub mod ratchet;
pub mod rules;
pub mod source;
pub mod workspace;

use std::path::{Path, PathBuf};

/// Runs the full registry over the workspace at `root` with `config`.
pub fn analyze(root: &Path, config: &config::Config) -> Result<diagnostics::Report, String> {
    let ws = workspace::Workspace::discover(root, config)?;
    Ok(rules::run(&ws, config))
}

/// Loads `analyze.toml` from `root` (falling back to the built-in default
/// configuration when the file does not exist) and runs the analysis.
pub fn analyze_with_default_config(root: &Path) -> Result<diagnostics::Report, String> {
    let config_path = root.join("analyze.toml");
    let config = if config_path.exists() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
        config::Config::parse(&text).map_err(|e| format!("analyze.toml: {e}"))?
    } else {
        config::Config::workspace_default()
    };
    analyze(root, &config)
}

/// Walks up from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_owned());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_owned);
    }
    None
}
