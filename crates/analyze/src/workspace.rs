//! Workspace discovery: find every first-party `.rs` file and `Cargo.toml`
//! under the root, in deterministic (sorted) order.

use crate::config::{path_matches, Config};
use crate::source::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// One dependency edge declared in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEntry {
    /// Dependency package name (the part before any `.workspace` suffix).
    pub name: String,
    /// 1-based line of the declaration.
    pub line: usize,
    /// True when declared under `[dev-dependencies]`.
    pub dev: bool,
}

/// A parsed `Cargo.toml`, reduced to what layering checks need.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Workspace-relative `/`-separated path of the manifest file.
    pub rel_path: String,
    /// `[package] name`, when present (the root may be a virtual manifest).
    pub package_name: Option<String>,
    /// All `[dependencies]`/`[dev-dependencies]` entries.
    pub deps: Vec<DepEntry>,
}

impl Manifest {
    /// Line-oriented parse: good enough for the manifests this workspace
    /// writes (no multi-line inline tables for dependency entries).
    pub fn parse(rel_path: &str, text: &str) -> Manifest {
        let mut package_name = None;
        let mut deps = Vec::new();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = header.trim().to_owned();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            match section.as_str() {
                "package" if key == "name" => {
                    package_name = Some(value.trim_matches('"').to_owned());
                }
                "dependencies" | "dev-dependencies" => {
                    // `mp-relation.workspace = true` or `rand = { … }`.
                    let name = key.split('.').next().unwrap_or(key).trim_matches('"');
                    deps.push(DepEntry {
                        name: name.to_owned(),
                        line: idx + 1,
                        dev: section == "dev-dependencies",
                    });
                }
                _ => {}
            }
        }
        Manifest {
            rel_path: rel_path.to_owned(),
            package_name,
            deps,
        }
    }
}

/// Everything the lint registry runs over.
pub struct Workspace {
    /// Filesystem root the relative paths are anchored at.
    pub root: PathBuf,
    /// All first-party source files, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// All first-party manifests, sorted by relative path.
    pub manifests: Vec<Manifest>,
}

impl Workspace {
    /// Walks `root`, collecting `.rs` files and `Cargo.toml`s outside the
    /// configured `exclude` prefixes (plus dotted directories).
    pub fn discover(root: &Path, config: &Config) -> Result<Workspace, String> {
        let mut rs_paths: Vec<String> = Vec::new();
        let mut manifest_paths: Vec<String> = Vec::new();
        walk(root, root, config, &mut rs_paths, &mut manifest_paths)?;
        rs_paths.sort();
        manifest_paths.sort();
        let mut files = Vec::with_capacity(rs_paths.len());
        for rel in &rs_paths {
            let text =
                fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
            files.push(SourceFile::parse(rel, text));
        }
        let mut manifests = Vec::with_capacity(manifest_paths.len());
        for rel in &manifest_paths {
            let text =
                fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
            manifests.push(Manifest::parse(rel, &text));
        }
        Ok(Workspace {
            root: root.to_owned(),
            files,
            manifests,
        })
    }
}

fn walk(
    root: &Path,
    dir: &Path,
    config: &Config,
    rs: &mut Vec<String>,
    manifests: &mut Vec<String>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        let rel = rel_path(root, &path);
        if config.exclude.iter().any(|p| path_matches(p, &rel)) {
            continue;
        }
        let kind = entry
            .file_type()
            .map_err(|e| format!("stat {}: {e}", path.display()))?;
        if kind.is_dir() {
            walk(root, &path, config, rs, manifests)?;
        } else if name.ends_with(".rs") {
            rs.push(rel);
        } else if name == "Cargo.toml" {
            manifests.push(rel);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parse_extracts_package_and_deps() {
        let text = r#"
[package]
name = "mp-relation"
version.workspace = true

[dependencies]
mp-observe.workspace = true
rand = { path = "../vendor/rand" }

[dev-dependencies]
proptest.workspace = true
"#;
        let m = Manifest::parse("crates/relation/Cargo.toml", text);
        assert_eq!(m.package_name.as_deref(), Some("mp-relation"));
        let names: Vec<(&str, bool)> = m.deps.iter().map(|d| (d.name.as_str(), d.dev)).collect();
        assert_eq!(
            names,
            vec![("mp-observe", false), ("rand", false), ("proptest", true)]
        );
        assert!(m.deps[0].line > 0);
    }

    #[test]
    fn workspace_dependencies_section_is_not_a_dep() {
        let text = "[workspace.dependencies]\nmp-relation = { path = \"x\" }\n";
        let m = Manifest::parse("Cargo.toml", text);
        assert!(m.deps.is_empty());
    }

    #[test]
    fn virtual_manifest_has_no_package() {
        let m = Manifest::parse("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
        assert_eq!(m.package_name, None);
    }
}
