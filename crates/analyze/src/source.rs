//! Per-file analysis context: lexed tokens, `#[cfg(test)]`/`#[test]` region
//! detection and `// lint: allow(…)` suppression comments.

use crate::lexer::{self, Token, TokenKind};
use std::cell::RefCell;
use std::ops::Range;

/// How a file participates in the build, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library source under `src/` (the default).
    Lib,
    /// Binary source: `src/main.rs` or anything under `src/bin/`.
    Bin,
    /// Integration tests, benches and examples (`tests/`, `benches/`,
    /// `examples/`).
    Test,
}

/// One `// lint: allow(rule, …) reason="…"` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules the comment suppresses.
    pub rules: Vec<String>,
    /// The mandatory human justification (checked by `suppression` lint).
    pub reason: Option<String>,
    /// Line the comment sits on.
    pub line: usize,
    /// Column of the comment.
    pub col: usize,
    /// Lines the suppression covers (the comment's own line for trailing
    /// comments, plus the next line for stand-alone ones).
    pub covers: Range<usize>,
    /// Set when the comment's text after `lint:` could not be parsed.
    pub malformed: Option<String>,
}

/// A lexed workspace source file plus derived lint context.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Full source text.
    pub text: String,
    /// Token stream (comments included, whitespace skipped).
    pub tokens: Vec<Token>,
    /// Build role from the path (`src/` vs `src/bin/` vs `tests/`).
    pub role: FileRole,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items or enclosing
    /// `mod` blocks.
    pub test_regions: Vec<Range<usize>>,
    /// Parsed suppression comments, in file order.
    pub suppressions: Vec<Suppression>,
    /// Which suppressions actually matched a diagnostic (per suppression
    /// index, interior-mutable so lints can record usage through a shared
    /// reference).
    pub used: RefCell<Vec<bool>>,
}

impl SourceFile {
    /// Lexes `text` and derives regions/suppressions for the file at
    /// `rel_path` (workspace-relative).
    pub fn parse(rel_path: &str, text: String) -> SourceFile {
        let tokens = lexer::lex(&text);
        let role = role_of(rel_path);
        let test_regions = find_test_regions(&text, &tokens);
        let suppressions = find_suppressions(&text, &tokens);
        let used = RefCell::new(vec![false; suppressions.len()]);
        SourceFile {
            rel_path: rel_path.to_owned(),
            text,
            tokens,
            role,
            test_regions,
            suppressions,
            used,
        }
    }

    /// True when byte `offset` lies in any `#[cfg(test)]`/`#[test]` region.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(&offset))
    }

    /// Looks for an *active* suppression of `rule` covering `line`; marks it
    /// used and returns true when found. Reason-less suppressions still
    /// suppress — the missing reason is reported separately, so a rule never
    /// fires twice on the same line.
    pub fn suppressed(&self, rule: &str, line: usize) -> bool {
        for (i, s) in self.suppressions.iter().enumerate() {
            if s.malformed.is_none()
                && s.covers.contains(&line)
                && s.rules.iter().any(|r| r == rule)
            {
                self.used.borrow_mut()[i] = true;
                return true;
            }
        }
        false
    }

    /// Non-marking twin of [`SourceFile::suppressed`]: true when an active
    /// suppression of `rule` covers `line`, without recording a use. Fact
    /// propagation consults suppressions inside a fixpoint loop and must
    /// only mark them used once the suppressed fact is known to be real.
    pub fn has_suppression(&self, rule: &str, line: usize) -> bool {
        self.suppressions.iter().any(|s| {
            s.malformed.is_none() && s.covers.contains(&line) && s.rules.iter().any(|r| r == rule)
        })
    }

    /// Non-comment tokens (what pattern-matching lints iterate).
    pub fn code_tokens(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(|t| {
            !matches!(
                t.kind,
                TokenKind::LineComment
                    | TokenKind::BlockComment
                    | TokenKind::DocLineComment
                    | TokenKind::DocBlockComment
            )
        })
    }
}

fn role_of(rel_path: &str) -> FileRole {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples")
    {
        return FileRole::Test;
    }
    if parts.last() == Some(&"main.rs") || parts.contains(&"bin") {
        return FileRole::Bin;
    }
    FileRole::Lib
}

/// Scans for `#[cfg(test)]` / `#[test]` attributes and returns the byte
/// range of each annotated item (attribute through the end of the item's
/// brace block, or the terminating `;` for block-less items).
fn find_test_regions(src: &str, tokens: &[Token]) -> Vec<Range<usize>> {
    let mut regions: Vec<Range<usize>> = Vec::new();
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::LineComment
                    | TokenKind::BlockComment
                    | TokenKind::DocLineComment
                    | TokenKind::DocBlockComment
            )
        })
        .collect();
    let mut i = 0;
    while i < code.len() {
        if code[i].text(src) != "#" || code.get(i + 1).map(|t| t.text(src)) != Some("[") {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let attr_start = code[i].start;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut attr_text = String::new();
        while j < code.len() {
            let t = code[j].text(src);
            match t {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    attr_text.push_str(t);
                }
            }
            j += 1;
        }
        // `cfg(not(test))` guards *live* code and must not become a test
        // region; `cfg_attr(test, …)` only conditions another attribute.
        let is_test_attr = attr_text == "test"
            || (attr_text.starts_with("cfg(")
                && attr_text.contains("test")
                && !attr_text.contains("not(test")
                && !attr_text.starts_with("cfg_attr"));
        if !is_test_attr || j >= code.len() {
            i = j + 1;
            continue;
        }
        // Find the annotated item's extent: skip further attributes, then
        // brace-match the first `{` (or stop at a top-level `;`).
        let mut k = j + 1;
        while k + 1 < code.len() && code[k].text(src) == "#" && code[k + 1].text(src) == "[" {
            let mut d = 0usize;
            k += 1;
            while k < code.len() {
                match code[k].text(src) {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace = 0usize;
        let mut end = src.len();
        while k < code.len() {
            match code[k].text(src) {
                "{" => brace += 1,
                "}" => {
                    brace = brace.saturating_sub(1);
                    if brace == 0 {
                        end = code[k].end;
                        break;
                    }
                }
                ";" if brace == 0 => {
                    end = code[k].end;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        regions.push(attr_start..end);
        i = j + 1;
    }
    regions
}

/// Parses `// lint: allow(rule-a, rule-b) reason="…"` comments.
fn find_suppressions(src: &str, tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text(src).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        // Trailing comments (code earlier on the same line) cover their own
        // line; stand-alone comments cover the following line too.
        let leading = src[..t.start]
            .rsplit('\n')
            .next()
            .is_some_and(|prefix| prefix.trim().is_empty());
        let covers = if leading {
            t.line..t.line + 2
        } else {
            t.line..t.line + 1
        };
        let mut sup = Suppression {
            rules: Vec::new(),
            reason: None,
            line: t.line,
            col: t.col,
            covers,
            malformed: None,
        };
        match parse_allow(rest.trim()) {
            Ok((rules, reason)) => {
                sup.rules = rules;
                sup.reason = reason;
            }
            Err(msg) => sup.malformed = Some(msg),
        }
        out.push(sup);
    }
    out
}

/// Parses `allow(rule-a, rule-b) reason="…"`; the reason clause is optional
/// at parse time (its absence is a `suppression` lint violation, not a
/// syntax error).
fn parse_allow(s: &str) -> Result<(Vec<String>, Option<String>), String> {
    let Some(rest) = s.strip_prefix("allow") else {
        return Err("expected `allow(<rule>, …)` after `lint:`".to_owned());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_owned());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `(` in `allow(…)`".to_owned());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("`allow(…)` lists no rules".to_owned());
    }
    let tail = rest[close + 1..].trim();
    if tail.is_empty() {
        return Ok((rules, None));
    }
    let Some(tail) = tail.strip_prefix("reason") else {
        return Err(format!("unexpected trailing text `{tail}`"));
    };
    let tail = tail.trim_start();
    let Some(tail) = tail.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_owned());
    };
    let tail = tail.trim_start();
    let Some(tail) = tail.strip_prefix('"') else {
        return Err("reason must be a quoted string".to_owned());
    };
    let Some(end) = tail.find('"') else {
        return Err("unclosed reason string".to_owned());
    };
    let reason = tail[..end].trim().to_owned();
    if reason.is_empty() {
        return Ok((rules, None));
    }
    Ok((rules, Some(reason)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_from_paths() {
        assert_eq!(role_of("crates/relation/src/csv.rs"), FileRole::Lib);
        assert_eq!(role_of("crates/cli/src/main.rs"), FileRole::Bin);
        assert_eq!(role_of("crates/bench/src/bin/table3.rs"), FileRole::Bin);
        assert_eq!(role_of("crates/relation/tests/props.rs"), FileRole::Test);
        assert_eq!(role_of("examples/quickstart.rs"), FileRole::Test);
    }

    #[test]
    fn cfg_test_module_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_owned());
        let unwrap_at = src.find("unwrap").expect("present");
        assert!(f.in_test_region(unwrap_at));
        assert!(!f.in_test_region(src.find("live").expect("present")));
        assert!(!f.in_test_region(src.find("after").expect("present")));
    }

    #[test]
    fn test_attr_fn_region() {
        let src = "#[test]\nfn check() { y.unwrap(); }\nfn live() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_owned());
        assert!(f.in_test_region(src.find("unwrap").expect("present")));
        assert!(!f.in_test_region(src.find("live").expect("present")));
    }

    #[test]
    fn stacked_attrs_region() {
        let src = "#[cfg(test)]\n#[derive(Debug)]\nstruct T { a: u8 }\nfn live() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_owned());
        assert!(f.in_test_region(src.find("a: u8").expect("present")));
        assert!(!f.in_test_region(src.find("live").expect("present")));
    }

    #[test]
    fn suppression_trailing_and_leading() {
        let src = "let a = x.unwrap(); // lint: allow(no-panic) reason=\"checked above\"\n// lint: allow(no-literal-index) reason=\"fixed arity\"\nlet b = v[0];\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_owned());
        assert_eq!(f.suppressions.len(), 2);
        assert!(f.suppressed("no-panic", 1));
        assert!(!f.suppressed("no-panic", 2));
        assert!(f.suppressed("no-literal-index", 3));
        assert_eq!(f.used.borrow().as_slice(), &[true, true]);
    }

    #[test]
    fn suppression_without_reason_or_malformed() {
        let src = "// lint: allow(no-panic)\n// lint: deny(everything)\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_owned());
        assert_eq!(f.suppressions[0].reason, None);
        assert!(f.suppressions[0].malformed.is_none());
        assert!(f.suppressions[1].malformed.is_some());
    }

    #[test]
    fn suppression_multi_rule() {
        let (rules, reason) =
            parse_allow("allow(a-rule, b-rule) reason=\"both fine\"").expect("parses");
        assert_eq!(rules, vec!["a-rule".to_owned(), "b-rule".to_owned()]);
        assert_eq!(reason.as_deref(), Some("both fine"));
    }

    #[test]
    fn suppressions_ignore_lookalike_comments() {
        let src = "// linting is great\n/// lint: allow(no-panic) in docs is prose\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_owned());
        assert!(f.suppressions.is_empty());
    }
}
