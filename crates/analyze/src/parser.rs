//! Item-level parsing on top of the token stream: functions (with their
//! brace-matched bodies), the `mod`/`impl`/`trait` scopes that qualify
//! them, and `use` imports.
//!
//! This is deliberately *not* a full Rust parser. The interprocedural
//! passes need three things a lexical scan cannot give them: which
//! function a token belongs to, what that function is called (qualified
//! by its impl type and inline-module path), and how the file's `use`
//! declarations map short names onto crate paths. Everything else —
//! expressions, types, generics — is skipped with depth counters.
//!
//! The parser never fails: malformed input degrades to fewer recognized
//! items (an unclosed body extends to end of file), mirroring how the
//! lexer degrades to [`crate::lexer::TokenKind::Unterminated`].

use crate::lexer::Token;
use crate::source::SourceFile;
use std::ops::Range;

/// One `fn` item (free function, inherent/trait-impl method, or trait
/// default method) with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's bare name.
    pub name: String,
    /// Enclosing `impl` self-type or `trait` name, when the function is a
    /// method or default method.
    pub owner: Option<String>,
    /// Inline `mod` path within the file (the file's own module position
    /// in the crate is derived from its path by the call-graph layer).
    pub module: Vec<String>,
    /// Parameter names, in order (`self` included when present). Used to
    /// tell parameter-owned locks from locks the function owns.
    pub params: Vec<String>,
    /// Code-token index range of the body: `body.start` is the opening
    /// `{`, `body.end` is one past the closing `}` (or the end of the
    /// token stream for unclosed bodies).
    pub body: Range<usize>,
    /// 1-based line/column of the `fn` keyword.
    pub line: usize,
    /// 1-based column of the `fn` keyword.
    pub col: usize,
    /// True when the item sits in a `#[cfg(test)]`/`#[test]` region or a
    /// test-role file; interprocedural facts skip test code entirely.
    pub in_test: bool,
}

/// One leaf of a `use` declaration: `alias` is the name visible in the
/// file, `path` the absolute segments it expands to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// Name the import binds in this file (`Registry`, or the rename in
    /// `as`). Empty for glob imports.
    pub alias: String,
    /// Path segments, e.g. `["mp_observe", "Registry"]`. For globs this
    /// is the prefix the `*` expands under.
    pub path: Vec<String>,
    /// True for `use foo::*;`.
    pub glob: bool,
}

/// Everything the item parser extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Function items in source order.
    pub fns: Vec<FnItem>,
    /// `use` imports in source order.
    pub uses: Vec<UseImport>,
}

/// Innermost function whose body contains code-token index `idx`, if any.
/// Bodies nest (closures and nested `fn`s), so the *latest* matching item
/// whose range is narrowest wins.
pub fn enclosing_fn(fns: &[FnItem], idx: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, f) in fns.iter().enumerate() {
        if f.body.contains(&idx) {
            match best {
                Some(b) if fns[b].body.len() <= f.body.len() => {}
                _ => best = Some(i),
            }
        }
    }
    best
}

/// What kind of scope an open brace introduced.
#[derive(Debug)]
enum Scope {
    /// `mod name {`
    Mod,
    /// `impl Type {`, `impl Trait for Type {` or `trait Name {`
    Owner,
    /// A function body; holds the index into `ParsedFile::fns`.
    Fn(usize),
    /// Any other `{` (blocks, match arms, struct literals, macro bodies).
    Block,
}

/// Parses the item structure of `file`. Pure: works on the already-lexed
/// token stream, no I/O.
pub fn parse(file: &SourceFile) -> ParsedFile {
    let code: Vec<&Token> = file.code_tokens().collect();
    let src = file.text.as_str();
    let is_test_file = file.role == crate::source::FileRole::Test;
    let mut out = ParsedFile::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut mods: Vec<String> = Vec::new();
    let mut owners: Vec<String> = Vec::new();
    // Scope the *next* `{` opens, set when a header was just parsed.
    let mut pending: Option<(Scope, Option<String>)> = None;
    let mut i = 0;
    while i < code.len() {
        let text = code[i].text(src);
        match text {
            "{" => {
                let (scope, label) = pending.take().unwrap_or((Scope::Block, None));
                match &scope {
                    Scope::Mod => mods.push(label.unwrap_or_default()),
                    Scope::Owner => owners.push(label.unwrap_or_default()),
                    _ => {}
                }
                scopes.push(scope);
                i += 1;
            }
            "}" => {
                match scopes.pop() {
                    Some(Scope::Mod) => {
                        mods.pop();
                    }
                    Some(Scope::Owner) => {
                        owners.pop();
                    }
                    Some(Scope::Fn(idx)) => out.fns[idx].body.end = i + 1,
                    _ => {}
                }
                i += 1;
            }
            "mod" => {
                // `mod name { … }` opens a module scope; `mod name;` is an
                // out-of-line declaration with nothing to parse here.
                if let Some(name_tok) = code.get(i + 1) {
                    let name = name_tok.text(src);
                    if code.get(i + 2).map(|t| t.text(src)) == Some("{") {
                        pending = Some((Scope::Mod, Some(name.to_owned())));
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            "impl" | "trait" => {
                let (self_type, next) = parse_owner_header(&code, i, src, text == "trait");
                pending = Some((Scope::Owner, Some(self_type)));
                i = next;
            }
            "fn" => {
                // `fn(` is a function-pointer type, not an item.
                let Some(name_tok) = code.get(i + 1) else {
                    i += 1;
                    continue;
                };
                let name = name_tok.text(src);
                if !name.chars().next().is_some_and(is_name_start) {
                    i += 1;
                    continue;
                }
                let (params, next, has_body) = parse_fn_signature(&code, i + 2, src);
                if has_body {
                    let fn_tok = code[i];
                    let item = FnItem {
                        name: name.trim_start_matches("r#").to_owned(),
                        owner: owners.last().cloned().filter(|o| !o.is_empty()),
                        module: mods.clone(),
                        params,
                        body: next..code.len(),
                        line: fn_tok.line,
                        col: fn_tok.col,
                        in_test: is_test_file || file.in_test_region(fn_tok.start),
                    };
                    out.fns.push(item);
                    pending = Some((Scope::Fn(out.fns.len() - 1), None));
                }
                i = next;
            }
            "use" => {
                let next = parse_use(&code, i + 1, src, &mut out.uses);
                i = next;
            }
            _ => i += 1,
        }
    }
    out
}

fn is_name_start(c: char) -> bool {
    c == '_' || c == 'r' || c.is_alphabetic()
}

/// Parses an `impl`/`trait` header starting at `at` (the keyword) and
/// returns the self-type name plus the index of the opening `{` (or of the
/// terminating `;` for bodiless forms). The self-type of
/// `impl Trait for Type` is `Type`; generics are skipped.
fn parse_owner_header(code: &[&Token], at: usize, src: &str, is_trait: bool) -> (String, usize) {
    let mut j = at + 1;
    let mut angle = 0i32;
    // Segment boundaries: everything after the last depth-0 `for` that is
    // not an HRTB (`for<'a>`).
    let mut segment_start = j;
    while j < code.len() {
        let t = code[j].text(src);
        match t {
            "<" => angle += 1,
            ">" => angle -= 1,
            "{" | ";" if angle <= 0 => break,
            "for"
                if angle <= 0 && !is_trait && code.get(j + 1).map(|t| t.text(src)) != Some("<") =>
            {
                segment_start = j + 1;
            }
            "where" if angle <= 0 => {
                // The where clause follows the type; stop extending it.
                while j < code.len() {
                    let t = code[j].text(src);
                    if t == "{" || t == ";" {
                        break;
                    }
                    j += 1;
                }
                break;
            }
            _ => {}
        }
        j += 1;
    }
    // Self-type name: last identifier of the segment's leading path,
    // stopping at the first `<` (generic arguments).
    let mut name = String::new();
    let mut depth = 0i32;
    for tok in &code[segment_start..j.min(code.len())] {
        let t = tok.text(src);
        match t {
            "<" => depth += 1,
            ">" => depth -= 1,
            _ if depth == 0
                && t.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                && !matches!(t, "for" | "where" | "dyn" | "mut" | "const") =>
            {
                name = t.trim_start_matches("r#").to_owned();
            }
            _ => {}
        }
    }
    (name, j)
}

/// Scans a function signature starting just after the name. Returns the
/// parameter names, the index of the opening `{` (body) or just past the
/// `;` (bodiless declaration), and whether a body follows.
fn parse_fn_signature(code: &[&Token], at: usize, src: &str) -> (Vec<String>, usize, bool) {
    let mut params = Vec::new();
    let mut j = at;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut seen_params = false;
    while j < code.len() {
        let t = code[j].text(src);
        match t {
            "(" => {
                paren += 1;
                if paren == 1 && !seen_params {
                    seen_params = true;
                    j = collect_params(code, j + 1, src, &mut params);
                    paren -= 1; // collect_params consumed the matching `)`
                    continue;
                }
            }
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => return (params, j, true),
            ";" if paren == 0 && bracket == 0 => return (params, j + 1, false),
            _ => {}
        }
        j += 1;
    }
    (params, j, false)
}

/// Collects parameter names from `(` onwards (entry is just past the
/// opening paren); returns the index one past the matching `)`. A
/// parameter name is the identifier before a depth-1 `:`; a bare
/// `self`/`&self`/`&mut self` receiver counts as the parameter `self`.
fn collect_params(code: &[&Token], at: usize, src: &str, params: &mut Vec<String>) -> usize {
    let mut j = at;
    let mut depth = 1i32;
    let mut last_ident: Option<&str> = None;
    while j < code.len() {
        let t = code[j].text(src);
        match t {
            "(" | "[" | "<" => depth += 1,
            // `->` (fn-pointer return arrow) lexes as `-` `>`; its `>` is
            // not a closing angle bracket.
            ">" if code.get(j.wrapping_sub(1)).map(|t| t.text(src)) == Some("-") => {}
            ")" | "]" | ">" => {
                depth -= 1;
                if depth == 0 {
                    if last_ident == Some("self") {
                        params.push("self".to_owned());
                    }
                    return j + 1;
                }
            }
            ":" if depth == 1 => {
                // `path::seg` double-colons never sit at a parameter
                // boundary with an identifier directly before them at
                // depth 1 *and* a comma/paren before that — but the
                // simple filter below is enough: take the ident only if
                // the next token is not another `:` (i.e. not `::`).
                if code.get(j + 1).map(|t| t.text(src)) != Some(":")
                    && code.get(j.wrapping_sub(1)).map(|t| t.text(src)) != Some(":")
                {
                    if let Some(name) = last_ident.take() {
                        params.push(name.trim_start_matches("r#").to_owned());
                    }
                }
            }
            "," if depth == 1 => {
                if last_ident == Some("self") {
                    params.push("self".to_owned());
                }
                last_ident = None;
            }
            _ => {
                if t.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                {
                    last_ident = Some(t);
                }
            }
        }
        j += 1;
    }
    j
}

/// Parses one `use …;` declaration starting at `at` (just past the `use`
/// keyword), appending every leaf to `out`. Handles nested groups
/// (`use a::{b, c::{d as e, *}};`) and `pub use`. Returns the index just
/// past the terminating `;`.
fn parse_use(code: &[&Token], at: usize, src: &str, out: &mut Vec<UseImport>) -> usize {
    // Collect the raw token texts up to the `;` first; recursion over the
    // collected slice keeps the index bookkeeping simple.
    let mut j = at;
    let mut toks: Vec<&str> = Vec::new();
    let mut brace = 0i32;
    while j < code.len() {
        let t = code[j].text(src);
        match t {
            "{" => brace += 1,
            "}" => brace -= 1,
            ";" if brace <= 0 => {
                j += 1;
                break;
            }
            _ => {}
        }
        toks.push(t);
        j += 1;
    }
    expand_use(&toks, &[], out);
    j
}

/// Recursively expands a `use` token slice under `prefix`.
fn expand_use(toks: &[&str], prefix: &[String], out: &mut Vec<UseImport>) {
    let mut path: Vec<String> = prefix.to_vec();
    let mut k = 0;
    while k < toks.len() {
        match toks[k] {
            ":" => {
                k += 1; // each `::` lexes as two `:` puncts
            }
            "{" => {
                // Split the group body on depth-0 commas; recurse per arm.
                let mut depth = 1i32;
                let mut arm_start = k + 1;
                let mut m = k + 1;
                while m < toks.len() && depth > 0 {
                    match toks[m] {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 && m > arm_start {
                                expand_use(&toks[arm_start..m], &path, out);
                            }
                        }
                        "," if depth == 1 => {
                            if m > arm_start {
                                expand_use(&toks[arm_start..m], &path, out);
                            }
                            arm_start = m + 1;
                        }
                        _ => {}
                    }
                    m += 1;
                }
                return;
            }
            "*" => {
                out.push(UseImport {
                    alias: String::new(),
                    path,
                    glob: true,
                });
                return;
            }
            "as" => {
                // `path as rename`: rebind the alias, keep the real path.
                if let Some(rename) = toks.get(k + 1) {
                    out.push(UseImport {
                        alias: (*rename).trim_start_matches("r#").to_owned(),
                        path,
                        glob: false,
                    });
                }
                return;
            }
            "pub" | "(" | ")" | "crate" if k == 0 && toks[k] != "crate" => {
                // `pub use`, `pub(crate) use` visibility tokens.
                k += 1;
            }
            seg => {
                // A bare `self` never contributes a segment: as a group
                // leaf (`use a::b::{self, C}`) it names the prefix itself,
                // and as a leading `use self::…` it is the implicit crate
                // root `resolve_path` strips anyway.
                if seg != "self"
                    && seg
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    path.push(seg.trim_start_matches("r#").to_owned());
                }
                k += 1;
            }
        }
    }
    if let Some(last) = path.last().cloned() {
        out.push(UseImport {
            alias: last,
            path,
            glob: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&SourceFile::parse("crates/x/src/lib.rs", src.to_owned()))
    }

    #[test]
    fn free_function_with_body() {
        let p = parse_src("pub fn alpha(a: u32, b: &str) -> u32 { a + b.len() as u32 }\n");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "alpha");
        assert_eq!(f.owner, None);
        assert_eq!(f.params, vec!["a", "b"]);
        assert!(!f.in_test);
    }

    #[test]
    fn methods_get_their_impl_type() {
        let src = "struct Cache;\nimpl Cache {\n    fn get(&self, k: u64) -> u64 { k }\n}\nimpl std::fmt::Display for Cache {\n    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n}\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Cache"));
        assert_eq!(p.fns[0].params, vec!["self", "k"]);
        assert_eq!(p.fns[1].owner.as_deref(), Some("Cache"));
        assert_eq!(p.fns[1].name, "fmt");
    }

    #[test]
    fn trait_default_methods_and_decls() {
        let src = "trait Rec {\n    fn must(&self);\n    fn with_default(&self) -> u8 { 7 }\n}\n";
        let p = parse_src(src);
        // Bodiless declarations are not items; default methods are.
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "with_default");
        assert_eq!(p.fns[0].owner.as_deref(), Some("Rec"));
    }

    #[test]
    fn inline_modules_qualify() {
        let src = "mod outer {\n    pub mod inner {\n        pub fn deep() {}\n    }\n    pub fn shallow() {}\n}\nfn top() {}\n";
        let p = parse_src(src);
        let by_name: Vec<(&str, Vec<String>)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.module.clone()))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("deep", vec!["outer".to_owned(), "inner".to_owned()]),
                ("shallow", vec!["outer".to_owned()]),
                ("top", vec![]),
            ]
        );
    }

    #[test]
    fn bodies_are_brace_matched() {
        let src = "fn a() { if x { y() } else { z() } }\nfn b() {}\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        // `b`'s body must start after `a`'s body ends.
        assert!(p.fns[0].body.end <= p.fns[1].body.start);
    }

    #[test]
    fn nested_fn_attribution() {
        let src = "fn outer() {\n    fn inner() { nested_call(); }\n    inner();\n}\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        let outer = p.fns.iter().position(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().position(|f| f.name == "inner").unwrap();
        // A token inside `inner` resolves to `inner`, not `outer`.
        let probe = p.fns[inner].body.start + 1;
        assert_eq!(enclosing_fn(&p.fns, probe), Some(inner));
        // A token in `outer` after `inner` ends resolves to `outer`.
        let probe = p.fns[inner].body.end + 1;
        assert_eq!(enclosing_fn(&p.fns, probe), Some(outer));
    }

    #[test]
    fn impl_trait_for_type_takes_the_type() {
        let src = "impl<T: Clone> Recorder for Noop<T> {\n    fn counter(&self) {}\n}\n";
        let p = parse_src(src);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Noop"));
    }

    #[test]
    fn where_clause_and_return_generics() {
        let src = "fn complex<T>(xs: Vec<T>) -> impl Iterator<Item = T> where T: Clone { xs.into_iter() }\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].params, vec!["xs"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn takes(f: fn(u32) -> u32) -> u32 { f(1) }\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "takes");
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn check() {}\n}\n";
        let p = parse_src(src);
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test);
    }

    #[test]
    fn use_declarations_simple_and_nested() {
        let src = "use mp_observe::Registry;\nuse std::collections::{BTreeMap, HashMap as Hm};\nuse mp_relation::pli_cache::*;\npub use crate::facts::Facts;\n";
        let p = parse_src(src);
        let get = |alias: &str| {
            p.uses
                .iter()
                .find(|u| u.alias == alias)
                .unwrap_or_else(|| panic!("no import {alias}"))
        };
        assert_eq!(get("Registry").path, vec!["mp_observe", "Registry"]);
        assert_eq!(get("BTreeMap").path, vec!["std", "collections", "BTreeMap"]);
        assert_eq!(get("Hm").path, vec!["std", "collections", "HashMap"]);
        assert_eq!(get("Facts").path, vec!["crate", "facts", "Facts"]);
        let glob = p.uses.iter().find(|u| u.glob).expect("glob import");
        assert_eq!(glob.path, vec!["mp_relation", "pli_cache"]);
    }

    #[test]
    fn unclosed_body_extends_to_eof() {
        let p = parse_src("fn broken() { let x = 1;\n");
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].body.end >= p.fns[0].body.start);
    }
}
