//! Interprocedural facts over the call graph: panic-reachability,
//! determinism taint and lock-order edges, plus the per-crate counts the
//! baseline ratchet pins.
//!
//! The fact lattice is deliberately small — per function, three boolean
//! families:
//!
//! * **may-panic** — the body contains an unsuppressed panic site, or any
//!   (unsuppressed) call edge reaches a function that does;
//! * **taint** (three kinds: hash-order, unseeded-rng, wall-clock) — the
//!   body contains a source, or a call edge reaches one;
//! * **lock summary** — the set of lock identities the function may
//!   acquire, transitively through callees.
//!
//! Propagation is a multi-source BFS over *reverse* call edges, which
//! yields both the boolean fact (distance finite) and a deterministic
//! shortest witness chain for diagnostics. A reasoned
//! `// lint: allow(<rule>)` on a call-site line severs that edge for the
//! corresponding fact family, so one suppression at a boundary stops the
//! cascade instead of requiring an allow at every transitive caller.
//! Suppressions never sever edges in `fuzzed-decoder-no-panic` files.

use crate::callgraph::{is_test_fn, CallGraph, Callee};
use crate::config::Config;
use crate::rules::{is_literal_index, matches_at, PANIC_SEQS};
use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The three determinism taint families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaintKind {
    /// HashMap/HashSet iteration order observed in the same function.
    HashOrder,
    /// OS-seeded randomness (`thread_rng`, `from_entropy`, `OsRng`, …).
    Rng,
    /// Wall-clock reads (`Instant::now`, `SystemTime`, `thread::sleep`).
    WallClock,
}

/// All kinds, in rendering order.
pub const TAINT_KINDS: [TaintKind; 3] =
    [TaintKind::HashOrder, TaintKind::Rng, TaintKind::WallClock];

impl TaintKind {
    /// Stable index into per-kind arrays.
    pub fn idx(self) -> usize {
        match self {
            TaintKind::HashOrder => 0,
            TaintKind::Rng => 1,
            TaintKind::WallClock => 2,
        }
    }

    /// Human name used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            TaintKind::HashOrder => "hash-order",
            TaintKind::Rng => "unseeded-rng",
            TaintKind::WallClock => "wall-clock",
        }
    }

    /// The lexical rule whose suppressions silence a *source* of this kind.
    pub fn source_rule(self) -> &'static str {
        match self {
            TaintKind::HashOrder => "no-unordered-iteration",
            TaintKind::Rng => "no-unseeded-rng",
            TaintKind::WallClock => "no-wall-clock",
        }
    }
}

/// Rule name whose suppressions sever panic propagation edges.
pub const PANIC_EDGE_RULE: &str = "no-panic-reachable";
/// Rule name whose suppressions sever taint propagation edges.
pub const TAINT_EDGE_RULE: &str = "determinism-taint";
/// Rule name whose suppressions silence a lock-order cycle.
pub const LOCK_EDGE_RULE: &str = "lock-order";

/// A local panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Code-token index in the file.
    pub token_idx: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Short label (`unwrap()`, `panic!`, `literal index`).
    pub label: String,
    /// True when a reasoned suppression keeps it from propagating.
    pub suppressed: bool,
}

/// A local determinism-taint source inside a function body.
#[derive(Debug, Clone)]
pub struct TaintSite {
    /// Which family.
    pub kind: TaintKind,
    /// 1-based line of the witnessing token.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Short label (`HashMap`, `thread_rng`, `Instant::now`).
    pub label: String,
    /// True when suppressed at the source.
    pub suppressed: bool,
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Code-token index of the receiver's last token (ordering key).
    pub token_idx: usize,
    /// 1-based line.
    pub line: usize,
    /// Lock identity (`Registry::metrics`, `<fn>::guard`, `param::…`).
    pub id: String,
    /// True when the lock is a parameter of the function — the mutex
    /// belongs to the caller, so the acquisition does not propagate.
    pub param: bool,
}

/// A nested-acquisition edge: `from` is held while `to` is acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock held.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// File of the witnessing acquisition or call.
    pub path: String,
    /// 1-based line of the witness.
    pub line: usize,
    /// Qualified name of the function the nesting happens in.
    pub via: String,
}

/// Per-crate debt counters pinned by `analyze-baseline.toml`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrateCounts {
    /// Non-test lexical panic sites, *including* suppressed ones — a
    /// reasoned allow is recorded debt, and converting it to a typed error
    /// is what lowers the count.
    pub panic_sites: usize,
    /// Non-test functions containing at least one local taint source
    /// (suppressed or not).
    pub tainted_fns: usize,
}

impl CrateCounts {
    /// A debt-free counter pair. An associated const rather than
    /// `Default::default()` so callers on audited serialization paths
    /// don't route through a derive-generated method the call graph
    /// cannot resolve (and would pessimistically assume tainted).
    pub const ZERO: CrateCounts = CrateCounts {
        panic_sites: 0,
        tainted_fns: 0,
    };
}

/// How a propagation chain bottoms out.
#[derive(Debug, Clone)]
enum Terminal {
    /// A concrete local site.
    Site { line: usize, label: String },
    /// An unresolved workspace call, pessimistically assumed to carry the
    /// fact.
    Unresolved { line: usize, display: String },
}

/// The computed fact database.
pub struct FactDb {
    /// Per function: local panic sites (suppressed included, for counts).
    pub local_panics: Vec<Vec<PanicSite>>,
    /// Per function: local taint sources.
    pub local_taints: Vec<Vec<TaintSite>>,
    /// Per function: lock acquisitions.
    pub local_locks: Vec<Vec<LockSite>>,
    /// BFS distance to the nearest propagating panic site (`None` = cannot
    /// reach one = not may-panic).
    pub panic_dist: Vec<Option<u32>>,
    /// Per kind, BFS distance to the nearest propagating taint source.
    pub taint_dist: Vec<[Option<u32>; 3]>,
    /// Transitive (propagating) lock identities per function.
    pub lock_summary: Vec<BTreeSet<String>>,
    /// All nested-acquisition edges, sorted and deduplicated.
    pub lock_edges: Vec<LockEdge>,
    /// Per-crate ratchet counters, keyed by package name.
    pub counts: BTreeMap<String, CrateCounts>,
    panic_terminal: Vec<Option<Terminal>>,
    taint_terminal: Vec<[Option<Terminal>; 3]>,
}

impl FactDb {
    /// Computes all facts for the workspace. Deterministic: iteration is
    /// over sorted structures only, and the result is independent of
    /// propagation order (BFS from a fixed seed set).
    pub fn build(ws: &Workspace, graph: &CallGraph, config: &Config) -> FactDb {
        let n = graph.fns.len();
        let fuzzed = config.scope("fuzzed-decoder-no-panic");
        let mut db = FactDb {
            local_panics: vec![Vec::new(); n],
            local_taints: vec![Vec::new(); n],
            local_locks: vec![Vec::new(); n],
            panic_dist: vec![None; n],
            taint_dist: vec![[None; 3]; n],
            lock_summary: vec![BTreeSet::new(); n],
            lock_edges: Vec::new(),
            counts: BTreeMap::new(),
            panic_terminal: vec![None; n],
            taint_terminal: vec![std::array::from_fn(|_| None); n],
        };
        for fi in 0..ws.files.len() {
            extract_local_facts(
                ws,
                graph,
                fi,
                fuzzed.applies_to(&ws.files[fi].rel_path),
                &mut db,
            );
        }
        db.propagate_panic(ws, graph, &fuzzed);
        db.propagate_taints(ws, graph);
        db.propagate_locks(ws, graph);
        db.mark_used_edge_suppressions(ws, graph, &fuzzed);
        db.count_crates(ws, graph);
        db
    }

    /// True when calling `f` may panic.
    pub fn may_panic(&self, f: usize) -> bool {
        self.panic_dist[f].is_some()
    }

    /// Taint kinds calling `f` may introduce, in stable order.
    pub fn taints_of(&self, f: usize) -> Vec<TaintKind> {
        TAINT_KINDS
            .into_iter()
            .filter(|k| self.taint_dist[f][k.idx()].is_some())
            .collect()
    }

    /// Deterministic shortest call chain from `f` down to a panic site.
    /// Each element is `path:line: qualified-name`; the last element names
    /// the terminal site. Empty when `f` is not may-panic.
    pub fn panic_chain(&self, ws: &Workspace, graph: &CallGraph, f: usize) -> Vec<String> {
        self.chain(ws, graph, f, &|db, g| db.panic_dist[g], &|db, g| {
            db.panic_terminal[g].clone()
        })
    }

    /// Deterministic shortest call chain from `f` down to a taint source of
    /// `kind`. Empty when `f` does not carry that taint.
    pub fn taint_chain(
        &self,
        ws: &Workspace,
        graph: &CallGraph,
        f: usize,
        kind: TaintKind,
    ) -> Vec<String> {
        self.chain(
            ws,
            graph,
            f,
            &|db, g| db.taint_dist[g][kind.idx()],
            &|db, g| db.taint_terminal[g][kind.idx()].clone(),
        )
    }

    fn chain(
        &self,
        ws: &Workspace,
        graph: &CallGraph,
        start: usize,
        dist: &dyn Fn(&FactDb, usize) -> Option<u32>,
        terminal: &dyn Fn(&FactDb, usize) -> Option<Terminal>,
    ) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = start;
        let Some(mut d) = dist(self, cur) else {
            return out;
        };
        loop {
            let node = &graph.fns[cur];
            let path = &ws.files[node.file].rel_path;
            out.push(format!("{path}:{}: {}", node.item.line, node.qual));
            if d == 0 {
                match terminal(self, cur) {
                    Some(Terminal::Site { line, label }) => {
                        out.push(format!("{path}:{line}: {label}"));
                    }
                    Some(Terminal::Unresolved { line, display }) => {
                        out.push(format!(
                            "{path}:{line}: unresolved call `{display}` (conservatively assumed)"
                        ));
                    }
                    None => {}
                }
                return out;
            }
            // Next hop: first call site (token order) with a target one BFS
            // layer closer; smallest target index breaks remaining ties.
            let mut next: Option<usize> = None;
            'sites: for &si in &graph.sites_by_caller[cur] {
                if let Callee::Fns(targets) = &graph.sites[si].callee {
                    for &t in targets {
                        if dist(self, t) == Some(d - 1) {
                            next = Some(t);
                            break 'sites;
                        }
                    }
                }
            }
            match next {
                Some(t) => {
                    cur = t;
                    d -= 1;
                }
                None => return out, // unreachable for a consistent BFS
            }
        }
    }

    /// Representative lock-order cycles: one per strongly-connected
    /// component of the lock graph with at least one cycle, each as the
    /// edge list of a shortest cycle through the component's smallest
    /// node. Deterministic.
    pub fn lock_cycles(&self) -> Vec<Vec<LockEdge>> {
        // Adjacency over sorted, deduplicated edges.
        let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
        for e in &self.lock_edges {
            adj.entry(e.from.as_str()).or_default().push(e);
        }
        let sccs = tarjan_sccs(&adj);
        let mut cycles = Vec::new();
        for scc in sccs {
            if scc.len() < 2 {
                continue;
            }
            let inside: BTreeSet<&str> = scc.iter().copied().collect();
            let start = scc[0];
            // BFS from `start` back to `start` inside the component.
            let mut parent: BTreeMap<&str, &LockEdge> = BTreeMap::new();
            let mut queue = VecDeque::from([start]);
            let mut closing: Option<&LockEdge> = None;
            'bfs: while let Some(node) = queue.pop_front() {
                for e in adj.get(node).into_iter().flatten() {
                    if e.to == start {
                        closing = Some(e);
                        break 'bfs;
                    }
                    if inside.contains(e.to.as_str()) && !parent.contains_key(e.to.as_str()) {
                        parent.insert(e.to.as_str(), e);
                        queue.push_back(e.to.as_str());
                    }
                }
            }
            if let Some(close) = closing {
                let mut edges = vec![close.clone()];
                let mut at = close.from.as_str();
                while at != start {
                    let e = parent[at];
                    edges.push(e.clone());
                    at = e.from.as_str();
                }
                edges.reverse();
                cycles.push(edges);
            }
        }
        cycles
    }

    /// Seeds + reverse-BFS for may-panic.
    fn propagate_panic(
        &mut self,
        ws: &Workspace,
        graph: &CallGraph,
        fuzzed: &crate::config::RuleScope,
    ) {
        let seeds: Vec<(usize, Terminal)> = seed_list(graph, |f| {
            if let Some(site) = self.local_panics[f].iter().find(|s| !s.suppressed) {
                return Some(Terminal::Site {
                    line: site.line,
                    label: format!("panic site: `{}`", site.label),
                });
            }
            unresolved_terminal(ws, graph, f, PANIC_EDGE_RULE, Some(fuzzed))
        });
        let dist = reverse_bfs(ws, graph, &seeds, PANIC_EDGE_RULE, Some(fuzzed));
        for (f, t) in seeds {
            self.panic_terminal[f] = Some(t);
        }
        self.panic_dist = dist;
    }

    /// Seeds + reverse-BFS per taint kind.
    fn propagate_taints(&mut self, ws: &Workspace, graph: &CallGraph) {
        for kind in TAINT_KINDS {
            let seeds: Vec<(usize, Terminal)> = seed_list(graph, |f| {
                if let Some(site) = self.local_taints[f]
                    .iter()
                    .find(|s| s.kind == kind && !s.suppressed)
                {
                    return Some(Terminal::Site {
                        line: site.line,
                        label: format!("{} source: `{}`", kind.name(), site.label),
                    });
                }
                unresolved_terminal(ws, graph, f, TAINT_EDGE_RULE, None)
            });
            let dist = reverse_bfs(ws, graph, &seeds, TAINT_EDGE_RULE, None);
            for (f, t) in seeds {
                self.taint_terminal[f][kind.idx()] = Some(t);
            }
            for (f, d) in dist.iter().enumerate() {
                self.taint_dist[f][kind.idx()] = *d;
            }
        }
    }

    /// Transitive lock summaries (fixpoint) and nested-acquisition edges.
    fn propagate_locks(&mut self, ws: &Workspace, graph: &CallGraph) {
        let n = graph.fns.len();
        // Own propagating acquisitions.
        for f in 0..n {
            let own: BTreeSet<String> = self.local_locks[f]
                .iter()
                .filter(|l| !l.param)
                .map(|l| l.id.clone())
                .collect();
            self.lock_summary[f] = own;
        }
        // Fixpoint union through unsuppressed call edges.
        loop {
            let mut changed = false;
            for f in 0..n {
                if is_test_fn(graph, ws, f) {
                    continue;
                }
                let file = &ws.files[graph.fns[f].file];
                let mut add: BTreeSet<String> = BTreeSet::new();
                for &si in &graph.sites_by_caller[f] {
                    let site = &graph.sites[si];
                    if file.has_suppression(LOCK_EDGE_RULE, site.line) {
                        continue;
                    }
                    if let Callee::Fns(targets) = &site.callee {
                        for &t in targets {
                            for id in &self.lock_summary[t] {
                                if !self.lock_summary[f].contains(id) {
                                    add.insert(id.clone());
                                }
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    self.lock_summary[f].extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Edges: intra-function ordered pairs, plus held-lock × callee
        // summary at each call site.
        let mut edges: BTreeSet<LockEdge> = BTreeSet::new();
        for f in 0..n {
            if is_test_fn(graph, ws, f) {
                continue;
            }
            let node = &graph.fns[f];
            let file = &ws.files[node.file];
            let locks = &self.local_locks[f];
            for (i, a) in locks.iter().enumerate() {
                if a.param {
                    continue;
                }
                for b in locks.iter().skip(i + 1) {
                    if !b.param && a.id != b.id {
                        edges.insert(LockEdge {
                            from: a.id.clone(),
                            to: b.id.clone(),
                            path: file.rel_path.clone(),
                            line: b.line,
                            via: node.qual.clone(),
                        });
                    }
                }
            }
            for &si in &graph.sites_by_caller[f] {
                let site = &graph.sites[si];
                if file.has_suppression(LOCK_EDGE_RULE, site.line) {
                    continue;
                }
                let Callee::Fns(targets) = &site.callee else {
                    continue;
                };
                for a in locks
                    .iter()
                    .filter(|l| !l.param && l.token_idx < site.token_idx)
                {
                    for &t in targets {
                        for id in &self.lock_summary[t] {
                            if *id != a.id {
                                edges.insert(LockEdge {
                                    from: a.id.clone(),
                                    to: id.clone(),
                                    path: file.rel_path.clone(),
                                    line: site.line,
                                    via: node.qual.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        self.lock_edges = edges.into_iter().collect();
    }

    /// Marks edge suppressions that actually severed a propagating fact as
    /// used, so `suppression-hygiene` does not flag them as dead.
    fn mark_used_edge_suppressions(
        &self,
        ws: &Workspace,
        graph: &CallGraph,
        fuzzed: &crate::config::RuleScope,
    ) {
        for f in 0..graph.fns.len() {
            if is_test_fn(graph, ws, f) {
                continue;
            }
            let file = &ws.files[graph.fns[f].file];
            let in_fuzzed = fuzzed.applies_to(&file.rel_path);
            for &si in &graph.sites_by_caller[f] {
                let site = &graph.sites[si];
                let (panics, taints, locks) = match &site.callee {
                    Callee::Unresolved(_) => (true, true, false),
                    Callee::Fns(targets) => (
                        targets.iter().any(|&t| self.may_panic(t)),
                        targets.iter().any(|&t| {
                            TAINT_KINDS
                                .iter()
                                .any(|k| self.taint_dist[t][k.idx()].is_some())
                        }),
                        targets.iter().any(|&t| !self.lock_summary[t].is_empty()),
                    ),
                };
                if panics && !in_fuzzed {
                    file.suppressed(PANIC_EDGE_RULE, site.line);
                }
                if taints {
                    file.suppressed(TAINT_EDGE_RULE, site.line);
                }
                if locks {
                    file.suppressed(LOCK_EDGE_RULE, site.line);
                }
            }
        }
    }

    /// Per-crate ratchet counters.
    fn count_crates(&mut self, ws: &Workspace, graph: &CallGraph) {
        // Every named crate appears, even at zero, so the ratchet sees
        // improvements as explicit count drops.
        for m in &ws.manifests {
            if let Some(name) = &m.package_name {
                self.counts.entry(name.clone()).or_default();
            }
        }
        for f in 0..graph.fns.len() {
            if is_test_fn(graph, ws, f) {
                continue;
            }
            let entry = self
                .counts
                .entry(graph.fns[f].crate_name.clone())
                .or_default();
            entry.panic_sites += self.local_panics[f].len();
            if !self.local_taints[f].is_empty() {
                entry.tainted_fns += 1;
            }
        }
    }
}

/// Seeds in ascending function order (determinism).
fn seed_list(
    graph: &CallGraph,
    mut seed_of: impl FnMut(usize) -> Option<Terminal>,
) -> Vec<(usize, Terminal)> {
    (0..graph.fns.len())
        .filter_map(|f| seed_of(f).map(|t| (f, t)))
        .collect()
}

/// Terminal for a function whose fact comes from an unresolved
/// workspace-rooted call (pessimism), honouring edge suppressions (except
/// in fuzzed files for the panic family).
fn unresolved_terminal(
    ws: &Workspace,
    graph: &CallGraph,
    f: usize,
    edge_rule: &str,
    fuzzed: Option<&crate::config::RuleScope>,
) -> Option<Terminal> {
    if is_test_fn(graph, ws, f) {
        return None;
    }
    let file = &ws.files[graph.fns[f].file];
    let in_fuzzed = fuzzed.is_some_and(|s| s.applies_to(&file.rel_path));
    for &si in &graph.sites_by_caller[f] {
        let site = &graph.sites[si];
        if let Callee::Unresolved(display) = &site.callee {
            if in_fuzzed || !file.has_suppression(edge_rule, site.line) {
                return Some(Terminal::Unresolved {
                    line: site.line,
                    display: display.clone(),
                });
            }
        }
    }
    None
}

/// Multi-source BFS over reverse call edges: distance from every function
/// to the nearest seed, following only unsuppressed edges. When
/// `fuzzed_override` is set, suppressions in files matching that scope are
/// ignored (fuzzed decoders cannot opt out).
fn reverse_bfs(
    ws: &Workspace,
    graph: &CallGraph,
    seeds: &[(usize, Terminal)],
    edge_rule: &str,
    fuzzed_override: Option<&crate::config::RuleScope>,
) -> Vec<Option<u32>> {
    let n = graph.fns.len();
    // callers_of[t] = sorted (caller, site line) pairs.
    let mut callers_of: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for site in &graph.sites {
        if is_test_fn(graph, ws, site.caller) {
            continue;
        }
        if let Callee::Fns(targets) = &site.callee {
            for &t in targets {
                callers_of[t].push((site.caller, site.line));
            }
        }
    }
    for v in &mut callers_of {
        v.sort_unstable();
        v.dedup();
    }
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (f, _) in seeds {
        if dist[*f].is_none() {
            dist[*f] = Some(0);
            queue.push_back(*f);
        }
    }
    while let Some(t) = queue.pop_front() {
        let d = dist[t].unwrap_or(0);
        for &(caller, line) in &callers_of[t] {
            if dist[caller].is_some() {
                continue;
            }
            let file = &ws.files[graph.fns[caller].file];
            let exempt = fuzzed_override.is_some_and(|s| s.applies_to(&file.rel_path));
            if !exempt && file.has_suppression(edge_rule, line) {
                continue;
            }
            dist[caller] = Some(d + 1);
            queue.push_back(caller);
        }
    }
    dist
}

/// Iterative Tarjan SCC over a sorted string-keyed adjacency; returns the
/// components, each sorted, in a deterministic order.
fn tarjan_sccs<'a>(adj: &BTreeMap<&'a str, Vec<&'a LockEdge>>) -> Vec<Vec<&'a str>> {
    // Collect the node universe: sources and sinks.
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (n, es) in adj {
        nodes.insert(*n);
        for e in es {
            nodes.insert(e.to.as_str());
        }
    }
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let names: Vec<&str> = nodes.into_iter().collect();
    let n = names.len();
    let succs: Vec<Vec<usize>> = names
        .iter()
        .map(|name| {
            let mut v: Vec<usize> = adj
                .get(name)
                .into_iter()
                .flatten()
                .map(|e| index_of[e.to.as_str()])
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let mut indices = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<&str>> = Vec::new();
    // Explicit DFS stack of (node, next-successor position).
    for start in 0..n {
        if indices[start] != usize::MAX {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut pos)) = dfs.last_mut() {
            if *pos == 0 {
                indices[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *pos < succs[v].len() {
                let w = succs[v][*pos];
                *pos += 1;
                if indices[w] == usize::MAX {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(indices[w]);
                }
            } else {
                if low[v] == indices[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap_or(v);
                        on_stack[w] = false;
                        comp.push(names[w]);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
                dfs.pop();
                if let Some(&mut (u, _)) = dfs.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    out.sort();
    out
}

const WALL_SEQS: &[(&[&str], &str)] = &[
    (&["Instant", "::", "now"], "Instant::now"),
    (&["SystemTime"], "SystemTime"),
    (&["thread", "::", "sleep"], "thread::sleep"),
];

const RNG_SEQS: &[(&[&str], &str)] = &[
    (&["thread_rng"], "thread_rng"),
    (&["from_entropy"], "from_entropy"),
    (&["OsRng"], "OsRng"),
    (&["rand", "::", "random"], "rand::random"),
];

/// Methods that observe a hash collection's iteration order when invoked
/// on it. Lookup-style access (`get`, `entry`, `contains_key`, `[]`) never
/// reveals order and is not evidence.
const HASH_ITER_METHODS: &[&str] = &[
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "iter",
    "iter_mut",
    "keys",
    "retain",
    "values",
    "values_mut",
];

/// Extracts every local fact from one file's non-test functions.
fn extract_local_facts(
    ws: &Workspace,
    graph: &CallGraph,
    fi: usize,
    in_fuzzed: bool,
    db: &mut FactDb,
) {
    let file = &ws.files[fi];
    if file.role == crate::source::FileRole::Test {
        return;
    }
    let src = file.text.as_str();
    let code: Vec<&crate::lexer::Token> = file.code_tokens().collect();
    let pf = &graph.parsed[fi];
    for i in 0..code.len() {
        let Some(item_idx) = crate::parser::enclosing_fn(&pf.fns, i) else {
            continue;
        };
        if pf.fns[item_idx].in_test {
            continue;
        }
        let f = graph.fn_index(fi, item_idx);
        let tok = code[i];
        // Panic sites: the shared lexical patterns plus literal subscripts.
        for pattern in PANIC_SEQS {
            if matches_at(&code, i, pattern.seq, src) {
                let label = if pattern.seq[0] == "." {
                    format!("{}()", pattern.seq[1])
                } else {
                    format!("{}!", pattern.seq[0])
                };
                let suppressed = !in_fuzzed && file.suppressed("no-panic", tok.line);
                db.local_panics[f].push(PanicSite {
                    token_idx: i,
                    line: tok.line,
                    col: tok.col,
                    label,
                    suppressed,
                });
            }
        }
        if is_literal_index(&code, i, src) {
            let suppressed = !in_fuzzed && file.suppressed("no-literal-index", tok.line);
            db.local_panics[f].push(PanicSite {
                token_idx: i,
                line: tok.line,
                col: tok.col,
                label: format!("literal index `[{}]`", code[i + 1].text(src)),
                suppressed,
            });
        }
        // Wall-clock and RNG taint sources.
        for (seq, label) in WALL_SEQS {
            if matches_at(&code, i, seq, src) {
                let suppressed = file.suppressed(TaintKind::WallClock.source_rule(), tok.line);
                db.local_taints[f].push(TaintSite {
                    kind: TaintKind::WallClock,
                    line: tok.line,
                    col: tok.col,
                    label: (*label).to_owned(),
                    suppressed,
                });
            }
        }
        for (seq, label) in RNG_SEQS {
            if matches_at(&code, i, seq, src) {
                let suppressed = file.suppressed(TaintKind::Rng.source_rule(), tok.line);
                db.local_taints[f].push(TaintSite {
                    kind: TaintKind::Rng,
                    line: tok.line,
                    col: tok.col,
                    label: (*label).to_owned(),
                    suppressed,
                });
            }
        }
        // Lock acquisitions: `recv.lock()` / `.read()` / `.write()` with no
        // arguments, plus the `lock(&path)` accessor-helper idiom.
        if tok.text(src) == "."
            && matches!(
                code.get(i + 1).map(|t| t.text(src)),
                Some("lock" | "read" | "write")
            )
            && code.get(i + 2).map(|t| t.text(src)) == Some("(")
            && code.get(i + 3).map(|t| t.text(src)) == Some(")")
        {
            if let Some(site) = lock_site_from_receiver(&code, i, src, &graph.fns[f]) {
                db.local_locks[f].push(site);
            }
        }
        if matches!(tok.text(src), "lock" | "try_lock")
            && code.get(i + 1).map(|t| t.text(src)) == Some("(")
            && (i == 0 || code[i - 1].text(src) != ".")
            && (i == 0 || code[i - 1].text(src) != "fn")
        {
            if let Some(path) = lock_arg_path(&code, i + 2, src) {
                let id = lock_id(&path, &graph.fns[f]);
                db.local_locks[f].push(LockSite {
                    token_idx: i,
                    line: tok.line,
                    id: id.0,
                    param: id.1,
                });
            }
        }
    }
    // Hash-order taint needs per-function context: a hash collection bound
    // in the body *and* evidence that its iteration order is observed —
    // an order-revealing method on the *bound variable*, or a `for` loop
    // over it. A map only ever used for lookups is order-deterministic.
    for (item_idx, item) in pf.fns.iter().enumerate() {
        if item.in_test {
            continue;
        }
        let f = graph.fn_index(fi, item_idx);
        let body = item.body.clone();
        for i in body.start..body.end.min(code.len()) {
            let t = code[i].text(src);
            if t != "HashMap" && t != "HashSet" {
                continue;
            }
            let tok = code[i];
            let bound = hash_binding_name(&code, body.start, i, src);
            let iterated = match bound {
                // `let m = HashMap…`: evidence must mention `m`.
                Some(name) => hash_binding_iterated(&code, &body, src, name),
                // Unbound occurrence (struct literal, cast, nested type):
                // fall back to any order-revealing evidence in the body.
                None => (body.start..body.end.min(code.len())).any(|k| {
                    code[k].text(src) == "for"
                        || (code[k].text(src) == "."
                            && code
                                .get(k + 1)
                                .is_some_and(|m| HASH_ITER_METHODS.contains(&m.text(src)))
                            && code.get(k + 2).map(|p| p.text(src)) == Some("("))
                }),
            };
            if iterated {
                let suppressed = file.suppressed(TaintKind::HashOrder.source_rule(), tok.line);
                db.local_taints[f].push(TaintSite {
                    kind: TaintKind::HashOrder,
                    line: tok.line,
                    col: tok.col,
                    label: format!("{} iteration", tok.text(src)),
                    suppressed,
                });
                break; // one site per body is enough to seed the taint
            }
        }
    }
    // Keep site lists in token order (panic/taint pushes above interleave
    // pattern families at the same index).
    for item_idx in 0..pf.fns.len() {
        let f = graph.fn_index(fi, item_idx);
        db.local_panics[f].sort_by_key(|s| (s.token_idx, s.line, s.col));
        db.local_taints[f].sort_by_key(|s| (s.line, s.col, s.kind));
        db.local_locks[f].sort_by_key(|s| s.token_idx);
    }
}

/// Finds the `let`-bound variable name for a `HashMap`/`HashSet` token at
/// `at`: walks back to the start of the enclosing statement and, if it is
/// a `let` binding with a plain identifier pattern, returns that name.
fn hash_binding_name<'a>(
    code: &[&crate::lexer::Token],
    body_start: usize,
    at: usize,
    src: &'a str,
) -> Option<&'a str> {
    let mut j = at;
    while j > body_start {
        let t = code[j - 1].text(src);
        if matches!(t, ";" | "{" | "}") {
            return None;
        }
        if t == "let" {
            let mut k = j; // first token after `let`
            if code.get(k).map(|t| t.text(src)) == Some("mut") {
                k += 1;
            }
            let name_tok = code.get(k)?;
            return matches!(
                name_tok.kind,
                crate::lexer::TokenKind::Ident | crate::lexer::TokenKind::RawIdent
            )
            .then(|| name_tok.text(src));
        }
        j -= 1;
    }
    None
}

/// True when the body observes `name`'s iteration order: `name.<iter-ish>(`
/// or a `for … in … name … {` loop header naming it.
fn hash_binding_iterated(
    code: &[&crate::lexer::Token],
    body: &std::ops::Range<usize>,
    src: &str,
    name: &str,
) -> bool {
    let end = body.end.min(code.len());
    for k in body.start..end {
        let t = code[k].text(src);
        if t == name
            && code.get(k + 1).map(|t| t.text(src)) == Some(".")
            && code
                .get(k + 2)
                .is_some_and(|m| HASH_ITER_METHODS.contains(&m.text(src)))
            && code.get(k + 3).map(|p| p.text(src)) == Some("(")
        {
            return true;
        }
        if t == "for" && code.get(k + 1).map(|t| t.text(src)) != Some("<") {
            // Scan the loop header (`for pat in expr {`) for the name.
            let mut seen_in = false;
            for tok in &code[k + 1..end] {
                match tok.text(src) {
                    "{" => break,
                    "in" => seen_in = true,
                    t if seen_in && t == name => return true,
                    _ => {}
                }
            }
        }
    }
    false
}

/// Builds a [`LockSite`] from the receiver chain ending at the `.` token
/// `dot` (`self.metrics.lock()` → receiver `self.metrics`).
fn lock_site_from_receiver(
    code: &[&crate::lexer::Token],
    dot: usize,
    src: &str,
    node: &crate::callgraph::FnNode,
) -> Option<LockSite> {
    let mut segs: Vec<&str> = Vec::new();
    let mut j = dot;
    while j >= 1 {
        let prev = code[j - 1];
        match prev.kind {
            crate::lexer::TokenKind::Ident | crate::lexer::TokenKind::RawIdent => {
                segs.push(prev.text(src));
                if j >= 2 && code[j - 2].text(src) == "." {
                    j -= 2;
                } else {
                    break;
                }
            }
            _ => {
                // Complex receiver (call result, index). Identify by the
                // method token's position so distinct sites stay distinct.
                if segs.is_empty() {
                    segs.push("<expr>");
                }
                break;
            }
        }
    }
    if segs.is_empty() {
        return None;
    }
    segs.reverse();
    let path: Vec<String> = segs.iter().map(|s| (*s).to_owned()).collect();
    let (id, param) = lock_id(&path, node);
    Some(LockSite {
        token_idx: dot,
        line: code[dot].line,
        id,
        param,
    })
}

/// First argument of `lock(…)`/`try_lock(…)` as a field path, when it has
/// the shape `&?mut? ident(.ident)*` followed by `)` or `,`.
fn lock_arg_path(code: &[&crate::lexer::Token], at: usize, src: &str) -> Option<Vec<String>> {
    let mut j = at;
    while matches!(code.get(j).map(|t| t.text(src)), Some("&" | "mut")) {
        j += 1;
    }
    let mut path = Vec::new();
    loop {
        let t = code.get(j)?;
        if !matches!(
            t.kind,
            crate::lexer::TokenKind::Ident | crate::lexer::TokenKind::RawIdent
        ) {
            return None;
        }
        path.push(t.text(src).to_owned());
        match code.get(j + 1).map(|t| t.text(src)) {
            Some(".") => j += 2,
            Some(")") | Some(",") => return Some(path),
            _ => return None,
        }
    }
}

/// Lock identity for a receiver/argument path, qualified so that the same
/// shared mutex gets the same id across methods of one type: `self.x` in
/// `impl T` becomes `T::x`; a parameter becomes a non-propagating
/// `param::…` id; anything else is function-local.
fn lock_id(path: &[String], node: &crate::callgraph::FnNode) -> (String, bool) {
    if path.first().map(String::as_str) == Some("self") {
        let owner = node.item.owner.as_deref().unwrap_or("Self");
        let rest = path[1..].join(".");
        if rest.is_empty() {
            return (format!("{owner}::self"), false);
        }
        return (format!("{owner}::{rest}"), false);
    }
    if path.len() == 1 && node.item.params.iter().any(|p| p == &path[0]) {
        return (format!("param::{}::{}", node.qual, path[0]), true);
    }
    (format!("{}::{}", node.qual, path.join(".")), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::{Manifest, Workspace};
    use std::path::PathBuf;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let mut fs: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::parse(p, (*s).to_owned()))
            .collect();
        fs.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        let manifests = vec![
            Manifest::parse(
                "crates/alpha/Cargo.toml",
                "[package]\nname = \"mp-alpha\"\n",
            ),
            Manifest::parse("crates/beta/Cargo.toml", "[package]\nname = \"mp-beta\"\n"),
        ];
        Workspace {
            root: PathBuf::from("/nonexistent"),
            files: fs,
            manifests,
        }
    }

    fn build(files: &[(&str, &str)]) -> (Workspace, CallGraph, FactDb) {
        let ws = ws(files);
        let graph = CallGraph::build(&ws);
        let config = Config::workspace_default();
        let db = FactDb::build(&ws, &graph, &config);
        (ws, graph, db)
    }

    fn fn_idx(g: &CallGraph, qual: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.qual == qual)
            .unwrap_or_else(|| panic!("no fn {qual}"))
    }

    #[test]
    fn indirect_panic_two_hops() {
        let (ws, g, db) = build(&[
            (
                "crates/alpha/src/lib.rs",
                "pub fn top() { mp_beta::mid(); }\n",
            ),
            (
                "crates/beta/src/lib.rs",
                "pub fn mid() { deep(); }\nfn deep() { panic!(\"boom\"); }\n",
            ),
        ]);
        let top = fn_idx(&g, "mp_alpha::top");
        assert!(db.may_panic(top));
        assert_eq!(db.panic_dist[top], Some(2));
        let chain = db.panic_chain(&ws, &g, top);
        assert_eq!(chain.len(), 4, "top, mid, deep, site: {chain:?}");
        assert!(chain[0].contains("mp_alpha::top"));
        assert!(chain[1].contains("mp_beta::mid"));
        assert!(chain[2].contains("mp_beta::deep"));
        assert!(chain[3].contains("panic site: `panic!`"));
    }

    #[test]
    fn suppressed_local_site_does_not_propagate() {
        let (_, g, db) = build(&[(
            "crates/alpha/src/lib.rs",
            "pub fn safe() -> u8 {\n    // lint: allow(no-panic) reason=\"static input\"\n    \"7\".parse().unwrap()\n}\npub fn caller() -> u8 { safe() }\n",
        )]);
        assert!(!db.may_panic(fn_idx(&g, "mp_alpha::safe")));
        assert!(!db.may_panic(fn_idx(&g, "mp_alpha::caller")));
        // The suppressed site still counts as ratchet debt.
        assert_eq!(db.counts["mp-alpha"].panic_sites, 1);
    }

    #[test]
    fn edge_suppression_stops_the_cascade() {
        let (_, g, db) = build(&[(
            "crates/alpha/src/lib.rs",
            "pub fn deep() { panic!(\"x\"); }\npub fn mid() {\n    // lint: allow(no-panic-reachable) reason=\"guarded by caller invariant\"\n    deep();\n}\npub fn top() { mid(); }\n",
        )]);
        assert!(db.may_panic(fn_idx(&g, "mp_alpha::deep")));
        assert!(!db.may_panic(fn_idx(&g, "mp_alpha::mid")));
        assert!(!db.may_panic(fn_idx(&g, "mp_alpha::top")));
    }

    #[test]
    fn taint_propagates_by_kind() {
        let (ws, g, db) = build(&[(
            "crates/alpha/src/lib.rs",
            "use std::collections::HashMap;\npub fn source() -> Vec<u64> {\n    let m: HashMap<u64, u64> = HashMap::new();\n    m.keys().copied().collect()\n}\npub fn sink() -> Vec<u64> { source() }\npub fn clean() -> u8 { 1 }\n",
        )]);
        let sink = fn_idx(&g, "mp_alpha::sink");
        assert_eq!(db.taints_of(sink), vec![TaintKind::HashOrder]);
        assert!(db.taints_of(fn_idx(&g, "mp_alpha::clean")).is_empty());
        let chain = db.taint_chain(&ws, &g, sink, TaintKind::HashOrder);
        assert!(chain.last().expect("chain").contains("hash-order source"));
        assert_eq!(db.counts["mp-alpha"].tainted_fns, 1);
    }

    #[test]
    fn rng_and_wall_clock_sources() {
        let (_, g, db) = build(&[(
            "crates/alpha/src/lib.rs",
            "pub fn r() { let _ = rand::thread_rng(); }\npub fn w() { let _ = std::time::Instant::now(); }\npub fn both() { r(); w(); }\n",
        )]);
        let both = fn_idx(&g, "mp_alpha::both");
        assert_eq!(
            db.taints_of(both),
            vec![TaintKind::Rng, TaintKind::WallClock]
        );
    }

    #[test]
    fn unresolved_calls_are_pessimistic() {
        let (ws, g, db) = build(&[(
            "crates/alpha/src/lib.rs",
            "pub fn f() { crate::ghost::call(); }\n",
        )]);
        let f = fn_idx(&g, "mp_alpha::f");
        assert!(db.may_panic(f));
        assert!(!db.taints_of(f).is_empty());
        let chain = db.panic_chain(&ws, &g, f);
        assert!(chain.last().expect("chain").contains("unresolved call"));
    }

    #[test]
    fn lock_cycle_across_two_functions() {
        let (_, _, db) = build(&[(
            "crates/alpha/src/lib.rs",
            "use std::sync::Mutex;\npub struct S { a: Mutex<u8>, b: Mutex<u8> }\nimpl S {\n    pub fn ab(&self) { let _x = self.a.lock(); let _y = self.b.lock(); }\n    pub fn ba(&self) { let _y = self.b.lock(); let _x = self.a.lock(); }\n}\n",
        )]);
        let cycles = db.lock_cycles();
        assert_eq!(cycles.len(), 1, "edges: {:?}", db.lock_edges);
        let nodes: BTreeSet<&str> = cycles[0]
            .iter()
            .flat_map(|e| [e.from.as_str(), e.to.as_str()])
            .collect();
        assert_eq!(nodes, BTreeSet::from(["S::a", "S::b"]));
    }

    #[test]
    fn lock_summary_joins_through_callees() {
        let (_, g, db) = build(&[(
            "crates/alpha/src/lib.rs",
            "use std::sync::Mutex;\npub struct S { a: Mutex<u8>, b: Mutex<u8> }\nimpl S {\n    pub fn outer(&self) { let _g = self.a.lock(); self.inner(); }\n    fn inner(&self) { let _g = self.b.lock(); }\n}\n",
        )]);
        let outer = fn_idx(&g, "mp_alpha::S::outer");
        assert!(db.lock_summary[outer].contains("S::a"));
        assert!(db.lock_summary[outer].contains("S::b"));
        assert!(db
            .lock_edges
            .iter()
            .any(|e| e.from == "S::a" && e.to == "S::b"));
        // One direction only: no cycle.
        assert!(db.lock_cycles().is_empty());
    }

    #[test]
    fn helper_mediated_lock_acquisition() {
        // The serve.rs idiom: a free `lock(m)` helper; the caller passes
        // `&self.field`, which is the acquisition that matters.
        let (_, g, db) = build(&[(
            "crates/alpha/src/lib.rs",
            "use std::sync::{Mutex, MutexGuard, PoisonError};\nfn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> { m.lock().unwrap_or_else(PoisonError::into_inner) }\npub struct S { q: Mutex<u8>, r: Mutex<u8> }\nimpl S {\n    pub fn qr(&self) { let _a = lock(&self.q); let _b = lock(&self.r); }\n    pub fn rq(&self) { let _b = lock(&self.r); let _a = lock(&self.q); }\n}\n",
        )]);
        // The helper's own `m.lock()` is a parameter lock: non-propagating.
        let helper = fn_idx(&g, "mp_alpha::lock");
        assert!(db.lock_summary[helper].is_empty());
        let cycles = db.lock_cycles();
        assert_eq!(cycles.len(), 1, "edges: {:?}", db.lock_edges);
        let nodes: BTreeSet<&str> = cycles[0]
            .iter()
            .flat_map(|e| [e.from.as_str(), e.to.as_str()])
            .collect();
        assert_eq!(nodes, BTreeSet::from(["S::q", "S::r"]));
    }

    #[test]
    fn test_code_contributes_nothing() {
        let (_, g, db) = build(&[(
            "crates/alpha/src/lib.rs",
            "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n",
        )]);
        assert!(!db.may_panic(fn_idx(&g, "mp_alpha::live")));
        assert_eq!(db.counts["mp-alpha"].panic_sites, 0);
    }

    #[test]
    fn facts_are_independent_of_input_file_order() {
        let files_a: &[(&str, &str)] = &[
            (
                "crates/alpha/src/lib.rs",
                "pub fn top() { mp_beta::mid(); }\n",
            ),
            (
                "crates/beta/src/lib.rs",
                "pub fn mid() { deep(); }\nfn deep() { let _: u8 = \"1\".parse().unwrap(); }\n",
            ),
        ];
        let files_b: Vec<(&str, &str)> = files_a.iter().rev().copied().collect();
        let (ws_a, g_a, db_a) = build(files_a);
        let (ws_b, g_b, db_b) = build(&files_b);
        let top_a = fn_idx(&g_a, "mp_alpha::top");
        let top_b = fn_idx(&g_b, "mp_alpha::top");
        assert_eq!(db_a.panic_dist[top_a], db_b.panic_dist[top_b]);
        assert_eq!(
            db_a.panic_chain(&ws_a, &g_a, top_a),
            db_b.panic_chain(&ws_b, &g_b, top_b)
        );
        assert_eq!(db_a.counts, db_b.counts);
    }
}
