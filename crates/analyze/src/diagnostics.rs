//! Diagnostics and their deterministic renderings.
//!
//! Both output formats are byte-stable across runs: diagnostics are sorted
//! by `(path, line, col, rule)`, the JSON renderer emits keys in sorted
//! order, and nothing in a report depends on wall time, hash iteration
//! order or the machine it ran on. Interprocedural diagnostics carry a
//! `chain` — the call path from the flagged site down to the originating
//! fact — which is part of the byte-stability contract.

use crate::facts::CrateCounts;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Kebab-case rule name (`no-panic`, `crate-layering`, …).
    pub rule: String,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// For interprocedural rules: the call chain from this site to the
    /// underlying fact, one `path:line: name` element per hop. Empty for
    /// lexical rules.
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// Builds a diagnostic; keeps call sites in lint passes compact.
    pub fn new(
        rule: &str,
        path: &str,
        line: usize,
        col: usize,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule: rule.to_owned(),
            path: path.to_owned(),
            line,
            col,
            message: message.into(),
            chain: Vec::new(),
        }
    }

    /// Attaches a call chain (builder style, for interprocedural passes).
    pub fn with_chain(mut self, chain: Vec<String>) -> Diagnostic {
        self.chain = chain;
        self
    }
}

/// A finished analysis: sorted diagnostics plus scan statistics and the
/// per-crate fact counters the baseline ratchet pins.
#[derive(Debug, Clone)]
pub struct Report {
    /// All violations, sorted by `(path, line, col, rule, message)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of crate manifests inspected.
    pub manifests_scanned: usize,
    /// Names of the rules that ran, sorted.
    pub rules: Vec<String>,
    /// Per-crate debt counters (panic sites, tainted functions), keyed by
    /// package name — the input to `--ratchet`.
    pub facts: BTreeMap<String, CrateCounts>,
}

impl Report {
    /// Sorts diagnostics and rule names into their canonical order.
    pub fn finish(mut self) -> Report {
        self.diagnostics.sort_by(|a, b| {
            (&a.path, a.line, a.col, &a.rule, &a.message)
                .cmp(&(&b.path, b.line, b.col, &b.rule, &b.message))
        });
        self.diagnostics.dedup();
        self.rules.sort();
        self.rules.dedup();
        self
    }

    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `path:line:col: rule: message` lines (each followed by its indented
    /// call chain, when present) plus a summary trailer.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "{}:{}:{}: {}: {}",
                d.path, d.line, d.col, d.rule, d.message
            );
            for (i, hop) in d.chain.iter().enumerate() {
                let _ = writeln!(out, "    {}. {hop}", i + 1);
            }
        }
        let _ = writeln!(
            out,
            "mp-analyze: {} violation(s) in {} file(s), {} manifest(s), {} rule(s)",
            self.diagnostics.len(),
            self.files_scanned,
            self.manifests_scanned,
            self.rules.len()
        );
        out
    }

    /// Pretty JSON with keys in sorted order; byte-stable across runs.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"facts\": {");
        for (i, (name, c)) in self.facts.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {}: {{\"panic_sites\": {}, \"tainted_fns\": {}}}",
                json_string(name),
                c.panic_sites,
                c.tainted_fns
            );
        }
        if !self.facts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"schema_version\": 2,\n  \"summary\": {\n");
        let _ = writeln!(out, "    \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(
            out,
            "    \"manifests_scanned\": {},",
            self.manifests_scanned
        );
        out.push_str("    \"rules\": [");
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(r));
        }
        out.push_str("],\n");
        let _ = writeln!(out, "    \"violations\": {}", self.diagnostics.len());
        out.push_str("  },\n  \"violations\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"chain\": [");
            for (j, hop) in d.chain.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(hop));
            }
            let _ = write!(
                out,
                "], \"col\": {}, \"line\": {}, \"message\": {}, \"path\": {}, \"rule\": {}}}",
                d.col,
                d.line,
                json_string(&d.message),
                json_string(&d.path),
                json_string(&d.rule)
            );
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut facts = BTreeMap::new();
        facts.insert(
            "mp-demo".to_owned(),
            CrateCounts {
                panic_sites: 4,
                tainted_fns: 1,
            },
        );
        Report {
            diagnostics: vec![
                Diagnostic::new("z-rule", "b.rs", 2, 1, "later file"),
                Diagnostic::new("a-rule", "a.rs", 9, 4, "first file, later line").with_chain(vec![
                    "a.rs:9: demo::top".to_owned(),
                    "b.rs:2: demo::deep".to_owned(),
                ]),
                Diagnostic::new("a-rule", "a.rs", 3, 7, "first file, early \"quoted\""),
            ],
            files_scanned: 2,
            manifests_scanned: 1,
            rules: vec!["z-rule".to_owned(), "a-rule".to_owned()],
            facts,
        }
        .finish()
    }

    #[test]
    fn diagnostics_sort_by_path_line_col() {
        let r = sample();
        assert_eq!(r.diagnostics[0].path, "a.rs");
        assert_eq!(r.diagnostics[0].line, 3);
        assert_eq!(r.diagnostics[1].line, 9);
        assert_eq!(r.diagnostics[2].path, "b.rs");
    }

    #[test]
    fn human_format_is_colon_separated_with_chains() {
        let r = sample();
        let h = r.render_human();
        assert!(h.starts_with("a.rs:3:7: a-rule: first file, early \"quoted\"\n"));
        assert!(h.contains("    1. a.rs:9: demo::top\n    2. b.rs:2: demo::deep\n"));
        assert!(h.contains("3 violation(s) in 2 file(s), 1 manifest(s), 2 rule(s)"));
    }

    #[test]
    fn json_is_escaped_and_stable() {
        let r = sample();
        let j1 = r.render_json();
        let j2 = sample().render_json();
        assert_eq!(j1, j2, "same report must render byte-identically");
        assert!(j1.contains("\\\"quoted\\\""));
        assert!(j1.contains("\"schema_version\": 2"));
        assert!(j1.contains("\"violations\": 3"));
        assert!(j1.contains("\"chain\": [\"a.rs:9: demo::top\", \"b.rs:2: demo::deep\"]"));
        assert!(j1.contains("\"mp-demo\": {\"panic_sites\": 4, \"tainted_fns\": 1}"));
    }

    #[test]
    fn clean_report_json_has_empty_array() {
        let r = Report {
            diagnostics: Vec::new(),
            files_scanned: 5,
            manifests_scanned: 3,
            rules: vec!["no-panic".to_owned()],
            facts: BTreeMap::new(),
        }
        .finish();
        assert!(r.is_clean());
        assert!(r.render_json().contains("\"violations\": []"));
        assert!(r.render_json().contains("\"facts\": {}"));
    }

    #[test]
    fn json_string_control_chars() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
    }
}
