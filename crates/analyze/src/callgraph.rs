//! Workspace call graph: per-crate symbol tables and conservative,
//! `use`-aware call resolution over the parsed items of every file.
//!
//! Resolution is *textual* — there is no type information — so it is
//! deliberately asymmetric about failure:
//!
//! * A path call rooted in a **workspace crate** (`mp_observe::…`,
//!   `crate::…`, `Self::…`) that fails to resolve becomes
//!   [`Callee::Unresolved`], which downstream fact propagation treats as
//!   having *every* fact (pessimism: an edge we cannot follow into our own
//!   code must not launder facts away).
//! * A call into `std`/vendored crates, or a method call whose name is a
//!   ubiquitous std method ([`PRELUDE_METHODS`]), is treated as external
//!   and fact-free (optimism: linking `.len()` to every workspace `len`
//!   would drown the analysis; std panics are the lexical rules' job at
//!   the call site). The trade-off is documented in DESIGN.md §15.
//! * A method call with a workspace-meaningful name links to **all**
//!   workspace methods of that name (suffix match across impl types) —
//!   over-approximation, never under-approximation.

use crate::parser::{self, FnItem, ParsedFile};
use crate::source::FileRole;
use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet};

/// One function node in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into `Workspace::files`.
    pub file: usize,
    /// The parsed item (name, owner, body range, params, …).
    pub item: FnItem,
    /// Package name of the crate the file belongs to (e.g. `mp-observe`).
    pub crate_name: String,
    /// Crate ident as it appears in paths (e.g. `mp_observe`).
    pub crate_ident: String,
    /// Module path inside the crate: file-derived segments plus inline
    /// `mod`s (e.g. `["recorder"]` for `crates/observe/src/recorder.rs`).
    pub module: Vec<String>,
    /// Display name for diagnostics:
    /// `mp_observe::recorder::Registry::counter`.
    pub qual: String,
}

/// Where a call site leads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// Resolved to one or more workspace functions (sorted indices into
    /// [`CallGraph::fns`]); more than one for cross-type method matches.
    Fns(Vec<usize>),
    /// Workspace-rooted path that did not resolve; carries the textual
    /// path. Fact propagation treats this as having every fact.
    Unresolved(String),
}

/// One call expression inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Calling function (index into [`CallGraph::fns`]).
    pub caller: usize,
    /// Code-token index (within the caller's file) of the called name —
    /// used to order call sites against lock acquisitions.
    pub token_idx: usize,
    /// 1-based line of the called name.
    pub line: usize,
    /// 1-based column of the called name.
    pub col: usize,
    /// What the call looked like in source (`recorder.counter` or
    /// `mp_observe::Registry::counter`).
    pub display: String,
    /// Resolution result.
    pub callee: Callee,
}

/// The workspace call graph plus everything needed to walk bodies again.
pub struct CallGraph {
    /// All function nodes, ordered by (file index, body start) — a stable,
    /// path-sorted order because `Workspace::files` is sorted.
    pub fns: Vec<FnNode>,
    /// Parsed item structure per file (same indexing as `Workspace::files`).
    pub parsed: Vec<ParsedFile>,
    /// All call sites, ordered by (caller file, token index).
    pub sites: Vec<CallSite>,
    /// Call-site indices grouped per caller function.
    pub sites_by_caller: Vec<Vec<usize>>,
    /// First function index per file: `fns` index of file `fi`'s item 0.
    pub fn_base: Vec<usize>,
}

/// Method names so common in `std` that a bare `.name(` call is assumed
/// external; linking them to same-named workspace methods would connect
/// nearly every function to nearly every collection wrapper. Sorted for
/// binary search; a workspace method that shares one of these names is a
/// documented blind spot of the analysis.
pub const PRELUDE_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "borrow",
    "borrow_mut",
    "bytes",
    "ceil",
    "chain",
    "chars",
    "checked_add",
    "checked_div",
    "checked_mul",
    "checked_sub",
    "chunks",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "concat",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "lock",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "ne",
    "next",
    "next_back",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "partition",
    "peek",
    "peekable",
    "pop",
    "position",
    "pow",
    "powf",
    "powi",
    "push",
    "push_str",
    "read",
    "remove",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_sub",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_whitespace",
    "sqrt",
    "starts_with",
    "step_by",
    "sum",
    "swap",
    "take",
    "take_while",
    "then",
    "then_some",
    "to_ascii_lowercase",
    "to_ascii_uppercase",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "trim_end",
    "trim_start",
    "truncate",
    "try_into",
    "try_lock",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "wrapping_add",
    "write",
    "zip",
];

/// Path roots that always mean "outside the workspace": external crates
/// plus the primitive types (`u64::from_le_bytes` and friends).
const EXTERNAL_ROOTS: &[&str] = &[
    "alloc",
    "bool",
    "char",
    "core",
    "criterion",
    "f32",
    "f64",
    "i128",
    "i16",
    "i32",
    "i64",
    "i8",
    "isize",
    "proptest",
    "rand",
    "serde",
    "serde_json",
    "std",
    "str",
    "u128",
    "u16",
    "u32",
    "u64",
    "u8",
    "usize",
];

/// Keywords and std constructors that look like bare calls but never are.
const NON_CALL_IDENTS: &[&str] = &[
    "Err", "None", "Ok", "Some", "box", "break", "continue", "else", "for", "if", "in", "let",
    "loop", "match", "move", "return", "unsafe", "while", "yield",
];

impl CallGraph {
    /// Builds the graph for `ws`. Pure over the already-lexed files.
    pub fn build(ws: &Workspace) -> CallGraph {
        let crate_of = crate_map(ws);
        let mut parsed = Vec::with_capacity(ws.files.len());
        let mut fns: Vec<FnNode> = Vec::new();
        let mut fn_of_item: Vec<BTreeMap<usize, usize>> = Vec::new();
        let crate_idents: Vec<String> = {
            let mut v: Vec<String> = ws
                .manifests
                .iter()
                .filter_map(|m| m.package_name.clone())
                .map(|n| n.replace('-', "_"))
                .collect();
            v.sort();
            v.dedup();
            v
        };
        let mut fn_base = Vec::with_capacity(ws.files.len());
        for (fi, file) in ws.files.iter().enumerate() {
            fn_base.push(fns.len());
            let pf = parser::parse(file);
            let (crate_name, crate_ident) = crate_of
                .get(&fi)
                .cloned()
                .unwrap_or_else(|| ("unknown".to_owned(), "unknown".to_owned()));
            let file_mod = file_module(&file.rel_path);
            let mut map = BTreeMap::new();
            for (ii, item) in pf.fns.iter().enumerate() {
                let mut module = file_mod.clone();
                module.extend(item.module.iter().cloned());
                let mut qual = crate_ident.clone();
                for m in &module {
                    qual.push_str("::");
                    qual.push_str(m);
                }
                if let Some(owner) = &item.owner {
                    qual.push_str("::");
                    qual.push_str(owner);
                }
                qual.push_str("::");
                qual.push_str(&item.name);
                map.insert(ii, fns.len());
                fns.push(FnNode {
                    file: fi,
                    item: item.clone(),
                    crate_name: crate_name.clone(),
                    crate_ident: crate_ident.clone(),
                    module,
                    qual,
                });
            }
            fn_of_item.push(map);
            parsed.push(pf);
        }
        // Symbol table: bare name → all function indices sharing it.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.item.name.as_str()).or_default().push(i);
        }
        let reachable = reachable_crates(ws);
        let mut sites = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            extract_sites(
                file,
                &parsed[fi],
                &fn_of_item[fi],
                &fns,
                &by_name,
                &crate_idents,
                &reachable,
                &mut sites,
            );
        }
        let mut sites_by_caller = vec![Vec::new(); fns.len()];
        for (si, s) in sites.iter().enumerate() {
            sites_by_caller[s.caller].push(si);
        }
        CallGraph {
            fns,
            parsed,
            sites,
            sites_by_caller,
            fn_base,
        }
    }

    /// Global function index of item `item_idx` in file `file` (items are
    /// pushed in file order, then item order).
    pub fn fn_index(&self, file: usize, item_idx: usize) -> usize {
        self.fn_base[file] + item_idx
    }

    /// Resolved workspace callees of site `si` (empty for external calls;
    /// `None` marks an unresolved, pessimistic edge).
    pub fn callees_of(&self, si: usize) -> Option<&[usize]> {
        match &self.sites[si].callee {
            Callee::Fns(v) => Some(v),
            Callee::Unresolved(_) => None,
        }
    }
}

/// Maps each file index to its crate's (package name, path ident) by the
/// longest manifest-directory prefix.
fn crate_map(ws: &Workspace) -> BTreeMap<usize, (String, String)> {
    // (dir, package) pairs; root manifest has dir "".
    let mut dirs: Vec<(String, String)> = ws
        .manifests
        .iter()
        .filter_map(|m| {
            let name = m.package_name.clone()?;
            let dir = m
                .rel_path
                .strip_suffix("Cargo.toml")
                .unwrap_or(&m.rel_path)
                .trim_end_matches('/')
                .to_owned();
            Some((dir, name))
        })
        .collect();
    // Longest prefix wins: sort by dir length descending (ties by name for
    // determinism).
    dirs.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.cmp(b)));
    let mut out = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        let hit = dirs.iter().find(|(dir, _)| {
            dir.is_empty()
                || file
                    .rel_path
                    .strip_prefix(dir.as_str())
                    .is_some_and(|rest| rest.starts_with('/'))
        });
        if let Some((_, name)) = hit {
            out.insert(fi, (name.clone(), name.replace('-', "_")));
        }
    }
    out
}

/// Workspace crates each crate can reach through its (non-dev) manifest
/// dependencies, itself included — the only crates a method call in its
/// non-test code can land in. Keys and values are crate *idents*.
fn reachable_crates(ws: &Workspace) -> BTreeMap<String, BTreeSet<String>> {
    let packages: BTreeSet<&str> = ws
        .manifests
        .iter()
        .filter_map(|m| m.package_name.as_deref())
        .collect();
    let mut direct: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for m in &ws.manifests {
        let Some(name) = m.package_name.as_deref() else {
            continue;
        };
        let deps: Vec<&str> = m
            .deps
            .iter()
            .filter(|d| !d.dev && packages.contains(d.name.as_str()))
            .map(|d| d.name.as_str())
            .collect();
        direct.insert(name, deps);
    }
    let mut out = BTreeMap::new();
    for name in direct.keys() {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![*name];
        while let Some(n) = stack.pop() {
            if seen.insert(n) {
                if let Some(ds) = direct.get(n) {
                    stack.extend(ds.iter().copied());
                }
            }
        }
        out.insert(
            name.replace('-', "_"),
            seen.iter().map(|n| n.replace('-', "_")).collect(),
        );
    }
    out
}

/// Module path a file contributes by position: path segments after `src/`
/// minus the file stem for `lib.rs`/`main.rs`/`mod.rs`.
fn file_module(rel_path: &str) -> Vec<String> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let Some(src_at) = parts.iter().position(|p| *p == "src") else {
        return Vec::new();
    };
    let mut out: Vec<String> = Vec::new();
    for (i, part) in parts.iter().enumerate().skip(src_at + 1) {
        if i + 1 == parts.len() {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if !matches!(stem, "lib" | "main" | "mod") {
                out.push(stem.to_owned());
            }
        } else if *part != "bin" {
            out.push((*part).to_owned());
        }
    }
    out
}

/// Scans one file's code tokens for call expressions, attributing each to
/// its innermost enclosing function and resolving the callee.
#[allow(clippy::too_many_arguments)]
fn extract_sites(
    file: &crate::source::SourceFile,
    pf: &ParsedFile,
    fn_of_item: &BTreeMap<usize, usize>,
    fns: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    crate_idents: &[String],
    reachable: &BTreeMap<String, BTreeSet<String>>,
    sites: &mut Vec<CallSite>,
) {
    let src = file.text.as_str();
    let code: Vec<&crate::lexer::Token> = file.code_tokens().collect();
    for i in 0..code.len() {
        if code[i].text(src) != "(" || i == 0 {
            continue;
        }
        let prev = code[i - 1];
        if !matches!(
            prev.kind,
            crate::lexer::TokenKind::Ident | crate::lexer::TokenKind::RawIdent
        ) {
            continue;
        }
        let Some(item_idx) = parser::enclosing_fn(&pf.fns, i) else {
            continue;
        };
        let caller = fn_of_item[&item_idx];
        // Method call: `. name (`.
        if i >= 2 && code[i - 2].text(src) == "." {
            let name = prev.text(src).trim_start_matches("r#");
            if PRELUDE_METHODS.binary_search(&name).is_ok() {
                continue;
            }
            // Any workspace method with that name is a candidate, but only
            // in crates the caller's manifest can actually reach.
            let reach = reachable.get(&fns[caller].crate_ident);
            let mut targets: Vec<usize> = by_name
                .get(name)
                .into_iter()
                .flatten()
                .copied()
                .filter(|&t| fns[t].item.owner.is_some())
                .filter(|&t| match reach {
                    Some(r) => r.contains(&fns[t].crate_ident),
                    None => true,
                })
                .collect();
            targets.sort_unstable();
            if targets.is_empty() {
                continue; // external method, optimistically fact-free
            }
            sites.push(CallSite {
                caller,
                token_idx: i - 1,
                line: prev.line,
                col: prev.col,
                display: format!(".{name}"),
                callee: Callee::Fns(targets),
            });
            continue;
        }
        // Path or bare call: walk `ident (:: ident)*` backwards from `prev`.
        let mut segs: Vec<&str> = vec![prev.text(src)];
        let mut j = i - 1; // index of the first segment so far
        while j >= 3
            && code[j - 1].text(src) == ":"
            && code[j - 2].text(src) == ":"
            && matches!(
                code[j - 3].kind,
                crate::lexer::TokenKind::Ident | crate::lexer::TokenKind::RawIdent
            )
        {
            segs.push(code[j - 3].text(src));
            j -= 3;
        }
        segs.reverse();
        // `foo!(…)` is a macro, `fn foo(` a definition, `.foo(` handled
        // above, `use foo(` never happens; skip all non-call shapes.
        if j >= 1 {
            let before = code[j - 1].text(src);
            if before == "!" || before == "fn" || before == "." {
                continue;
            }
        }
        if segs.len() == 1 && NON_CALL_IDENTS.contains(&segs[0]) {
            continue;
        }
        let segs: Vec<String> = segs
            .iter()
            .map(|s| s.trim_start_matches("r#").to_owned())
            .collect();
        let caller_node = &fns[caller];
        match resolve_path(&segs, caller_node, pf, fns, by_name, crate_idents) {
            Resolution::External => {}
            Resolution::Fns(targets) => sites.push(CallSite {
                caller,
                token_idx: i - 1,
                line: prev.line,
                col: prev.col,
                display: segs.join("::"),
                callee: Callee::Fns(targets),
            }),
            Resolution::Unresolved(path) => sites.push(CallSite {
                caller,
                token_idx: i - 1,
                line: prev.line,
                col: prev.col,
                display: segs.join("::"),
                callee: Callee::Unresolved(path),
            }),
        }
    }
}

enum Resolution {
    /// Outside the workspace (std, vendored, locals, closures).
    External,
    /// Resolved workspace functions (sorted).
    Fns(Vec<usize>),
    /// Workspace-rooted but unmatched: pessimistic.
    Unresolved(String),
}

/// Resolves a (possibly `use`-aliased) call path seen inside `caller`.
fn resolve_path(
    segs: &[String],
    caller: &FnNode,
    pf: &ParsedFile,
    fns: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    crate_idents: &[String],
) -> Resolution {
    // Expand the leading segment through the file's imports.
    let mut path: Vec<String> = Vec::new();
    if let Some(u) = pf
        .uses
        .iter()
        .find(|u| !u.glob && !u.alias.is_empty() && u.alias == segs[0])
    {
        path.extend(u.path.iter().cloned());
        path.extend(segs[1..].iter().cloned());
    } else {
        path.extend(segs.iter().cloned());
    }
    // Normalize workspace-internal roots to the caller's crate ident.
    let mut in_crate = false;
    while matches!(
        path.first().map(String::as_str),
        Some("crate" | "self" | "super")
    ) {
        path.remove(0);
        in_crate = true;
    }
    if path.is_empty() {
        return Resolution::External;
    }
    // A final segment with an uppercase initial is a tuple-struct or
    // enum-variant constructor, a type, or an associated const —
    // `Value::Int(3)` is data, not a call. Workspace `fn`s are snake_case,
    // so nothing resolvable is lost.
    if path
        .last()
        .is_some_and(|s| s.chars().next().is_some_and(char::is_uppercase))
    {
        return Resolution::External;
    }
    let root = path[0].clone();
    let display = path.join("::");
    if !in_crate {
        if EXTERNAL_ROOTS.contains(&root.as_str()) {
            return Resolution::External;
        }
        if crate_idents.contains(&root) {
            // Cross-crate (or explicit own-crate) path.
            let target_crate = root;
            let tail = &path[1..];
            if tail.is_empty() {
                return Resolution::External; // bare crate name is not a call
            }
            return resolve_in_crate(&target_crate, tail, fns, &display);
        }
        if root == "Self" {
            let tail: Vec<String> = {
                let mut t = vec![caller.owner_or_self()];
                t.extend(path[1..].iter().cloned());
                t
            };
            return resolve_in_crate(&caller.crate_ident, &tail, fns, &display);
        }
        if path.len() == 1 {
            // Bare call: same crate, same module, free function — otherwise
            // a local closure/function pointer (external).
            let name = path[0].as_str();
            let mut targets: Vec<usize> = by_name
                .get(name)
                .into_iter()
                .flatten()
                .copied()
                .filter(|&t| {
                    fns[t].crate_ident == caller.crate_ident
                        && fns[t].item.owner.is_none()
                        && fns[t].module == caller.module
                })
                .collect();
            targets.sort_unstable();
            if targets.is_empty() {
                return Resolution::External;
            }
            return Resolution::Fns(targets);
        }
        // Uppercase root: a type in the caller's crate (`Registry::new`) or
        // anywhere in the workspace; lowercase: a sibling module.
        if root.chars().next().is_some_and(char::is_uppercase) {
            let name = path.last().cloned().unwrap_or_default();
            let mut targets: Vec<usize> = (0..fns.len())
                .filter(|&t| {
                    fns[t].item.name == name
                        && fns[t].item.owner.as_deref() == Some(root.as_str())
                        && fns[t].crate_ident == caller.crate_ident
                })
                .collect();
            if targets.is_empty() {
                targets = (0..fns.len())
                    .filter(|&t| {
                        fns[t].item.name == name
                            && fns[t].item.owner.as_deref() == Some(root.as_str())
                    })
                    .collect();
            }
            if targets.is_empty() {
                return Resolution::External; // std/vendored type
            }
            return Resolution::Fns(targets);
        }
        // Lowercase multi-segment rooted at neither a crate nor an import:
        // try it as a module path in the caller's crate.
        return resolve_in_crate(&caller.crate_ident, &path, fns, &display);
    }
    resolve_in_crate(&caller.crate_ident, &path, fns, &display)
}

impl FnNode {
    fn owner_or_self(&self) -> String {
        self.item.owner.clone().unwrap_or_else(|| "Self".to_owned())
    }
}

/// Suffix-matches `tail` against the functions of `crate_ident`: the last
/// segment is the function name; an uppercase second-to-last segment must
/// match the impl owner, any remaining lowercase segments must be a
/// suffix-compatible module path. No match ⇒ pessimistic.
fn resolve_in_crate(
    crate_ident: &str,
    tail: &[String],
    fns: &[FnNode],
    display: &str,
) -> Resolution {
    let Some(name) = tail.last() else {
        return Resolution::External;
    };
    let owner = if tail.len() >= 2 {
        let prev = &tail[tail.len() - 2];
        if prev.chars().next().is_some_and(char::is_uppercase) {
            Some(prev.as_str())
        } else {
            None
        }
    } else {
        None
    };
    let mods: &[String] = match owner {
        Some(_) => &tail[..tail.len() - 2],
        None => &tail[..tail.len() - 1],
    };
    let targets: Vec<usize> = (0..fns.len())
        .filter(|&t| {
            let f = &fns[t];
            f.crate_ident == crate_ident
                && f.item.name == *name
                && match owner {
                    Some(o) => f.item.owner.as_deref() == Some(o),
                    None => f.item.owner.is_none(),
                }
                && mods.iter().all(|m| f.module.iter().any(|fm| fm == m))
        })
        .collect();
    if targets.is_empty() {
        // A `Self::name` fallback across owners: method with that name in
        // the crate (the owner segment may be a type alias we can't see).
        let loose: Vec<usize> = (0..fns.len())
            .filter(|&t| fns[t].crate_ident == crate_ident && fns[t].item.name == *name)
            .collect();
        if loose.is_empty() {
            return Resolution::Unresolved(display.to_owned());
        }
        return Resolution::Fns(loose);
    }
    Resolution::Fns(targets)
}

/// True when the file is test-only from the graph's point of view.
pub fn is_test_fn(graph: &CallGraph, ws: &Workspace, f: usize) -> bool {
    let node = &graph.fns[f];
    node.item.in_test || ws.files[node.file].role == FileRole::Test
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::{Manifest, Workspace};
    use std::path::PathBuf;

    fn ws(files: &[(&str, &str)], manifests: &[(&str, &str)]) -> Workspace {
        let mut files: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::parse(p, (*s).to_owned()))
            .collect();
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        let mut manifests: Vec<Manifest> = manifests
            .iter()
            .map(|(p, t)| Manifest::parse(p, t))
            .collect();
        manifests.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Workspace {
            root: PathBuf::from("/nonexistent"),
            files,
            manifests,
        }
    }

    fn manifest(dir: &str, name: &str) -> (String, String) {
        (
            format!("{dir}/Cargo.toml"),
            format!("[package]\nname = \"{name}\"\n"),
        )
    }

    fn two_crate_ws() -> Workspace {
        let (am_p, mut am_t) = manifest("crates/alpha", "mp-alpha");
        am_t.push_str("\n[dependencies]\nmp-beta = { path = \"../beta\" }\n");
        let (bm_p, bm_t) = manifest("crates/beta", "mp-beta");
        ws(
            &[
                (
                    "crates/alpha/src/lib.rs",
                    "use mp_beta::helper::boom;\npub fn caller() { boom(); }\npub fn cross() { mp_beta::helper::boom(); }\npub fn method_call(r: &mp_beta::Reg) { r.record(1); }\n",
                ),
                (
                    "crates/beta/src/helper.rs",
                    "pub fn boom() { inner(); }\nfn inner() {}\n",
                ),
                (
                    "crates/beta/src/lib.rs",
                    "pub mod helper;\npub struct Reg;\nimpl Reg {\n    pub fn record(&self, v: u64) { helper::boom(); }\n}\n",
                ),
            ],
            &[(&am_p, &am_t), (&bm_p, &bm_t)],
        )
    }

    fn find_fn(g: &CallGraph, qual: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.qual == qual)
            .unwrap_or_else(|| {
                panic!(
                    "no fn {qual}; have {:?}",
                    g.fns.iter().map(|f| &f.qual).collect::<Vec<_>>()
                )
            })
    }

    fn callees_of_fn(g: &CallGraph, caller: usize) -> Vec<String> {
        let mut out = Vec::new();
        for &si in &g.sites_by_caller[caller] {
            match &g.sites[si].callee {
                Callee::Fns(ts) => out.extend(ts.iter().map(|&t| g.fns[t].qual.clone())),
                Callee::Unresolved(p) => out.push(format!("?{p}")),
            }
        }
        out
    }

    #[test]
    fn use_import_resolves_cross_crate() {
        let g = CallGraph::build(&two_crate_ws());
        let caller = find_fn(&g, "mp_alpha::caller");
        assert_eq!(callees_of_fn(&g, caller), vec!["mp_beta::helper::boom"]);
    }

    #[test]
    fn full_path_resolves_cross_crate() {
        let g = CallGraph::build(&two_crate_ws());
        let caller = find_fn(&g, "mp_alpha::cross");
        assert_eq!(callees_of_fn(&g, caller), vec!["mp_beta::helper::boom"]);
    }

    #[test]
    fn method_call_links_to_workspace_impls() {
        let g = CallGraph::build(&two_crate_ws());
        let caller = find_fn(&g, "mp_alpha::method_call");
        assert_eq!(callees_of_fn(&g, caller), vec!["mp_beta::Reg::record"]);
    }

    #[test]
    fn method_fan_out_respects_manifest_deps() {
        // mp-beta does not depend on mp-alpha, so a `.probe()` call in beta
        // cannot land on alpha's `probe` method: it stays external.
        let (am_p, mut am_t) = manifest("crates/alpha", "mp-alpha");
        am_t.push_str("\n[dependencies]\nmp-beta = { path = \"../beta\" }\n");
        let (bm_p, bm_t) = manifest("crates/beta", "mp-beta");
        let g = CallGraph::build(&ws(
            &[
                (
                    "crates/alpha/src/lib.rs",
                    "pub struct Probe;\nimpl Probe {\n    pub fn probe(&self) {}\n}\n",
                ),
                (
                    "crates/beta/src/lib.rs",
                    "pub fn uses(x: &dyn std::fmt::Debug) { x.probe(); }\n",
                ),
            ],
            &[(&am_p, &am_t), (&bm_p, &bm_t)],
        ));
        let caller = find_fn(&g, "mp_beta::uses");
        assert_eq!(callees_of_fn(&g, caller), Vec::<String>::new());
    }

    #[test]
    fn module_local_bare_call_resolves() {
        let g = CallGraph::build(&two_crate_ws());
        let boom = find_fn(&g, "mp_beta::helper::boom");
        assert_eq!(callees_of_fn(&g, boom), vec!["mp_beta::helper::inner"]);
    }

    #[test]
    fn sibling_module_path_resolves_in_crate() {
        let g = CallGraph::build(&two_crate_ws());
        let record = find_fn(&g, "mp_beta::Reg::record");
        assert_eq!(callees_of_fn(&g, record), vec!["mp_beta::helper::boom"]);
    }

    #[test]
    fn prelude_methods_and_std_are_external() {
        let (m_p, m_t) = manifest("crates/alpha", "mp-alpha");
        let g = CallGraph::build(&ws(
            &[(
                "crates/alpha/src/lib.rs",
                "pub fn f(v: Vec<u8>) -> usize { let n = v.len(); std::mem::drop(v); n.max(3) }\n",
            )],
            &[(&m_p, &m_t)],
        ));
        let f = find_fn(&g, "mp_alpha::f");
        assert!(callees_of_fn(&g, f).is_empty());
    }

    #[test]
    fn unresolved_workspace_path_is_pessimistic() {
        let (m_p, m_t) = manifest("crates/alpha", "mp-alpha");
        let g = CallGraph::build(&ws(
            &[(
                "crates/alpha/src/lib.rs",
                "pub fn f() { crate::missing::ghost(); }\n",
            )],
            &[(&m_p, &m_t)],
        ));
        let f = find_fn(&g, "mp_alpha::f");
        assert_eq!(callees_of_fn(&g, f), vec!["?missing::ghost"]);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let (m_p, m_t) = manifest("crates/alpha", "mp-alpha");
        let g = CallGraph::build(&ws(
            &[(
                "crates/alpha/src/lib.rs",
                "pub fn f(x: Option<u8>) -> String { if x.is_some() { return format!(\"y\"); } String::new() }\n",
            )],
            &[(&m_p, &m_t)],
        ));
        let f = find_fn(&g, "mp_alpha::f");
        assert!(callees_of_fn(&g, f).is_empty());
    }

    #[test]
    fn file_module_paths() {
        assert_eq!(
            file_module("crates/observe/src/lib.rs"),
            Vec::<String>::new()
        );
        assert_eq!(
            file_module("crates/observe/src/recorder.rs"),
            vec!["recorder"]
        );
        assert_eq!(
            file_module("crates/bench/src/bin/table3.rs"),
            vec!["table3"]
        );
        assert_eq!(file_module("tests/cli.rs"), Vec::<String>::new());
    }

    #[test]
    fn self_path_resolves_to_owner() {
        let (m_p, m_t) = manifest("crates/alpha", "mp-alpha");
        let g = CallGraph::build(&ws(
            &[(
                "crates/alpha/src/lib.rs",
                "pub struct S;\nimpl S {\n    pub fn a(&self) { Self::b(); }\n    pub fn b() {}\n}\n",
            )],
            &[(&m_p, &m_t)],
        ));
        let a = find_fn(&g, "mp_alpha::S::a");
        assert_eq!(callees_of_fn(&g, a), vec!["mp_alpha::S::b"]);
    }

    #[test]
    fn prelude_list_is_sorted_for_binary_search() {
        let mut sorted = PRELUDE_METHODS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, PRELUDE_METHODS);
    }
}
