//! Meta-lints: the suppression mechanism itself is audited (a suppression
//! is a debt record, and debt needs a reason), and files that defeat the
//! lexer are surfaced instead of silently half-scanned.

use super::{Context, Lint};
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;

/// `lexical-integrity`: a token the lexer could not terminate (runaway
/// string/comment) means the rest of the file escaped every other pass.
pub struct LexicalIntegrity;

impl Lint for LexicalIntegrity {
    fn name(&self) -> &'static str {
        "lexical-integrity"
    }

    fn description(&self) -> &'static str {
        "files must lex cleanly; an unterminated string or comment would hide code from the other passes"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        for file in &cx.ws.files {
            for t in &file.tokens {
                if t.kind == TokenKind::Unterminated {
                    out.push(Diagnostic::new(
                        self.name(),
                        &file.rel_path,
                        t.line,
                        t.col,
                        "unterminated string or comment; the remainder of this file was not analyzed",
                    ));
                }
            }
        }
    }
}

/// `suppression`: every `// lint: allow(…)` must parse, carry a non-empty
/// reason, and actually suppress something. Must run **after** the lexical
/// passes — it reads their usage bookkeeping.
pub struct SuppressionHygiene;

impl Lint for SuppressionHygiene {
    fn name(&self) -> &'static str {
        "suppression"
    }

    fn description(&self) -> &'static str {
        "lint suppressions must parse, carry a reason=\"…\" justification, and match a real violation"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        for file in &cx.ws.files {
            let used = file.used.borrow();
            for (i, s) in file.suppressions.iter().enumerate() {
                if let Some(err) = &s.malformed {
                    out.push(Diagnostic::new(
                        self.name(),
                        &file.rel_path,
                        s.line,
                        s.col,
                        format!("malformed suppression: {err}"),
                    ));
                    continue;
                }
                if s.reason.is_none() {
                    out.push(Diagnostic::new(
                        self.name(),
                        &file.rel_path,
                        s.line,
                        s.col,
                        format!(
                            "suppression of `{}` has no reason; write `reason=\"…\"` explaining why it is safe",
                            s.rules.join(", ")
                        ),
                    ));
                }
                if !used[i] {
                    out.push(Diagnostic::new(
                        self.name(),
                        &file.rel_path,
                        s.line,
                        s.col,
                        format!(
                            "unused suppression of `{}`; nothing on the covered lines violates it — delete the comment",
                            s.rules.join(", ")
                        ),
                    ));
                }
            }
        }
    }
}
