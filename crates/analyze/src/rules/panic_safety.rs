//! Panic-safety lints: library code that parses wire messages, CSV input
//! or untrusted metadata must fail with typed errors, never by unwinding.

use super::{
    code_tokens, is_literal_index, matches_at, scan_token_seqs, Context, Lint, TestPolicy, TokenSeq,
};
use crate::diagnostics::Diagnostic;
use crate::source::FileRole;

pub(crate) const PANIC_SEQS: &[TokenSeq] = &[
    TokenSeq {
        seq: &[".", "unwrap", "("],
        message: "`unwrap()` panics on malformed input; return a typed error (or suppress with a reason if infallible)",
    },
    TokenSeq {
        seq: &[".", "expect", "("],
        message: "`expect()` panics on malformed input; return a typed error (or suppress with a reason if infallible)",
    },
    TokenSeq {
        seq: &["panic", "!"],
        message: "`panic!` unwinds across the protocol boundary; return a typed error",
    },
    TokenSeq {
        seq: &["unreachable", "!"],
        message: "`unreachable!` is a panic in disguise; prove it with types or suppress with a reason",
    },
    TokenSeq {
        seq: &["todo", "!"],
        message: "`todo!` must not ship in library code",
    },
    TokenSeq {
        seq: &["unimplemented", "!"],
        message: "`unimplemented!` must not ship in library code",
    },
];

/// `no-panic`: no `unwrap`/`expect`/panic-family macros in non-test library
/// code of the scoped crates (`mp-relation`, `mp-federated`, `mp-core`).
/// Genuinely-infallible cases carry a reasoned suppression instead.
pub struct NoPanic;

impl Lint for NoPanic {
    fn name(&self) -> &'static str {
        "no-panic"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/unreachable!/todo! in non-test library code; return typed errors"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        scan_token_seqs(
            self.name(),
            PANIC_SEQS,
            TestPolicy::ExemptTests,
            cx.ws,
            cx.config,
            out,
        );
    }
}

/// `fuzzed-decoder-no-panic`: the decoders mp-fuzz drives with untrusted
/// bytes (CSV ingest, exchange-package JSON, wire envelopes) must be
/// panic-free outright. Unlike [`NoPanic`], in-source suppressions are
/// *not* honoured in this scope — a reasoned `allow` is still a reachable
/// panic to the fuzzer, so the only way to pass is to return a typed
/// error.
pub struct FuzzedDecoderNoPanic;

impl Lint for FuzzedDecoderNoPanic {
    fn name(&self) -> &'static str {
        "fuzzed-decoder-no-panic"
    }

    fn description(&self) -> &'static str {
        "fuzzed decoder modules must return typed errors, never panic; suppressions are not honoured"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        let scope = cx.config.scope(self.name());
        for file in &cx.ws.files {
            if !scope.applies_to(&file.rel_path) || file.role == FileRole::Test {
                continue;
            }
            let code = code_tokens(file);
            for i in 0..code.len() {
                for pattern in PANIC_SEQS {
                    if !matches_at(&code, i, pattern.seq, &file.text) {
                        continue;
                    }
                    let tok = code[i];
                    if file.in_test_region(tok.start) {
                        continue;
                    }
                    out.push(Diagnostic::new(
                        self.name(),
                        &file.rel_path,
                        tok.line,
                        tok.col,
                        format!(
                            "panic site on the fuzzing surface (no suppressions accepted here): {}",
                            pattern.message
                        ),
                    ));
                }
            }
        }
    }
}

/// `no-literal-index`: `xs[0]` on a slice is `unwrap()` in disguise — the
/// subscript panics exactly like the method would. Constant subscripts in
/// scoped library code need either a shape-checked accessor (`first()`,
/// `get(…)`, destructuring) or a reasoned suppression for fixed-arity data.
pub struct NoLiteralIndex;

impl Lint for NoLiteralIndex {
    fn name(&self) -> &'static str {
        "no-literal-index"
    }

    fn description(&self) -> &'static str {
        "constant subscripts like xs[0] panic out of bounds; use get()/first()/destructuring or suppress with a reason"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        let scope = cx.config.scope(self.name());
        for file in &cx.ws.files {
            if !scope.applies_to(&file.rel_path) || file.role == FileRole::Test {
                continue;
            }
            let code = code_tokens(file);
            for i in 0..code.len() {
                if !is_literal_index(&code, i, &file.text) {
                    continue;
                }
                let tok = code[i];
                if file.in_test_region(tok.start) || file.suppressed(self.name(), tok.line) {
                    continue;
                }
                out.push(Diagnostic::new(
                    self.name(),
                    &file.rel_path,
                    tok.line,
                    tok.col,
                    format!(
                        "constant subscript `[{}]` panics out of bounds; use get()/first()/destructuring or suppress with a reason",
                        code[i + 1].text(&file.text)
                    ),
                ));
            }
        }
    }
}
