//! Crate-layering lints: the dependency direction of the workspace is an
//! architectural invariant — observability at the bottom, the relational
//! substrate below discovery/federated, `unsafe` quarantined in `vendor/`.

use super::{scan_token_seqs, Context, Lint, TestPolicy, TokenSeq};
use crate::diagnostics::Diagnostic;
use crate::workspace::Manifest;
use std::collections::{BTreeMap, BTreeSet};

/// `no-unsafe`: the `unsafe` keyword may not appear in first-party code
/// (`vendor/` is outside the scan set; `[workspace.lints]` additionally
/// denies `unsafe_code` at compile time — this pass keeps the gate even
/// for code hidden behind `cfg` combinations the build doesn't exercise).
pub struct NoUnsafe;

impl Lint for NoUnsafe {
    fn name(&self) -> &'static str {
        "no-unsafe"
    }

    fn description(&self) -> &'static str {
        "the `unsafe` keyword is only allowed under vendor/"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        const SEQS: &[TokenSeq] = &[TokenSeq {
            seq: &["unsafe"],
            message: "`unsafe` outside vendor/; first-party code is forbid(unsafe_code)",
        }];
        scan_token_seqs(self.name(), SEQS, TestPolicy::Strict, cx.ws, cx.config, out);
    }
}

/// `crate-layering`: dependency-direction constraints read from each
/// crate's `Cargo.toml` — isolated crates depend on nothing in-workspace,
/// forbidden edges are checked transitively, and the workspace graph must
/// stay acyclic.
pub struct CrateLayering;

impl Lint for CrateLayering {
    fn name(&self) -> &'static str {
        "crate-layering"
    }

    fn description(&self) -> &'static str {
        "Cargo.toml dependency direction: isolated crates stay leaf-free, forbidden edges checked transitively, no cycles"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        // Workspace crate name -> its manifest.
        let by_name: BTreeMap<&str, &Manifest> = cx
            .ws
            .manifests
            .iter()
            .filter_map(|m| m.package_name.as_deref().map(|n| (n, m)))
            .collect();

        // Normal-dependency adjacency restricted to in-workspace crates.
        let graph: BTreeMap<&str, Vec<&str>> = by_name
            .iter()
            .map(|(name, m)| {
                let deps: Vec<&str> = m
                    .deps
                    .iter()
                    .filter(|d| !d.dev && by_name.contains_key(d.name.as_str()))
                    .map(|d| d.name.as_str())
                    .collect();
                (*name, deps)
            })
            .collect();

        // Isolated crates: no in-workspace dependencies at all (dev
        // included — a dev-dependency still links the test binary).
        for isolated in &cx.config.layering.isolated {
            let Some(m) = by_name.get(isolated.as_str()) else {
                continue;
            };
            for d in &m.deps {
                if by_name.contains_key(d.name.as_str()) && d.name.starts_with("mp-") {
                    out.push(Diagnostic::new(
                        self.name(),
                        &m.rel_path,
                        d.line,
                        1,
                        format!(
                            "`{isolated}` must not depend on in-workspace crates, but depends on `{}`",
                            d.name
                        ),
                    ));
                }
            }
        }

        // Forbidden edges, transitively: `from` must not reach `to`.
        for (from, to) in &cx.config.layering.forbidden {
            let Some(m) = by_name.get(from.as_str()) else {
                continue;
            };
            if let Some(via) = reaches(&graph, from, to) {
                let line = m
                    .deps
                    .iter()
                    .find(|d| d.name == via)
                    .map(|d| d.line)
                    .unwrap_or(1);
                let how = if via == *to {
                    "directly".to_owned()
                } else {
                    format!("via `{via}`")
                };
                out.push(Diagnostic::new(
                    self.name(),
                    &m.rel_path,
                    line,
                    1,
                    format!("forbidden dependency: `{from}` must not reach `{to}` ({how})"),
                ));
            }
        }

        // The whole workspace graph must be acyclic.
        for name in graph.keys() {
            if let Some(cycle) = find_cycle(&graph, name) {
                let m = by_name[name];
                out.push(Diagnostic::new(
                    self.name(),
                    &m.rel_path,
                    1,
                    1,
                    format!("dependency cycle: {}", cycle.join(" -> ")),
                ));
                // One report per cycle is enough; the sort/dedup in
                // `Report::finish` collapses repeats from other entry points
                // only if identical, so stop at the first.
                break;
            }
        }
    }
}

/// When `from` can reach `to`, returns the first-hop dependency of `from`
/// on that path (for a useful diagnostic line); `None` otherwise.
fn reaches<'g>(graph: &BTreeMap<&'g str, Vec<&'g str>>, from: &str, to: &str) -> Option<&'g str> {
    let start = graph.get(from)?;
    for &first_hop in start {
        let mut stack = vec![first_hop];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return Some(first_hop);
            }
            if seen.insert(n) {
                if let Some(next) = graph.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
    }
    None
}

/// Detects a cycle reachable from `start`; returns the cycle path.
fn find_cycle<'g>(graph: &BTreeMap<&'g str, Vec<&'g str>>, start: &'g str) -> Option<Vec<&'g str>> {
    fn visit<'g>(
        graph: &BTreeMap<&'g str, Vec<&'g str>>,
        node: &'g str,
        path: &mut Vec<&'g str>,
        done: &mut BTreeSet<&'g str>,
    ) -> Option<Vec<&'g str>> {
        if let Some(pos) = path.iter().position(|n| *n == node) {
            let mut cycle: Vec<&str> = path[pos..].to_vec();
            cycle.push(node);
            return Some(cycle);
        }
        if done.contains(node) {
            return None;
        }
        path.push(node);
        if let Some(next) = graph.get(node) {
            for &n in next {
                if let Some(c) = visit(graph, n, path, done) {
                    return Some(c);
                }
            }
        }
        path.pop();
        done.insert(node);
        None
    }
    visit(graph, start, &mut Vec::new(), &mut BTreeSet::new())
}
