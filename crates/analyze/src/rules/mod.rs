//! The lint registry: every invariant the workspace enforces, as an object
//! behind a common [`Lint`] trait, plus the token-pattern machinery shared
//! by the lexical passes.
//!
//! Lexical passes read files token-by-token; the interprocedural passes
//! ([`interprocedural`]) additionally consume the call graph and fact
//! database built once per run and handed to every lint via [`Context`].

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::diagnostics::{Diagnostic, Report};
use crate::facts::FactDb;
use crate::lexer::{Token, TokenKind};
use crate::source::{FileRole, SourceFile};
use crate::workspace::Workspace;

mod determinism;
pub mod interprocedural;
mod io_hygiene;
mod layering;
mod panic_safety;
mod suppression;

pub(crate) use panic_safety::PANIC_SEQS;

/// Everything a lint pass may consume: the workspace, its configuration,
/// and the interprocedural analysis results (call graph + fact database),
/// built exactly once per run.
pub struct Context<'a> {
    /// The scanned workspace.
    pub ws: &'a Workspace,
    /// Scoping and layering configuration.
    pub config: &'a Config,
    /// Item-level parse + call resolution over every file.
    pub graph: &'a CallGraph,
    /// Propagated facts: may-panic, determinism taint, lock summaries.
    pub facts: &'a FactDb,
}

/// One invariant check over the workspace.
pub trait Lint {
    /// Kebab-case rule name used in diagnostics, config and suppressions.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules` and docs.
    fn description(&self) -> &'static str;
    /// Appends violations to `out`.
    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>);
}

/// All lints, in execution order. `suppression` must stay last: it audits
/// which suppressions the other passes actually consumed.
pub fn registry() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(determinism::NoWallClock),
        Box::new(determinism::NoUnseededRng),
        Box::new(determinism::NoUnorderedIteration),
        Box::new(panic_safety::NoPanic),
        Box::new(panic_safety::NoLiteralIndex),
        Box::new(panic_safety::FuzzedDecoderNoPanic),
        Box::new(interprocedural::NoPanicReachable),
        Box::new(interprocedural::DeterminismTaint),
        Box::new(interprocedural::LockOrder),
        Box::new(io_hygiene::NoStdoutInLibs),
        Box::new(layering::NoUnsafe),
        Box::new(layering::CrateLayering),
        Box::new(suppression::LexicalIntegrity),
        Box::new(suppression::SuppressionHygiene),
    ]
}

/// Runs every registered lint over `ws` and returns the finished report.
/// Builds the call graph and fact database first — fact extraction also
/// performs the suppression-usage bookkeeping the hygiene pass audits.
pub fn run(ws: &Workspace, config: &Config) -> Report {
    let graph = CallGraph::build(ws);
    let facts = FactDb::build(ws, &graph, config);
    let cx = Context {
        ws,
        config,
        graph: &graph,
        facts: &facts,
    };
    let lints = registry();
    let mut diagnostics = Vec::new();
    for lint in &lints {
        lint.check(&cx, &mut diagnostics);
    }
    Report {
        diagnostics,
        files_scanned: ws.files.len(),
        manifests_scanned: ws.manifests.len(),
        rules: lints.iter().map(|l| l.name().to_owned()).collect(),
        facts: facts.counts.clone(),
    }
    .finish()
}

/// How a lexical rule treats test code and file roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TestPolicy {
    /// The rule also fires inside tests (determinism rules).
    Strict,
    /// `tests/`/`benches/`/`examples/` files, `#[cfg(test)]` and `#[test]`
    /// regions are exempt (panic-safety).
    ExemptTests,
    /// Tests as above, plus binary sources (`src/main.rs`, `src/bin/`) —
    /// binaries are *supposed* to print (I/O hygiene).
    ExemptTestsAndBins,
}

/// A fixed token-text sequence, e.g. `[".", "unwrap", "("]`.
pub(crate) struct TokenSeq {
    /// Texts of consecutive code tokens that constitute a violation.
    pub seq: &'static [&'static str],
    /// Message emitted at the first token of the match.
    pub message: &'static str,
}

/// Matches every configured [`TokenSeq`] against a file's code tokens,
/// honouring scope, test policy and suppressions.
pub(crate) fn scan_token_seqs(
    rule: &str,
    seqs: &[TokenSeq],
    policy: TestPolicy,
    ws: &Workspace,
    config: &Config,
    out: &mut Vec<Diagnostic>,
) {
    let scope = config.scope(rule);
    for file in &ws.files {
        if !scope.applies_to(&file.rel_path) {
            continue;
        }
        let exempt_tests = matches!(
            policy,
            TestPolicy::ExemptTests | TestPolicy::ExemptTestsAndBins
        );
        if exempt_tests && file.role == FileRole::Test {
            continue;
        }
        if policy == TestPolicy::ExemptTestsAndBins && file.role == FileRole::Bin {
            continue;
        }
        let code: Vec<&Token> = file.code_tokens().collect();
        for i in 0..code.len() {
            for pattern in seqs {
                if !matches_at(&code, i, pattern.seq, &file.text) {
                    continue;
                }
                let tok = code[i];
                if exempt_tests && file.in_test_region(tok.start) {
                    continue;
                }
                if file.suppressed(rule, tok.line) {
                    continue;
                }
                out.push(Diagnostic::new(
                    rule,
                    &file.rel_path,
                    tok.line,
                    tok.col,
                    pattern.message,
                ));
            }
        }
    }
}

pub(crate) fn matches_at(code: &[&Token], at: usize, seq: &[&str], src: &str) -> bool {
    // Puncts are lexed one byte at a time, so a `"::"` element in a
    // pattern stands for two consecutive `:` tokens.
    let mut k = at;
    for want in seq {
        let parts: &[&str] = if *want == "::" { &[":", ":"] } else { &[want] };
        for part in parts {
            match code.get(k) {
                Some(t) if t.text(src) == *part => k += 1,
                _ => return false,
            }
        }
    }
    true
}

/// Shared predicate: is this code token an integer-literal subscript like
/// `xs[0]` (an `unwrap` in disguise), as opposed to an array type/literal?
pub(crate) fn is_literal_index(code: &[&Token], at: usize, src: &str) -> bool {
    // Shape: expression-ish token, `[`, integer literal, `]`.
    if at == 0 || at + 3 > code.len() {
        return false;
    }
    let prev = code[at - 1];
    let prev_is_expr = match prev.kind {
        TokenKind::Ident | TokenKind::RawIdent => {
            // `foo[0]` indexes; `& [0]`-style has no preceding expression.
            !matches!(prev.text(src), "in" | "return" | "break" | "as" | "mut")
        }
        TokenKind::Punct => matches!(prev.text(src), ")" | "]"),
        _ => false,
    };
    prev_is_expr
        && code[at].text(src) == "["
        && code[at + 1].kind == TokenKind::NumberLit
        && code[at + 2].text(src) == "]"
}

/// Re-borrow helper: code tokens of `file` as a slice-friendly `Vec`.
pub(crate) fn code_tokens(file: &SourceFile) -> Vec<&Token> {
    file.code_tokens().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws_with(rel_path: &str, src: &str) -> Workspace {
        Workspace {
            root: PathBuf::from("/nonexistent"),
            files: vec![SourceFile::parse(rel_path, src.to_owned())],
            manifests: Vec::new(),
        }
    }

    fn rule_hits(rule_name: &str, ws: &Workspace) -> Vec<String> {
        let config = Config::workspace_default();
        let graph = CallGraph::build(ws);
        let facts = FactDb::build(ws, &graph, &config);
        let cx = Context {
            ws,
            config: &config,
            graph: &graph,
            facts: &facts,
        };
        let mut out = Vec::new();
        for lint in registry() {
            if lint.name() == rule_name {
                lint.check(&cx, &mut out);
            }
        }
        out.iter()
            .map(|d| format!("{}:{}", d.line, d.col))
            .collect()
    }

    #[test]
    fn path_seqs_match_across_split_coloncolon() {
        // `::` lexes as two `:` puncts; the `"::"` pattern element must
        // still land on `Instant::now()` and `thread::sleep()`.
        let ws = ws_with(
            "crates/demo/src/lib.rs",
            "pub fn f() { let _ = std::time::Instant::now(); std::thread::sleep(d); }\n",
        );
        assert_eq!(rule_hits("no-wall-clock", &ws), vec!["1:33", "1:54"]);
    }

    #[test]
    fn wall_clock_allowed_in_bench() {
        let ws = ws_with(
            "crates/bench/src/lib.rs",
            "pub fn f() { let _ = std::time::Instant::now(); }\n",
        );
        assert!(rule_hits("no-wall-clock", &ws).is_empty());
    }

    #[test]
    fn fuzzed_decoder_rule_ignores_suppressions() {
        // A reasoned suppression silences `no-panic` but not the fuzzing
        // surface rule: both unwraps below are flagged there.
        let src = "pub fn f(v: Option<u8>) -> u8 {\n    // lint: allow(no-panic) reason=\"demo\"\n    v.unwrap()\n}\npub fn g(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n";
        let ws = ws_with("crates/metadata/src/exchange.rs", src);
        assert_eq!(
            rule_hits("fuzzed-decoder-no-panic", &ws),
            vec!["3:6", "6:6"]
        );
        // Outside the scoped decoder files the rule stays silent.
        let ws = ws_with("crates/metadata/src/lib.rs", src);
        assert!(rule_hits("fuzzed-decoder-no-panic", &ws).is_empty());
    }

    #[test]
    fn unwrap_flagged_and_suppression_consumed() {
        let src = "pub fn f(v: Option<u8>) -> u8 {\n    // lint: allow(no-panic) reason=\"demo\"\n    v.unwrap()\n}\npub fn g(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n";
        let ws = ws_with("crates/core/src/lib.rs", src);
        assert_eq!(rule_hits("no-panic", &ws), vec!["6:6"]);
    }
}
