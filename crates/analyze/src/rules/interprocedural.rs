//! Interprocedural lints over the call graph and fact database:
//! panic-reachability, determinism taint and lock-order cycles.
//!
//! The lexical passes see one token window at a time; these passes see the
//! whole workspace. A `crates/relation` function that calls an
//! `mp-observe` helper which calls `.expect(…)` two hops down is invisible
//! to the lexical `no-panic` rule — the panic site is in an unscoped file —
//! but it still unwinds through the scoped caller. These rules close that
//! gap, and every diagnostic carries the full call chain down to the
//! originating fact so the finding is actionable without re-deriving it.

use super::{Context, Lint};
use crate::callgraph::{is_test_fn, Callee};
use crate::diagnostics::Diagnostic;
use crate::facts::{LOCK_EDGE_RULE, PANIC_EDGE_RULE, TAINT_EDGE_RULE};

/// `no-panic-reachable`: in the panic-free scopes (`no-panic` plus the
/// fuzzed decoder files), calls into functions that may *transitively*
/// panic are violations — wherever the panic site lives. An unresolved
/// workspace-rooted call is conservatively treated as may-panic. In
/// fuzzed-decoder files suppressions are not honoured, matching the
/// lexical `fuzzed-decoder-no-panic` contract.
pub struct NoPanicReachable;

impl Lint for NoPanicReachable {
    fn name(&self) -> &'static str {
        "no-panic-reachable"
    }

    fn description(&self) -> &'static str {
        "panic-free scopes must not call functions that transitively reach a panic site; diagnostics carry the call chain"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        let scope = cx.config.scope("no-panic");
        let fuzzed = cx.config.scope("fuzzed-decoder-no-panic");
        for f in 0..cx.graph.fns.len() {
            if is_test_fn(cx.graph, cx.ws, f) {
                continue;
            }
            let file = &cx.ws.files[cx.graph.fns[f].file];
            let in_fuzzed = fuzzed.applies_to(&file.rel_path);
            if !in_fuzzed && !scope.applies_to(&file.rel_path) {
                continue;
            }
            for &si in &cx.graph.sites_by_caller[f] {
                let site = &cx.graph.sites[si];
                if !in_fuzzed && file.suppressed(self.name(), site.line) {
                    continue;
                }
                match &site.callee {
                    Callee::Unresolved(path) => {
                        out.push(Diagnostic::new(
                            self.name(),
                            &file.rel_path,
                            site.line,
                            site.col,
                            format!(
                                "call to `{path}` does not resolve in the workspace and is conservatively treated as may-panic; resolve it or suppress with a reason"
                            ),
                        ));
                    }
                    Callee::Fns(targets) => {
                        // Best target: the one with the shortest distance to
                        // a panic site (ties broken by index — deterministic
                        // because targets are sorted).
                        let best = targets
                            .iter()
                            .filter_map(|&t| cx.facts.panic_dist[t].map(|d| (d, t)))
                            .min();
                        let Some((_, t)) = best else {
                            continue;
                        };
                        let chain = cx.facts.panic_chain(cx.ws, cx.graph, t);
                        out.push(
                            Diagnostic::new(
                                self.name(),
                                &file.rel_path,
                                site.line,
                                site.col,
                                format!(
                                    "call to `{}` may reach a panic site in `{}`; return a typed error along the chain or suppress this call with a reason",
                                    site.display, cx.graph.fns[t].qual
                                ),
                            )
                            .with_chain(chain),
                        );
                    }
                }
            }
        }
    }
}

/// `determinism-taint`: the serialization sinks (the
/// `no-unordered-iteration` scope: snapshots, report/matrix renderers, the
/// CLI's JSON plumbing) must not call functions that transitively observe
/// hash-iteration order, unseeded randomness or wall-clock time — any of
/// those would leak nondeterminism into report bytes even when the sink
/// file itself is lexically clean.
pub struct DeterminismTaint;

impl Lint for DeterminismTaint {
    fn name(&self) -> &'static str {
        "determinism-taint"
    }

    fn description(&self) -> &'static str {
        "serialization sinks must not call functions that transitively observe hash order, unseeded RNG or wall-clock time"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        let scope = cx.config.scope("no-unordered-iteration");
        for f in 0..cx.graph.fns.len() {
            if is_test_fn(cx.graph, cx.ws, f) {
                continue;
            }
            let file = &cx.ws.files[cx.graph.fns[f].file];
            if !scope.applies_to(&file.rel_path) {
                continue;
            }
            for &si in &cx.graph.sites_by_caller[f] {
                let site = &cx.graph.sites[si];
                if file.suppressed(self.name(), site.line) {
                    continue;
                }
                match &site.callee {
                    Callee::Unresolved(path) => {
                        out.push(Diagnostic::new(
                            self.name(),
                            &file.rel_path,
                            site.line,
                            site.col,
                            format!(
                                "call to `{path}` does not resolve in the workspace and is conservatively treated as nondeterministic; resolve it or suppress with a reason"
                            ),
                        ));
                    }
                    Callee::Fns(targets) => {
                        // Best (kind, target): shortest distance first, then
                        // kind order, then target index.
                        let best = targets
                            .iter()
                            .flat_map(|&t| {
                                cx.facts.taints_of(t).into_iter().filter_map(move |k| {
                                    cx.facts.taint_dist[t][k.idx()].map(|d| (d, k.idx(), k, t))
                                })
                            })
                            .min_by_key(|&(d, ki, _, t)| (d, ki, t));
                        let Some((_, _, kind, t)) = best else {
                            continue;
                        };
                        let all_kinds: Vec<&str> = {
                            let mut names: Vec<&str> = targets
                                .iter()
                                .flat_map(|&t| cx.facts.taints_of(t))
                                .map(|k| k.name())
                                .collect();
                            names.sort_unstable();
                            names.dedup();
                            names
                        };
                        let chain = cx.facts.taint_chain(cx.ws, cx.graph, t, kind);
                        out.push(
                            Diagnostic::new(
                                self.name(),
                                &file.rel_path,
                                site.line,
                                site.col,
                                format!(
                                    "call to `{}` taints this serialization path with {}; sort/seed/clock-inject along the chain or suppress with a reason",
                                    site.display,
                                    all_kinds.join(" + ")
                                ),
                            )
                            .with_chain(chain),
                        );
                    }
                }
            }
        }
    }
}

/// `lock-order`: joins each function's nested `Mutex`/`RwLock`
/// acquisitions with the transitive acquisitions of its callees; a cycle
/// in the resulting lock-order graph is a potential deadlock. One
/// diagnostic per strongly-connected component, anchored at the first
/// witnessing acquisition, with every edge of a representative cycle in
/// the chain.
pub struct LockOrder;

impl Lint for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "nested lock acquisitions (joined through callees) must form a consistent order; cycles are potential deadlocks"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        let scope = cx.config.scope(self.name());
        for cycle in cx.facts.lock_cycles() {
            // A reasoned allow on any witnessing line releases the whole
            // cycle — the suppression names the edge the author vouches for.
            let suppressed = cycle.iter().any(|e| {
                file_by_path(cx, &e.path).is_some_and(|file| file.suppressed(self.name(), e.line))
            });
            if suppressed {
                continue;
            }
            let Some(first) = cycle.first() else {
                continue;
            };
            if !scope.applies_to(&first.path) {
                continue;
            }
            let order: Vec<&str> = {
                let mut v: Vec<&str> = cycle.iter().map(|e| e.from.as_str()).collect();
                v.push(cycle[0].from.as_str());
                v
            };
            let chain = cycle
                .iter()
                .map(|e| format!("{}:{}: {}: {} -> {}", e.path, e.line, e.via, e.from, e.to))
                .collect();
            out.push(
                Diagnostic::new(
                    self.name(),
                    &first.path,
                    first.line,
                    1,
                    format!(
                        "potential deadlock: lock-order cycle {} (acquisition edges joined through callees)",
                        order.join(" -> ")
                    ),
                )
                .with_chain(chain),
            );
        }
    }
}

/// Looks a file up by workspace-relative path (files are sorted).
fn file_by_path<'a>(cx: &Context<'a>, rel_path: &str) -> Option<&'a crate::source::SourceFile> {
    cx.ws
        .files
        .binary_search_by(|f| f.rel_path.as_str().cmp(rel_path))
        .ok()
        .map(|i| &cx.ws.files[i])
}

const _: () = {
    // The rule names used for edge suppressions in `facts` must match the
    // registered lint names — a mismatch would silently break burn-down.
    assert!(str_eq(PANIC_EDGE_RULE, "no-panic-reachable"));
    assert!(str_eq(TAINT_EDGE_RULE, "determinism-taint"));
    assert!(str_eq(LOCK_EDGE_RULE, "lock-order"));
};

/// Const string equality (stable-compatible).
const fn str_eq(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.len() != b.len() {
        return false;
    }
    let mut i = 0;
    while i < a.len() {
        if a[i] != b[i] {
            return false;
        }
        i += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::config::Config;
    use crate::facts::FactDb;
    use crate::rules::registry;
    use crate::source::SourceFile;
    use crate::workspace::{Manifest, Workspace};
    use std::path::PathBuf;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let mut fs: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::parse(p, (*s).to_owned()))
            .collect();
        fs.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        let manifests = vec![
            Manifest::parse("crates/core/Cargo.toml", "[package]\nname = \"mp-core\"\n"),
            Manifest::parse(
                "crates/observe/Cargo.toml",
                "[package]\nname = \"mp-observe\"\n",
            ),
            Manifest::parse(
                "crates/relation/Cargo.toml",
                "[package]\nname = \"mp-relation\"\n",
            ),
        ];
        Workspace {
            root: PathBuf::from("/nonexistent"),
            files: fs,
            manifests,
        }
    }

    fn run_rule(rule: &str, ws: &Workspace) -> Vec<Diagnostic> {
        let config = Config::workspace_default();
        let graph = CallGraph::build(ws);
        let facts = FactDb::build(ws, &graph, &config);
        let cx = Context {
            ws,
            config: &config,
            graph: &graph,
            facts: &facts,
        };
        let mut out = Vec::new();
        for lint in registry() {
            if lint.name() == rule {
                lint.check(&cx, &mut out);
            }
        }
        out
    }

    #[test]
    fn indirect_panic_flagged_in_scope_with_chain() {
        // The motivating shape: a no-panic-scoped file calls an unscoped
        // helper whose panic site the lexical rule cannot see.
        let ws = ws(&[
            (
                "crates/core/src/lib.rs",
                "pub fn scoped() { mp_observe::helper(); }\n",
            ),
            (
                "crates/observe/src/lib.rs",
                "pub fn helper() { deep(); }\nfn deep() -> u8 { None::<u8>.expect(\"boom\") }\npub fn unscoped_caller() { helper(); }\n",
            ),
        ]);
        let out = run_rule("no-panic-reachable", &ws);
        assert_eq!(out.len(), 1, "{out:?}");
        let d = &out[0];
        assert_eq!(d.path, "crates/core/src/lib.rs");
        assert!(d.message.contains("mp_observe::helper"));
        assert_eq!(d.chain.len(), 3, "{:?}", d.chain);
        assert!(d.chain[0].contains("mp_observe::helper"));
        assert!(d.chain[1].contains("mp_observe::deep"));
        assert!(d.chain[2].contains("panic site: `expect()`"));
    }

    #[test]
    fn call_site_suppression_honoured_except_in_fuzzed_files() {
        let caller = "pub fn scoped() {\n    // lint: allow(no-panic-reachable) reason=\"caller guarantees Some\"\n    mp_observe::helper();\n}\n";
        let helper = (
            "crates/observe/src/lib.rs",
            "pub fn helper() -> u8 { None::<u8>.expect(\"boom\") }\n",
        );
        let out = run_rule(
            "no-panic-reachable",
            &ws(&[("crates/core/src/lib.rs", caller), helper]),
        );
        assert!(out.is_empty(), "{out:?}");
        // The same suppression in a fuzzed-decoder file is ignored.
        let out = run_rule(
            "no-panic-reachable",
            &ws(&[("crates/relation/src/csv.rs", caller), helper]),
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn determinism_taint_reaches_across_modules() {
        // snapshot.rs is a serialization sink; the hash iteration lives in
        // an unscoped sibling file two hops away.
        let ws = ws(&[
            (
                "crates/observe/src/snapshot.rs",
                "pub fn render() -> Vec<u64> { crate::mid() }\n",
            ),
            (
                "crates/observe/src/lib.rs",
                "pub mod snapshot;\nuse std::collections::HashMap;\npub fn mid() -> Vec<u64> { unordered() }\nfn unordered() -> Vec<u64> {\n    let m: HashMap<u64, u64> = HashMap::new();\n    m.keys().copied().collect()\n}\n",
            ),
        ]);
        let out = run_rule("determinism-taint", &ws);
        assert_eq!(out.len(), 1, "{out:?}");
        let d = &out[0];
        assert_eq!(d.path, "crates/observe/src/snapshot.rs");
        assert!(d.message.contains("hash-order"), "{}", d.message);
        assert!(d.chain.last().expect("chain").contains("hash-order source"));
    }

    #[test]
    fn lock_order_cycle_reported_once_and_suppressible() {
        let cyclic = "use std::sync::Mutex;\npub struct S { a: Mutex<u8>, b: Mutex<u8> }\nimpl S {\n    pub fn ab(&self) { let _x = self.a.lock(); let _y = self.b.lock(); }\n    pub fn ba(&self) { let _y = self.b.lock(); let _x = self.a.lock(); }\n}\n";
        let out = run_rule("lock-order", &ws(&[("crates/core/src/lib.rs", cyclic)]));
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("potential deadlock"));
        assert_eq!(out[0].chain.len(), 2, "{:?}", out[0].chain);
        // An allow on one witnessing acquisition releases the cycle.
        let allowed = cyclic.replace(
            "    pub fn ba(&self) {",
            "    // lint: allow(lock-order) reason=\"ba only runs single-threaded at startup\"\n    pub fn ba(&self) {",
        );
        let out = run_rule("lock-order", &ws(&[("crates/core/src/lib.rs", &allowed)]));
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unresolved_call_in_scope_is_flagged() {
        let ws = ws(&[(
            "crates/core/src/lib.rs",
            "pub fn scoped() { crate::ghost::call(); }\n",
        )]);
        let out = run_rule("no-panic-reachable", &ws);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("does not resolve"));
    }
}
