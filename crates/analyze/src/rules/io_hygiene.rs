//! I/O hygiene: library crates compute, binaries print. A stray `println!`
//! in a library corrupts machine-read stdout (`--format json`, golden
//! snapshot comparisons) and bypasses the CLI's output discipline.
//! Binary sources (`src/main.rs`, `src/bin/`) are exempt by role; the
//! whole of `crates/bench` is additionally exempt via `allow_paths`.

use super::{scan_token_seqs, Context, Lint, TestPolicy, TokenSeq};
use crate::diagnostics::Diagnostic;

/// `no-stdout-in-libs`: no `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!`
/// in library crates; the CLI and bench binaries are exempt via config.
pub struct NoStdoutInLibs;

impl Lint for NoStdoutInLibs {
    fn name(&self) -> &'static str {
        "no-stdout-in-libs"
    }

    fn description(&self) -> &'static str {
        "library crates must not print (println!/eprintln!/print!/eprint!/dbg!); return data, let binaries print"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        const SEQS: &[TokenSeq] = &[
            TokenSeq {
                seq: &["println", "!"],
                message: "`println!` in a library crate; return the text and let the binary print",
            },
            TokenSeq {
                seq: &["eprintln", "!"],
                message: "`eprintln!` in a library crate; surface the condition as an error value",
            },
            TokenSeq {
                seq: &["print", "!"],
                message: "`print!` in a library crate; return the text and let the binary print",
            },
            TokenSeq {
                seq: &["eprint", "!"],
                message: "`eprint!` in a library crate; surface the condition as an error value",
            },
            TokenSeq {
                seq: &["dbg", "!"],
                message: "`dbg!` must not ship; remove the debugging aid",
            },
        ];
        scan_token_seqs(
            self.name(),
            SEQS,
            TestPolicy::ExemptTestsAndBins,
            cx.ws,
            cx.config,
            out,
        );
    }
}
