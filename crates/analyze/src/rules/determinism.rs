//! Determinism lints: the leakage tables and golden snapshots are only
//! byte-reproducible because nothing in the measurement path reads wall
//! time, unseeded entropy, or hash-iteration order.

use super::{scan_token_seqs, Context, Lint, TestPolicy, TokenSeq};
use crate::diagnostics::Diagnostic;

/// `no-wall-clock`: no `Instant::now`, `SystemTime` or `thread::sleep`
/// outside `crates/bench` — simulated time uses logical clocks
/// (`mp_observe::Clock`, transport ticks), never the host's.
pub struct NoWallClock;

impl Lint for NoWallClock {
    fn name(&self) -> &'static str {
        "no-wall-clock"
    }

    fn description(&self) -> &'static str {
        "wall-clock time (Instant::now, SystemTime, thread::sleep) is only allowed in crates/bench; use logical clocks"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        const SEQS: &[TokenSeq] = &[
            TokenSeq {
                seq: &["Instant", "::", "now"],
                message: "`Instant::now()` reads wall-clock time; use a logical clock (mp_observe::Clock / transport ticks)",
            },
            TokenSeq {
                seq: &["SystemTime"],
                message: "`SystemTime` reads wall-clock time; timestamps must come from logical clocks",
            },
            TokenSeq {
                seq: &["thread", "::", "sleep"],
                message: "`thread::sleep` couples behaviour to real time; model delays as transport ticks",
            },
        ];
        scan_token_seqs(self.name(), SEQS, TestPolicy::Strict, cx.ws, cx.config, out);
    }
}

/// `no-unseeded-rng`: every random stream must be reproducible from an
/// explicit seed, so OS-entropy constructors are banned workspace-wide.
pub struct NoUnseededRng;

impl Lint for NoUnseededRng {
    fn name(&self) -> &'static str {
        "no-unseeded-rng"
    }

    fn description(&self) -> &'static str {
        "randomness must be seeded (SeedableRng::seed_from_u64 etc.); OS entropy sources are banned"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        const SEQS: &[TokenSeq] = &[
            TokenSeq {
                seq: &["thread_rng"],
                message: "`thread_rng()` is OS-seeded and irreproducible; thread an explicit seeded StdRng through instead",
            },
            TokenSeq {
                seq: &["from_entropy"],
                message: "`from_entropy()` draws an OS seed; use `seed_from_u64` with a recorded seed",
            },
            TokenSeq {
                seq: &["OsRng"],
                message: "`OsRng` is irreproducible; use a seeded generator",
            },
            TokenSeq {
                seq: &["rand", "::", "random"],
                message: "`rand::random()` hides an OS-seeded generator; use a seeded StdRng",
            },
        ];
        scan_token_seqs(self.name(), SEQS, TestPolicy::Strict, cx.ws, cx.config, out);
    }
}

/// `no-unordered-iteration`: in the serialization paths (mp-observe
/// snapshots, the CLI's `--metrics-json` plumbing) hash collections are
/// banned outright — their iteration order would leak into report bytes.
/// Ordered containers (`BTreeMap`) or explicit sorting are the fix.
pub struct NoUnorderedIteration;

impl Lint for NoUnorderedIteration {
    fn name(&self) -> &'static str {
        "no-unordered-iteration"
    }

    fn description(&self) -> &'static str {
        "serialization paths may not use HashMap/HashSet: iteration order would leak into report bytes"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        const SEQS: &[TokenSeq] = &[
            TokenSeq {
                seq: &["HashMap"],
                message: "`HashMap` in a serialization path: iteration order is arbitrary; use BTreeMap or sort keys first",
            },
            TokenSeq {
                seq: &["HashSet"],
                message: "`HashSet` in a serialization path: iteration order is arbitrary; use BTreeSet or sort first",
            },
        ];
        scan_token_seqs(self.name(), SEQS, TestPolicy::Strict, cx.ws, cx.config, out);
    }
}
