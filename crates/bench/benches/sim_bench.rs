//! Fault-simulator benchmarks: VFL setup wall-clock as a function of the
//! injected fault rate. The companion CI binary (`sim_matrix`) runs the
//! full 32-seed invariant matrix and writes `BENCH_sim.json`; this bench
//! tracks the per-run cost of the simulator itself.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mp_federated::{
    simulate_setup, FaultPlan, MultiPartySession, Party, PerfectTransport, RetryConfig,
};
use mp_metadata::SharePolicy;
use std::hint::black_box;

fn session(rows: usize) -> MultiPartySession {
    let data = mp_datasets::fintech_scenario(rows, 42);
    let bank = Party::new("bank", data.bank.relation, 0, data.bank.dependencies).unwrap();
    let ecom = Party::new(
        "ecommerce",
        data.ecommerce.relation,
        0,
        data.ecommerce.dependencies,
    )
    .unwrap();
    MultiPartySession::new(vec![bank, ecom], 0xF1A7)
}

fn policies() -> Vec<SharePolicy> {
    vec![SharePolicy::PAPER_RECOMMENDED, SharePolicy::FULL]
}

/// Setup wall-clock vs drop rate: retransmissions and back-off stretch
/// the virtual run, and this measures what that costs in real time.
fn bench_setup_vs_fault_rate(c: &mut Criterion) {
    let sess = session(120);
    let pols = policies();
    let retry = RetryConfig::default();
    let mut group = c.benchmark_group("sim_setup_vs_drop_rate");
    for drop_pct in [0u32, 10, 25, 40] {
        group.bench_with_input(
            BenchmarkId::from_parameter(drop_pct),
            &drop_pct,
            |b, &pct| {
                b.iter(|| {
                    let plan = FaultPlan {
                        drop_rate: f64::from(pct) / 100.0,
                        ..FaultPlan::fault_free(7)
                    };
                    simulate_setup(black_box(&sess), &pols, &plan, &retry)
                })
            },
        );
    }
    group.finish();
}

/// The simulator's overhead over the direct (non-transport) setup path:
/// perfect-transport simulation vs `MultiPartySession::run_setup`.
fn bench_sim_overhead(c: &mut Criterion) {
    let sess = session(120);
    let pols = policies();
    let retry = RetryConfig::default();
    let mut group = c.benchmark_group("sim_overhead");
    group.bench_function("direct_setup", |b| {
        b.iter(|| black_box(&sess).run_setup(&pols).unwrap())
    });
    group.bench_function("perfect_transport", |b| {
        b.iter(|| {
            let mut t = PerfectTransport::new(2);
            black_box(&sess)
                .run_setup_over(&pols, &mut t, &retry)
                .unwrap()
        })
    });
    group.bench_function("fault_free_sim", |b| {
        b.iter(|| simulate_setup(black_box(&sess), &pols, &FaultPlan::fault_free(7), &retry))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700));
    targets = bench_setup_vs_fault_rate, bench_sim_overhead
);

fn main() {
    benches();
}
