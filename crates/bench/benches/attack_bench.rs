//! Attack-pipeline scaling benchmarks and the defense-layer ablation:
//! synthesis + measurement cost as N grows, with and without dependencies,
//! distributions and generalization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_core::{measure_all, run_attack, ExperimentConfig};
use mp_datasets::{all_classes_spec, echocardiogram, verified_dependencies};
use mp_federated::{align, bloom_candidate_rows, BloomFilter};
use mp_metadata::{DomainGeneralization, MetadataPackage};
use mp_synth::{Adversary, SynthConfig};
use std::hint::black_box;

fn bench_attack_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_scaling");
    for rows in [200usize, 2_000, 20_000] {
        let real = all_classes_spec(rows, 5).generate().unwrap();
        let pkg = MetadataPackage::describe("p", &real.relation, real.planted.clone()).unwrap();
        let adversary = Adversary::new(pkg);
        group.bench_function(BenchmarkId::new("synthesize_with_deps", rows), |b| {
            b.iter(|| {
                adversary
                    .synthesize(black_box(&SynthConfig::with_dependencies(rows, 1)))
                    .unwrap()
            })
        });
        let syn = adversary
            .synthesize(&SynthConfig::with_dependencies(rows, 1))
            .unwrap();
        group.bench_function(BenchmarkId::new("measure_all", rows), |b| {
            b.iter(|| measure_all(black_box(&real.relation), black_box(&syn), 1.0).unwrap())
        });
    }
    group.finish();
}

fn bench_full_rounds(c: &mut Criterion) {
    let real = echocardiogram();
    let pkg = MetadataPackage::describe("h", &real, verified_dependencies()).unwrap();
    let mut group = c.benchmark_group("attack_rounds_echocardiogram");
    for rounds in [1usize, 10] {
        let config = ExperimentConfig {
            rounds,
            base_seed: 1,
            epsilon: 0.0,
        };
        group.bench_function(BenchmarkId::from_parameter(rounds), |b| {
            b.iter(|| run_attack(black_box(&real), black_box(&pkg), true, &config).unwrap())
        });
    }
    group.finish();
}

fn bench_defense_layers(c: &mut Criterion) {
    let real = echocardiogram();
    let pkg = MetadataPackage::describe("h", &real, vec![]).unwrap();
    let mut group = c.benchmark_group("defense_layers");
    group.bench_function("generalize_package", |b| {
        let g = DomainGeneralization::default();
        b.iter(|| g.apply(black_box(&pkg), black_box(&real)).unwrap())
    });
    group.bench_function("k_anonymity_qi2", |b| {
        b.iter(|| mp_core::k_anonymity(black_box(&real), &[2, 7]).unwrap())
    });
    group.bench_function("bucketize_column", |b| {
        b.iter(|| mp_core::bucketize_column(black_box(&real), 2, 5.0).unwrap())
    });
    group.finish();
}

fn bench_psi_variants(c: &mut Criterion) {
    // Ablation: digest PSI (exact, linear communication) vs Bloom-filter
    // candidate generation (fixed communication, false positives).
    let data = mp_datasets::fintech_scenario(20_000, 3);
    let a = data.bank.relation.column_values(0).unwrap();
    let b = data.ecommerce.relation.column_values(0).unwrap();
    let mut group = c.benchmark_group("psi_variants");
    group.bench_function("digest_align", |bench| {
        bench.iter(|| align(black_box(&a), black_box(&b), 42))
    });
    group.bench_function("bloom_build_and_probe", |bench| {
        bench.iter(|| {
            let mut f = BloomFilter::with_capacity(a.len(), 4, 42);
            for id in &a {
                f.insert(id);
            }
            bloom_candidate_rows(&f, black_box(&b))
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    // Keep full-workspace bench runs fast: fewer samples and short
    // measurement windows; pass Criterion CLI flags to override.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700));
    targets = bench_attack_scaling,
    bench_full_rounds,
    bench_defense_layers,
    bench_psi_variants

);
criterion_main!(benches);
