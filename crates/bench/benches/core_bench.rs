//! Benchmarks of the paper's measurement and inference machinery:
//! leakage metrics, identifiability, FD closure/minimal cover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_core::{categorical_matches, identifiable_tuples, mse, tuple_matches};
use mp_datasets::{all_classes_spec, echocardiogram};
use mp_metadata::{AttrSet, Fd, FdSet};
use std::hint::black_box;

fn bench_leakage_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("leakage_measurement");
    for rows in [1_000usize, 20_000] {
        let a = all_classes_spec(rows, 1).generate().unwrap().relation;
        let b = all_classes_spec(rows, 2).generate().unwrap().relation;
        group.bench_function(BenchmarkId::new("categorical_matches", rows), |bench| {
            bench.iter(|| categorical_matches(black_box(&a), black_box(&b), 0).unwrap())
        });
        group.bench_function(BenchmarkId::new("mse", rows), |bench| {
            bench.iter(|| mse(black_box(&a), black_box(&b), 2).unwrap())
        });
        group.bench_function(BenchmarkId::new("tuple_matches", rows), |bench| {
            bench.iter(|| tuple_matches(black_box(&a), black_box(&b), &[0, 1, 2], 1.0).unwrap())
        });
    }
    group.finish();
}

fn bench_identifiability(c: &mut Criterion) {
    let rel = echocardiogram();
    let mut group = c.benchmark_group("identifiability");
    for size in [1usize, 2] {
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| identifiable_tuples(black_box(&rel), size).unwrap())
        });
    }
    group.finish();
}

fn bench_fd_inference(c: &mut Criterion) {
    // A chain + diamond FD set over 16 attributes.
    let mut fds = Vec::new();
    for i in 0..15usize {
        fds.push(Fd::new(i, i + 1));
    }
    fds.push(Fd::new(vec![0, 8], 15));
    fds.push(Fd::new(vec![3, 7], 12));
    let set = FdSet::from_fds(16, fds);

    let mut group = c.benchmark_group("fd_inference");
    group.bench_function("closure", |b| {
        b.iter(|| set.closure(black_box(&AttrSet::single(0))))
    });
    group.bench_function("minimal_cover", |b| {
        b.iter(|| black_box(&set).minimal_cover())
    });
    group.bench_function("candidate_keys", |b| {
        b.iter(|| black_box(&set).candidate_keys())
    });
    group.finish();
}

criterion_group!(
    name = benches;
    // Keep full-workspace bench runs fast: fewer samples and short
    // measurement windows; pass Criterion CLI flags to override.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700));
    targets = bench_leakage_measurement, bench_identifiability, bench_fd_inference
);
criterion_main!(benches);
