//! Discovery benchmarks and the DESIGN.md §6 ablations:
//! * TANE (stripped-partition) vs the naive exhaustive FD checker;
//! * PLI-based `g3` vs the naive pairwise `g3`;
//! * scaling of every RFD discovery pass with row count;
//! * typed-code vs boxed-`Value` PLI construction (§6b columnar layer).
//!
//! Besides the Criterion groups, the run writes `BENCH_columnar.json` at
//! the repo root — cached/uncached discovery wall-clock, warm cache hit
//! rate, and columnar-vs-boxed PLI build times — so the perf trajectory
//! of the columnar storage layer is tracked across PRs.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mp_datasets::all_classes_spec;
use mp_discovery::{
    discover_dds, discover_fds, discover_fds_naive, discover_fds_with, discover_nds, discover_ods,
    discover_ofds, DdConfig, DiscoveryContext, NdConfig, OdConfig, ParallelConfig, TaneConfig,
};
use mp_metadata::Fd;
use mp_relation::{Pli, Relation, Value};
use std::hint::black_box;

fn relation(rows: usize) -> Relation {
    all_classes_spec(rows, 7)
        .generate()
        .expect("generation")
        .relation
}

/// Reference `g3`: count violating tuples by comparing all pairs within
/// sorted groups — the quadratic method TANE's PLIs replace.
fn naive_g3(relation: &Relation, lhs: usize, rhs: usize) -> usize {
    let xs = relation.column_values(lhs).unwrap();
    let ys = relation.column_values(rhs).unwrap();
    let mut idx: Vec<usize> = (0..relation.n_rows()).collect();
    idx.sort_by(|&a, &b| xs[a].cmp(&xs[b]));
    let mut total = 0;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j < idx.len() && xs[idx[j]] == xs[idx[i]] {
            j += 1;
        }
        // Plurality of Y within the group.
        let mut group: Vec<&Value> = idx[i..j].iter().map(|&r| &ys[r]).collect();
        group.sort();
        let mut best = 0;
        let mut k = 0;
        while k < group.len() {
            let mut l = k;
            while l < group.len() && group[l] == group[k] {
                l += 1;
            }
            best = best.max(l - k);
            k = l;
        }
        total += (j - i) - best;
        i = j;
    }
    total
}

fn bench_tane_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_naive_vs_tane");
    for rows in [100usize, 400] {
        let rel = relation(rows);
        group.bench_with_input(BenchmarkId::new("tane_depth2", rows), &rel, |b, rel| {
            b.iter(|| {
                discover_fds(
                    black_box(rel),
                    &TaneConfig {
                        max_lhs: 2,
                        g3_threshold: 0.0,
                        ..TaneConfig::default()
                    },
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_depth2", rows), &rel, |b, rel| {
            b.iter(|| discover_fds_naive(black_box(rel), 2).unwrap())
        });
    }
    group.finish();
}

fn bench_g3_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("g3_methods");
    for rows in [200usize, 2000] {
        let rel = relation(rows);
        group.bench_with_input(BenchmarkId::new("pli", rows), &rel, |b, rel| {
            b.iter(|| Fd::new(0usize, 5).g3_error(black_box(rel)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("naive_sorted", rows), &rel, |b, rel| {
            b.iter(|| naive_g3(black_box(rel), 0, 5))
        });
    }
    group.finish();
}

fn bench_rfd_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rfd_discovery_scaling");
    for rows in [100usize, 500, 2000] {
        let rel = relation(rows);
        group.bench_with_input(BenchmarkId::new("ods", rows), &rel, |b, rel| {
            b.iter(|| discover_ods(black_box(rel), &OdConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("nds", rows), &rel, |b, rel| {
            b.iter(|| discover_nds(black_box(rel), &NdConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dds", rows), &rel, |b, rel| {
            b.iter(|| discover_dds(black_box(rel), &DdConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ofds", rows), &rel, |b, rel| {
            b.iter(|| discover_ofds(black_box(rel), true).unwrap())
        });
    }
    group.finish();
}

/// The tentpole ablation: cached vs uncached lattice discovery on a large
/// generated relation. With the shared [`DiscoveryContext`] each lattice
/// node pays exactly one `Pli` intersection, and repeated passes (the AFD
/// sweep, the profiler) are nearly free; the uncached baseline rebuilds
/// every partition per pass. The measured hit rate is printed alongside
/// the timings so bench logs double as cache-efficacy reports.
fn bench_cached_vs_uncached(c: &mut Criterion) {
    let rel = relation(10_000);
    let config = TaneConfig {
        max_lhs: 2,
        g3_threshold: 0.0,
        ..TaneConfig::default()
    };

    let mut group = c.benchmark_group("pli_cache_10k_rows");
    group.bench_function("uncached", |b| {
        let ctx = DiscoveryContext::new(&rel, ParallelConfig::uncached(0));
        b.iter(|| discover_fds_with(black_box(&ctx), &config).unwrap())
    });
    group.bench_function("cached", |b| {
        let ctx = DiscoveryContext::new(&rel, ParallelConfig::default());
        b.iter(|| discover_fds_with(black_box(&ctx), &config).unwrap())
    });
    group.finish();

    // Report the steady-state hit rate of a warm shared context: one cold
    // pass to populate, one warm pass measured.
    let ctx = DiscoveryContext::new(&rel, ParallelConfig::default());
    discover_fds_with(&ctx, &config).unwrap();
    let cold = ctx.cache_stats();
    discover_fds_with(&ctx, &config).unwrap();
    let warm = ctx.cache_stats();
    println!(
        "pli_cache_10k_rows: cold pass {cold}; after warm rerun {warm} \
         ({} extra misses on rerun)",
        warm.misses - cold.misses
    );
}

fn bench_pli_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("pli_intersection");
    for rows in [1_000usize, 10_000] {
        let rel = relation(rows);
        let a = Pli::from_typed(rel.column(0).unwrap());
        let b = Pli::from_typed(rel.column(4).unwrap());
        group.bench_function(BenchmarkId::from_parameter(rows), |bencher| {
            bencher.iter(|| black_box(&a).intersect(black_box(&b)))
        });
    }
    group.finish();
}

/// The §6b columnar ablation: building every single-column PLI of the
/// 10k-row relation from typed codes (dictionary/primitive grouping) vs
/// from boxed `Value` hashing — the cold-start cost every discovery pass
/// pays before the cache warms.
fn bench_columnar_pli_build(c: &mut Criterion) {
    let rel = relation(10_000);
    let boxed: Vec<Vec<Value>> = (0..rel.arity())
        .map(|a| rel.column_values(a).unwrap())
        .collect();

    let mut group = c.benchmark_group("pli_build_10k_rows");
    group.bench_function("boxed_value", |b| {
        b.iter(|| {
            boxed
                .iter()
                .map(|col| Pli::from_column(black_box(col)).cluster_count())
                .sum::<usize>()
        })
    });
    group.bench_function("typed_codes", |b| {
        b.iter(|| {
            (0..rel.arity())
                .map(|a| Pli::from_typed(black_box(rel.column(a).unwrap())).cluster_count())
                .sum::<usize>()
        })
    });
    group.finish();
}

/// Median wall-clock of `reps` runs of `f`, in milliseconds.
fn median_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("elapsed times are finite"));
    samples[samples.len() / 2]
}

/// Writes `BENCH_columnar.json` at the repo root: the machine-readable
/// record of the columnar layer's hot-path numbers for this commit.
fn emit_columnar_json() {
    let rel = relation(10_000);
    let config = TaneConfig {
        max_lhs: 2,
        g3_threshold: 0.0,
        ..TaneConfig::default()
    };

    // Cold/uncached discovery wall-clock: a fresh context per run.
    let uncached_ms = median_ms(3, || {
        let ctx = DiscoveryContext::new(&rel, ParallelConfig::uncached(0));
        discover_fds_with(&ctx, &config).unwrap();
    });
    let cached_cold_ms = median_ms(3, || {
        let ctx = DiscoveryContext::new(&rel, ParallelConfig::default());
        discover_fds_with(&ctx, &config).unwrap();
    });

    // Warm rerun on a shared context, plus its steady-state hit rate.
    let ctx = DiscoveryContext::new(&rel, ParallelConfig::default());
    discover_fds_with(&ctx, &config).unwrap();
    let cached_warm_ms = median_ms(3, || {
        discover_fds_with(&ctx, &config).unwrap();
    });
    let stats = ctx.cache_stats();

    // Columnar vs boxed PLI construction over every column.
    let boxed: Vec<Vec<Value>> = (0..rel.arity())
        .map(|a| rel.column_values(a).unwrap())
        .collect();
    let boxed_ms = median_ms(5, || {
        for col in &boxed {
            black_box(Pli::from_column(col));
        }
    });
    let typed_ms = median_ms(5, || {
        for a in 0..rel.arity() {
            black_box(Pli::from_typed(rel.column(a).unwrap()));
        }
    });

    let reprs: Vec<String> = (0..rel.arity())
        .map(|a| format!("\"{}\"", rel.column(a).unwrap().repr_name()))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"columnar\",\n  \"relation\": {{ \"rows\": {}, \"arity\": {}, \"column_reprs\": [{}] }},\n  \"pli_build\": {{ \"boxed_value_ms\": {:.3}, \"typed_codes_ms\": {:.3}, \"speedup\": {:.2} }},\n  \"discovery_10k_depth2\": {{ \"uncached_ms\": {:.3}, \"cached_cold_ms\": {:.3}, \"cached_warm_ms\": {:.3}, \"warm_hit_rate\": {:.4}, \"hits\": {}, \"misses\": {}, \"evictions\": {} }}\n}}\n",
        rel.n_rows(),
        rel.arity(),
        reprs.join(", "),
        boxed_ms,
        typed_ms,
        boxed_ms / typed_ms,
        uncached_ms,
        cached_cold_ms,
        cached_warm_ms,
        stats.hit_rate(),
        stats.hits,
        stats.misses,
        stats.evictions,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_columnar.json");
    std::fs::write(path, &json).expect("write BENCH_columnar.json");
    println!("wrote {path}:\n{json}");
}

criterion_group!(
    name = benches;
    // Keep full-workspace bench runs fast: fewer samples and short
    // measurement windows; pass Criterion CLI flags to override.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700));
    targets = bench_tane_vs_naive,
    bench_g3_methods,
    bench_rfd_scaling,
    bench_cached_vs_uncached,
    bench_pli_intersection,
    bench_columnar_pli_build

);

fn main() {
    benches();
    emit_columnar_json();
}
