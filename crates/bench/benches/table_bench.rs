//! Timing of the table regeneration cells (one per paper table) and of
//! the federated substrate — PSI and training.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_bench::tables;
use mp_core::ExperimentConfig;
use mp_datasets::{echocardiogram, fintech_scenario};
use mp_federated::{align, train, FeatureBlock, TrainConfig};
use mp_relation::Domain;
use std::hint::black_box;

fn bench_table4_cells(c: &mut Criterion) {
    let real = echocardiogram();
    let domains = Domain::infer_all(&real).unwrap();
    let config = ExperimentConfig {
        rounds: 10,
        base_seed: 1,
        epsilon: 0.0,
    };
    let mut group = c.benchmark_group("table4_cells");
    for (_, class) in tables::ROWS {
        group.bench_function(BenchmarkId::from_parameter(class), |b| {
            b.iter(|| {
                for &attr in &mp_datasets::CATEGORICAL_ATTRS {
                    black_box(tables::cell(&real, &domains, class, attr, &config));
                }
            })
        });
    }
    group.finish();
}

fn bench_table3_cells(c: &mut Criterion) {
    let real = echocardiogram();
    let domains = Domain::infer_all(&real).unwrap();
    let config = ExperimentConfig {
        rounds: 10,
        base_seed: 1,
        epsilon: 0.0,
    };
    let mut group = c.benchmark_group("table3_cells");
    for (_, class) in tables::ROWS {
        group.bench_function(BenchmarkId::from_parameter(class), |b| {
            b.iter(|| {
                for &attr in &mp_datasets::CONTINUOUS_ATTRS {
                    black_box(tables::cell(&real, &domains, class, attr, &config));
                }
            })
        });
    }
    group.finish();
}

fn bench_psi(c: &mut Criterion) {
    let mut group = c.benchmark_group("psi_align");
    for n in [1_000usize, 50_000] {
        let data = fintech_scenario(n, 5);
        let ids_a = data.bank.relation.column_values(0).unwrap();
        let ids_b = data.ecommerce.relation.column_values(0).unwrap();
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| align(black_box(&ids_a), black_box(&ids_b), 42))
        });
    }
    group.finish();
}

fn bench_federated_training(c: &mut Criterion) {
    let data = fintech_scenario(2_000, 9);
    let labels: Vec<f64> = data
        .bank
        .relation
        .column(5)
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap_or(0.0))
        .collect();
    let bank = FeatureBlock::encode(&data.bank.relation, &[1, 2, 3, 4]).unwrap();
    c.bench_function("federated_train_50_epochs", |b| {
        b.iter(|| {
            train(
                vec![black_box(bank.clone())],
                &labels,
                &TrainConfig {
                    epochs: 50,
                    lr: 0.5,
                    l2: 1e-4,
                },
            )
        })
    });
}

criterion_group!(
    name = benches;
    // Keep full-workspace bench runs fast: fewer samples and short
    // measurement windows; pass Criterion CLI flags to override.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700));
    targets = bench_table4_cells,
    bench_table3_cells,
    bench_psi,
    bench_federated_training

);
criterion_main!(benches);
