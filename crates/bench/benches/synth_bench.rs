//! Adversary-generation benchmarks, including the DESIGN.md §6 ablation:
//! graph-driven (topological) generation vs independent per-attribute
//! generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_datasets::{echocardiogram, verified_dependencies};
use mp_metadata::{MetadataPackage, OrderDirection};
use mp_relation::{Domain, Value};
use mp_synth::{Adversary, SynthConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_per_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator_throughput");
    let n = 10_000usize;
    let dom_cat = Domain::categorical((0i64..32).collect::<Vec<_>>());
    let dom_cont = Domain::continuous(0.0, 100.0);
    let lhs: Vec<Value> = (0..n).map(|i| Value::Int((i % 40) as i64)).collect();

    group.bench_function(BenchmarkId::new("uniform", n), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            mp_synth::sample_column(black_box(&dom_cat), n, &mut rng)
        })
    });
    group.bench_function(BenchmarkId::new("fd", n), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            mp_synth::generate_fd_column(&[black_box(&lhs)], &dom_cat, n, &mut rng)
        })
    });
    group.bench_function(BenchmarkId::new("afd", n), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            mp_synth::generate_afd_column(&[black_box(&lhs)], &dom_cat, 0.1, n, &mut rng)
        })
    });
    group.bench_function(BenchmarkId::new("nd", n), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            mp_synth::generate_nd_column(black_box(&lhs), &dom_cat, 4, n, &mut rng)
        })
    });
    group.bench_function(BenchmarkId::new("od", n), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            mp_synth::generate_od_column(
                black_box(&lhs),
                &dom_cont,
                OrderDirection::Ascending,
                n,
                &mut rng,
            )
        })
    });
    group.bench_function(BenchmarkId::new("dd", n), |b| {
        let xs: Vec<Value> = (0..n).map(|i| Value::Float(i as f64 * 0.01)).collect();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            mp_synth::generate_dd_column(black_box(&xs), &dom_cont, 0.5, 1.0, n, &mut rng)
        })
    });
    group.bench_function(BenchmarkId::new("ofd", n), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            mp_synth::generate_ofd_column(black_box(&lhs), &dom_cat, n, &mut rng)
        })
    });
    group.bench_function(BenchmarkId::new("sd", n), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            mp_synth::generate_sd_column(black_box(&lhs), &dom_cont, 0.1, 0.5, n, &mut rng)
        })
    });
    group.bench_function(BenchmarkId::new("cfd", n), |b| {
        let cfd = mp_metadata::ConditionalFd::constant(0, 3i64, 1, 7i64);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            mp_synth::generate_cfd_column(&cfd, &[black_box(&lhs)], &dom_cat, n, &mut rng)
        })
    });
    group.bench_function(BenchmarkId::new("distribution", n), |b| {
        let dist = mp_metadata::Distribution::Categorical(
            (0..16i64)
                .map(|i| (mp_relation::Value::Int(i), 1.0 / 16.0))
                .collect(),
        );
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            mp_synth::sample_column_from_distribution(black_box(&dist), n, &mut rng)
        })
    });
    group.finish();
}

fn bench_graph_vs_independent(c: &mut Criterion) {
    let real = echocardiogram();
    let pkg = MetadataPackage::describe("h", &real, verified_dependencies()).unwrap();
    let adversary = Adversary::new(pkg);
    let mut group = c.benchmark_group("graph_vs_independent");
    for n in [132usize, 4096] {
        group.bench_function(BenchmarkId::new("graph_driven", n), |b| {
            b.iter(|| {
                adversary
                    .synthesize(black_box(&SynthConfig::with_dependencies(n, 3)))
                    .unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("independent", n), |b| {
            b.iter(|| {
                adversary
                    .synthesize(black_box(&SynthConfig::random_baseline(n, 3)))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    // Keep full-workspace bench runs fast: fewer samples and short
    // measurement windows; pass Criterion CLI flags to override.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700));
    targets = bench_per_generator, bench_graph_vs_independent
);
criterion_main!(benches);
