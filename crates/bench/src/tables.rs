//! Regeneration of the paper's Table III and Table IV.
//!
//! Methodology (paper §V): for each evaluated attribute and each
//! dependency-class row, the dependent attribute is generated through the
//! inventory's dependency for that (class, attribute) pair — `NA` when the
//! class was not available, exactly the paper's NA pattern — averaged over
//! many seeded rounds. Validation metrics: exact index-aligned matches for
//! categorical attributes (Table IV), MSE for continuous ones (Table III).

use mp_core::{na_cell, run_cell, ExperimentConfig, TextTable};
use mp_datasets::{echocardiogram, paper_inventory, CATEGORICAL_ATTRS, CONTINUOUS_ATTRS};
use mp_relation::{Domain, Relation};

/// Rows of both tables, in the paper's order.
pub const ROWS: [(&str, &str); 4] = [
    ("Random Generation", "RAND"),
    ("Functional Dep", "FD"),
    ("Order Dep", "OD"),
    ("Numerical Dep", "ND"),
];

/// The paper's published Table IV (categorical positive matches), for
/// side-by-side display. `None` = NA.
pub const PAPER_TABLE4: [(&str, [Option<f64>; 4]); 4] = [
    (
        "Random Generation",
        [Some(44.0), Some(44.0), Some(33.0), Some(44.0)],
    ),
    (
        "Functional Dep",
        [Some(44.082), Some(43.954), Some(32.815), None],
    ),
    (
        "Order Dep",
        [Some(44.0), Some(32.0), Some(29.0), Some(47.0)],
    ),
    ("Numerical Dep", [Some(56.0), None, None, None]),
];

/// The paper's published Table III (continuous MSE). `None` = NA.
pub const PAPER_TABLE3: [(&str, [Option<f64>; 8]); 4] = [
    (
        "Random Generation",
        [
            Some(580.49),
            Some(1169.96),
            Some(0.43),
            Some(114.17),
            Some(10.14),
            Some(138.69),
            Some(1.71),
            Some(0.93),
        ],
    ),
    (
        "Functional Dep",
        [
            Some(580.25),
            Some(1172.4),
            Some(0.43),
            Some(114.0),
            Some(10.11),
            Some(138.6),
            Some(1.71),
            None,
        ],
    ),
    (
        "Order Dep",
        [
            Some(581.43),
            Some(1383.86),
            Some(0.24),
            Some(17.33),
            Some(9.63),
            Some(139.44),
            Some(1.0),
            Some(1.41),
        ],
    ),
    (
        "Numerical Dep",
        [Some(708.58), None, None, None, None, None, None, None],
    ),
];

/// One regenerated cell: measured value (`None` = NA) for a (row, attr).
pub fn cell(
    real: &Relation,
    domains: &[Domain],
    class: &str,
    attr: usize,
    config: &ExperimentConfig,
) -> Option<f64> {
    let inventory = paper_inventory();
    let dep = match class {
        "RAND" => None,
        c => Some(inventory.lookup(c, attr)?.clone()),
    };
    let summary = run_cell(real, domains, dep.as_ref(), attr, config).ok()?;
    match real.schema().attribute(attr).ok()?.kind {
        mp_relation::AttrKind::Categorical => Some(summary.mean_matches),
        mp_relation::AttrKind::Continuous => summary.mean_mse,
    }
}

/// Regenerates Table IV (categorical positive matches) as rendered text,
/// with the paper's published values interleaved for comparison.
pub fn table4(rounds: usize) -> String {
    render(
        "TABLE IV — PRIVACY LEAKAGE OF CATEGORICAL ATTRIBUTES (positive matches)",
        &CATEGORICAL_ATTRS,
        &PAPER_TABLE4
            .iter()
            .map(|(n, v)| (*n, v.to_vec()))
            .collect::<Vec<_>>(),
        rounds,
        3,
    )
}

/// Regenerates Table III (continuous MSE) as rendered text.
pub fn table3(rounds: usize) -> String {
    render(
        "TABLE III — PRIVACY LEAKAGE OF CONTINUOUS ATTRIBUTES (MSE)",
        &CONTINUOUS_ATTRS,
        &PAPER_TABLE3
            .iter()
            .map(|(n, v)| (*n, v.to_vec()))
            .collect::<Vec<_>>(),
        rounds,
        2,
    )
}

/// One regenerated cell in the *known-determinant* variant: the adversary
/// uses the real values of the dependency's LHS (the VFL case where the
/// determinant is its own aligned feature — see
/// [`mp_core::run_cell_with_known_lhs`]). The paper's Table III/IV rows
/// show exactly this kind of deviation on some attributes (OD cells far
/// from random in both directions, ND above random); the blind variant
/// cannot produce those, the known-determinant one does.
pub fn cell_known_lhs(
    real: &Relation,
    domains: &[Domain],
    class: &str,
    attr: usize,
    config: &ExperimentConfig,
) -> Option<f64> {
    let inventory = paper_inventory();
    let summary = match class {
        "RAND" => run_cell(real, domains, None, attr, config).ok()?,
        c => {
            let dep = inventory.lookup(c, attr)?;
            mp_core::run_cell_with_known_lhs(real, domains, dep, attr, config).ok()?
        }
    };
    match real.schema().attribute(attr).ok()?.kind {
        mp_relation::AttrKind::Categorical => Some(summary.mean_matches),
        mp_relation::AttrKind::Continuous => summary.mean_mse,
    }
}

/// Table IV, known-determinant variant.
pub fn table4_known_lhs(rounds: usize) -> String {
    render_with(
        "TABLE IV (variant) — categorical matches, adversary KNOWS the determinant column",
        &CATEGORICAL_ATTRS,
        &PAPER_TABLE4
            .iter()
            .map(|(n, v)| (*n, v.to_vec()))
            .collect::<Vec<_>>(),
        rounds,
        3,
        cell_known_lhs,
    )
}

/// Table III, known-determinant variant.
pub fn table3_known_lhs(rounds: usize) -> String {
    render_with(
        "TABLE III (variant) — continuous MSE, adversary KNOWS the determinant column",
        &CONTINUOUS_ATTRS,
        &PAPER_TABLE3
            .iter()
            .map(|(n, v)| (*n, v.to_vec()))
            .collect::<Vec<_>>(),
        rounds,
        2,
        cell_known_lhs,
    )
}

fn render(
    title: &str,
    attrs: &[usize],
    paper: &[(&str, Vec<Option<f64>>)],
    rounds: usize,
    decimals: usize,
) -> String {
    render_with(title, attrs, paper, rounds, decimals, cell)
}

fn render_with(
    title: &str,
    attrs: &[usize],
    paper: &[(&str, Vec<Option<f64>>)],
    rounds: usize,
    decimals: usize,
    cell_fn: fn(&Relation, &[Domain], &str, usize, &ExperimentConfig) -> Option<f64>,
) -> String {
    let real = echocardiogram();
    let domains = Domain::infer_all(&real).expect("domains infer");
    let config = ExperimentConfig {
        rounds,
        base_seed: 0xEC40,
        epsilon: 0.0,
    };

    let mut header = vec!["Dep".to_owned(), "".to_owned()];
    header.extend(attrs.iter().map(|a| format!("Attr {a}")));
    let mut table = TextTable::new(header);

    for ((row_name, class), (_, paper_vals)) in ROWS.iter().zip(paper) {
        let mut measured = vec![row_name.to_string(), "measured".to_owned()];
        for &attr in attrs {
            measured.push(na_cell(
                cell_fn(&real, &domains, class, attr, &config),
                decimals,
            ));
        }
        table.push_row(measured);
        let mut published = vec![String::new(), "paper".to_owned()];
        published.extend(paper_vals.iter().map(|v| na_cell(*v, decimals)));
        table.push_row(published);
    }
    format!(
        "{title}\n(N = {} rows, {rounds} rounds)\n{}",
        real.n_rows(),
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_na_pattern_matches_paper() {
        let real = echocardiogram();
        let domains = Domain::infer_all(&real).unwrap();
        let config = ExperimentConfig {
            rounds: 2,
            base_seed: 1,
            epsilon: 0.0,
        };
        for ((_, class), (_, paper_vals)) in ROWS.iter().zip(&PAPER_TABLE4) {
            for (&attr, paper_val) in CATEGORICAL_ATTRS.iter().zip(paper_vals.iter()) {
                let measured = cell(&real, &domains, class, attr, &config);
                assert_eq!(
                    measured.is_none(),
                    paper_val.is_none(),
                    "{class} attr {attr}: NA pattern mismatch"
                );
            }
        }
    }

    #[test]
    fn table3_na_pattern_matches_paper() {
        let real = echocardiogram();
        let domains = Domain::infer_all(&real).unwrap();
        let config = ExperimentConfig {
            rounds: 2,
            base_seed: 1,
            epsilon: 0.0,
        };
        for ((_, class), (_, paper_vals)) in ROWS.iter().zip(&PAPER_TABLE3) {
            for (&attr, paper_val) in CONTINUOUS_ATTRS.iter().zip(paper_vals.iter()) {
                let measured = cell(&real, &domains, class, attr, &config);
                assert_eq!(
                    measured.is_none(),
                    paper_val.is_none(),
                    "{class} attr {attr}: NA pattern mismatch"
                );
            }
        }
    }

    #[test]
    fn rendered_tables_contain_all_rows() {
        let t4 = table4(3);
        for (name, _) in ROWS {
            assert!(t4.contains(name), "missing row {name}");
        }
        assert!(t4.contains("NA"));
        let t3 = table3(3);
        assert!(t3.contains("Attr 0") && t3.contains("Attr 9"));
    }
}
