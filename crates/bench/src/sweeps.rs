//! Analytical-vs-empirical sweeps: one per in-text derivation of the
//! paper's §III/§IV (experiment ids A1–A7 in DESIGN.md §5).
//!
//! Each sweep pits the closed-form expectation from
//! `mp_core::analytical` against Monte-Carlo runs of the corresponding
//! `mp_synth` generator and prints the series side by side.

use mp_core::analytical;
use mp_core::TextTable;
use mp_relation::{Domain, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn mean_matches<F>(rounds: usize, mut one_round: F) -> f64
where
    F: FnMut(u64) -> usize,
{
    (0..rounds).map(|r| one_round(r as u64)).sum::<usize>() as f64 / rounds as f64
}

/// A1 (§III-A): expected random-generation matches `N·θ` over a domain
/// cardinality sweep, with the `N·θ ≥ 1` leakage frontier.
pub fn sweep_random(n: usize, rounds: usize) -> String {
    let mut t = TextTable::new(vec![
        "|D|".into(),
        "θ = 1/|D|".into(),
        "analytic N·θ".into(),
        "empirical".into(),
        "leaks (N·θ ≥ 1)".into(),
    ]);
    for card in [2usize, 3, 4, 8, 16, 64, 256, 1024] {
        let dom = Domain::categorical((0..card as i64).collect::<Vec<_>>());
        let theta = dom.theta(0.0);
        let empirical = mean_matches(rounds, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let real = mp_synth::sample_column(&dom, n, &mut rng);
            let syn = mp_synth::sample_column(&dom, n, &mut rng);
            real.iter().zip(&syn).filter(|(a, b)| a == b).count()
        });
        t.push_row(vec![
            card.to_string(),
            format!("{theta:.4}"),
            format!("{:.2}", analytical::random::expected_matches(n, theta)),
            format!("{empirical:.2}"),
            analytical::random::leaks(n, theta).to_string(),
        ]);
    }
    format!(
        "A1 §III-A random generation (N = {n}, {rounds} rounds)\n{}",
        t.render()
    )
}

/// Real data for the FD/AFD/ND sweeps: X uniform over `card_x`, Y a true
/// mapping of X into `card_y`.
fn mapped_real(n: usize, card_x: usize, card_y: usize, seed: u64) -> (Vec<Value>, Vec<Value>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = mp_synth::sample_column(
        &Domain::categorical((0..card_x as i64).collect::<Vec<_>>()),
        n,
        &mut rng,
    );
    let y = x
        .iter()
        .map(|v| Value::Int(v.as_i64().unwrap() % card_y as i64))
        .collect();
    (x, y)
}

/// A2 (§III-B): FD-driven pair generation vs the random baseline over a
/// determinant-cardinality sweep — the two series must coincide.
pub fn sweep_fd(n: usize, rounds: usize) -> String {
    let card_y = 5usize;
    let mut t = TextTable::new(vec![
        "|D_A|".into(),
        "analytic N/(|D_A||D_B|)".into(),
        "FD-driven empirical".into(),
        "random empirical".into(),
    ]);
    for card_x in [5usize, 10, 20, 40] {
        let (real_x, real_y) = mapped_real(n, card_x, card_y, 7);
        let dom_x = Domain::categorical((0..card_x as i64).collect::<Vec<_>>());
        let dom_y = Domain::categorical((0..card_y as i64).collect::<Vec<_>>());
        let fd_emp = mean_matches(rounds, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let sx = mp_synth::sample_column(&dom_x, n, &mut rng);
            let sy = mp_synth::generate_fd_column(&[&sx], &dom_y, n, &mut rng);
            (0..n)
                .filter(|&i| sx[i] == real_x[i] && sy[i] == real_y[i])
                .count()
        });
        let rand_emp = mean_matches(rounds, |seed| {
            let mut rng = StdRng::seed_from_u64(seed + 5000);
            let sx = mp_synth::sample_column(&dom_x, n, &mut rng);
            let sy = mp_synth::sample_column(&dom_y, n, &mut rng);
            (0..n)
                .filter(|&i| sx[i] == real_x[i] && sy[i] == real_y[i])
                .count()
        });
        t.push_row(vec![
            card_x.to_string(),
            format!(
                "{:.2}",
                analytical::fd::expected_pair_matches(n, card_x, card_y)
            ),
            format!("{fd_emp:.2}"),
            format!("{rand_emp:.2}"),
        ]);
    }
    format!(
        "A2 §III-B FD vs random (N = {n}, |D_B| = {card_y}, {rounds} rounds)\n{}",
        t.render()
    )
}

/// A3 (§IV-A): AFD sweep over the g3 budget ε — totals stay at the FD/
/// random level for every ε.
pub fn sweep_afd(n: usize, rounds: usize) -> String {
    let (card_x, card_y) = (10usize, 5usize);
    let (real_x, real_y) = mapped_real(n, card_x, card_y, 11);
    let dom_x = Domain::categorical((0..card_x as i64).collect::<Vec<_>>());
    let dom_y = Domain::categorical((0..card_y as i64).collect::<Vec<_>>());
    let mut t = TextTable::new(vec![
        "ε (g3)".into(),
        "analytic total".into(),
        "empirical".into(),
        "structured part".into(),
        "scattered part".into(),
    ]);
    for eps in [0.0, 0.05, 0.1, 0.2, 0.35, 0.5] {
        let emp = mean_matches(rounds, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let sx = mp_synth::sample_column(&dom_x, n, &mut rng);
            let sy = mp_synth::generate_afd_column(&[&sx], &dom_y, eps, n, &mut rng);
            (0..n)
                .filter(|&i| sx[i] == real_x[i] && sy[i] == real_y[i])
                .count()
        });
        let (structured, scattered) = analytical::fd::afd_split(n, eps, card_x, card_y);
        t.push_row(vec![
            format!("{eps:.2}"),
            format!("{:.2}", structured + scattered),
            format!("{emp:.2}"),
            format!("{structured:.2}"),
            format!("{scattered:.2}"),
        ]);
    }
    format!(
        "A3 §IV-A AFD ε sweep (N = {n}, {rounds} rounds)\n{}",
        t.render()
    )
}

/// A4 (§IV-B): ND sweep over K — exact-cell totals are K-independent
/// (random level) while the paper's mapping-coverage expectation grows
/// with K; includes the hypergeometric any-hit probability.
pub fn sweep_nd(n: usize, rounds: usize) -> String {
    let (card_x, card_y) = (8usize, 16usize);
    let mut t = TextTable::new(vec![
        "K".into(),
        "paper N·K/(|Dx||Dy|)".into(),
        "exact analytic".into(),
        "exact empirical".into(),
        "P(any mapping hit)".into(),
        "guaranteed overlap".into(),
    ]);
    for k in [1usize, 2, 4, 8, 12, 16] {
        let mut rng = StdRng::seed_from_u64(13);
        let dom_x = Domain::categorical((0..card_x as i64).collect::<Vec<_>>());
        let dom_y = Domain::categorical((0..card_y as i64).collect::<Vec<_>>());
        let real_x = mp_synth::sample_column(&dom_x, n, &mut rng);
        let real_y = mp_synth::generate_nd_column(&real_x, &dom_y, k, n, &mut rng);
        let emp = mean_matches(rounds, |seed| {
            let mut rng = StdRng::seed_from_u64(seed + 31);
            let sx = mp_synth::sample_column(&dom_x, n, &mut rng);
            let sy = mp_synth::generate_nd_column(&sx, &dom_y, k, n, &mut rng);
            (0..n)
                .filter(|&i| sx[i] == real_x[i] && sy[i] == real_y[i])
                .count()
        });
        t.push_row(vec![
            k.to_string(),
            format!(
                "{:.2}",
                analytical::nd::expected_pair_matches(n, k, card_x, card_y)
            ),
            format!(
                "{:.2}",
                analytical::nd::expected_exact_pair_matches(n, card_x, card_y)
            ),
            format!("{emp:.2}"),
            format!("{:.3}", analytical::nd::prob_any_mapping_hit(k, card_y)),
            analytical::nd::guaranteed_overlap(k, card_y).to_string(),
        ]);
    }
    format!(
        "A4 §IV-B ND K sweep (N = {n}, |Dx| = {card_x}, |Dy| = {card_y}, {rounds} rounds)\n{}",
        t.render()
    )
}

/// A5 (§IV-C): OD partition-count sweep — expected interval overlap (and
/// with it the leakage) shrinks as the partition count grows, the paper's
/// "high variance ⇒ low leakage" argument.
pub fn sweep_od(samples: usize) -> String {
    let mut t = TextTable::new(vec!["partitions m".into(), "E[overlap]/range (MC)".into()]);
    for m in [1usize, 2, 4, 8, 16, 32, 64] {
        let overlap = analytical::od::expected_overlap_uniform(m, samples, 17);
        t.push_row(vec![m.to_string(), format!("{overlap:.4}")]);
    }
    format!(
        "A5 §IV-C OD interval-overlap sweep ({samples} MC samples)\n{}",
        t.render()
    )
}

/// A6 (§IV-D): DD ε sweep — leakage grows quadratically in ε_y and stays
/// below the pair-level random baseline.
pub fn sweep_dd(n: usize, rounds: usize) -> String {
    let (range_x, range_y) = (100.0, 50.0);
    let mut t = TextTable::new(vec![
        "ε".into(),
        "analytic".into(),
        "empirical".into(),
        "random-pair baseline".into(),
    ]);
    for eps in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let dom_x = Domain::continuous(0.0, range_x);
        let dom_y = Domain::continuous(0.0, range_y);
        let mut rng = StdRng::seed_from_u64(19);
        let real_x = mp_synth::sample_column(&dom_x, n, &mut rng);
        let real_y = mp_synth::generate_dd_column(&real_x, &dom_y, eps, eps, n, &mut rng);
        let emp = mean_matches(rounds, |seed| {
            let mut rng = StdRng::seed_from_u64(seed + 77);
            let sx = mp_synth::sample_column(&dom_x, n, &mut rng);
            let sy = mp_synth::generate_dd_column(&sx, &dom_y, eps, eps, n, &mut rng);
            (0..n)
                .filter(|&i| {
                    let dx = (sx[i].as_f64().unwrap() - real_x[i].as_f64().unwrap()).abs();
                    let dy = (sy[i].as_f64().unwrap() - real_y[i].as_f64().unwrap()).abs();
                    dx <= eps && dy <= eps
                })
                .count()
        });
        let analytic = analytical::dd::expected_matches(n, eps, range_x, eps, range_y);
        let baseline = n as f64
            * analytical::dd::theta_ball(eps, range_x)
            * analytical::dd::theta_ball(eps, range_y);
        t.push_row(vec![
            format!("{eps:.1}"),
            format!("{analytic:.2}"),
            format!("{emp:.2}"),
            format!("{baseline:.2}"),
        ]);
    }
    format!(
        "A6 §IV-D DD ε sweep (N = {n}, ranges {range_x}/{range_y}, {rounds} rounds)\n{}",
        t.render()
    )
}

/// A7 (§IV-E): OFD sweep over the codomain size — transition
/// probabilities, whole-mapping probability, and the empirical
/// mapping-position agreement of the random-walk generator.
pub fn sweep_ofd(rounds: usize) -> String {
    let m = 6usize;
    let mut t = TextTable::new(vec![
        "|D_Y|".into(),
        "P_{i,i+1}(t=0)".into(),
        "P(whole mapping)".into(),
        "E positions hit (analytic)".into(),
        "empirical".into(),
    ]);
    for card_y in [6usize, 8, 12, 24, 48] {
        let dom = Domain::categorical((0..card_y as i64).collect::<Vec<_>>());
        let lhs: Vec<Value> = (0..m * 20).map(|i| Value::Int((i % m) as i64)).collect();
        // Real mapping: i ↦ i·(card_y/m) — strictly increasing.
        let stride = (card_y / m).max(1) as i64;
        let real: Vec<Value> = lhs
            .iter()
            .map(|v| Value::Int(v.as_i64().unwrap() * stride))
            .collect();
        let emp = mean_matches(rounds, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let syn = mp_synth::generate_ofd_column(&lhs, &dom, lhs.len(), &mut rng);
            (0..m).filter(|&i| syn[i] == real[i]).count()
        });
        t.push_row(vec![
            card_y.to_string(),
            format!(
                "{:.3}",
                analytical::ofd::transition_probability(m, card_y, 0)
            ),
            format!(
                "{:.5}",
                analytical::ofd::whole_mapping_probability(m, card_y)
            ),
            format!(
                "{:.3}",
                analytical::ofd::expected_matches(m, 1.0, m, card_y)
            ),
            format!("{emp:.3}"),
        ]);
    }
    format!(
        "A7 §IV-E OFD codomain sweep (|X| = {m}, {rounds} rounds)\n{}",
        t.render()
    )
}

/// A9 (extension): constant-CFD support sweep — the flood strategy beats
/// the random baseline exactly when `s > N/|D_Y|`, making CFDs the one
/// dependency class that leaks beyond the domain level.
pub fn sweep_cfd(n: usize, rounds: usize) -> String {
    use mp_metadata::ConditionalFd;
    let (card_x, card_y) = (4usize, 8usize);
    let dom_x = Domain::categorical((0..card_x as i64).collect::<Vec<_>>());
    let dom_y = Domain::categorical((0..card_y as i64).collect::<Vec<_>>());
    let mut t = TextTable::new(vec![
        "support s".into(),
        "random baseline N/|Dy|".into(),
        "pattern-strategy empirical".into(),
        "flood bound s".into(),
        "amplification s·|Dy|/N".into(),
        "leaks more?".into(),
    ]);
    for target_support in [n / 20, n / 10, n / 4, n / 2] {
        // Real data: exactly `target_support` rows have X = 0, Y = 7; the
        // rest are uniform with X ≠ 0 and Y ≠ 7.
        let mut rng = StdRng::seed_from_u64(3);
        let mut real_x: Vec<Value> = Vec::with_capacity(n);
        let mut real_y: Vec<Value> = Vec::with_capacity(n);
        for i in 0..n {
            if i < target_support {
                real_x.push(Value::Int(0));
                real_y.push(Value::Int(7));
            } else {
                real_x.push(Value::Int(rng.gen_range(1..card_x) as i64));
                real_y.push(Value::Int(rng.gen_range(0..card_y - 1) as i64));
            }
        }
        let cfd = ConditionalFd::constant(0, 0i64, 1, 7i64);
        let emp = mean_matches(rounds, |seed| {
            let mut rng = StdRng::seed_from_u64(seed + 19);
            let sx = mp_synth::sample_column(&dom_x, n, &mut rng);
            let sy = mp_synth::generate_cfd_column(&cfd, &[&sx], &dom_y, n, &mut rng);
            (0..n).filter(|&i| sy[i] == real_y[i]).count()
        });
        t.push_row(vec![
            target_support.to_string(),
            format!("{:.1}", n as f64 / card_y as f64),
            format!("{emp:.1}"),
            format!(
                "{:.1}",
                analytical::cfd::flood_strategy_hits(target_support)
            ),
            format!(
                "{:.2}",
                analytical::cfd::flood_amplification(n, target_support, card_y)
            ),
            analytical::cfd::leaks_more_than_random(n, target_support, card_y).to_string(),
        ]);
    }
    format!(
        "A9 extension: constant-CFD support sweep (N = {n}, |Dx| = {card_x}, |Dy| = {card_y}, {rounds} rounds)\n{}",
        t.render()
    )
}

/// A10 (extension): domain-generalization sweep — widening shared
/// continuous ranges divides the ε-hit rate by the widening factor.
pub fn sweep_defense(n: usize, rounds: usize) -> String {
    let range = 100.0;
    let eps = 1.0;
    let dom = Domain::continuous(0.0, range);
    let mut rng = StdRng::seed_from_u64(8);
    let real = mp_synth::sample_column(&dom, n, &mut rng);
    let mut t = TextTable::new(vec![
        "widen factor".into(),
        "analytic N·2ε/range'".into(),
        "empirical".into(),
    ]);
    for widen in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
        let g = mp_metadata::DomainGeneralization {
            widen,
            snap: 0.0,
            suppress_below: 0,
        };
        let shared = g.apply_domain(&dom, None);
        let emp = mean_matches(rounds, |seed| {
            let mut rng = StdRng::seed_from_u64(seed + 41);
            let syn = mp_synth::sample_column(&shared, n, &mut rng);
            (0..n)
                .filter(|&i| (real[i].as_f64().unwrap() - syn[i].as_f64().unwrap()).abs() <= eps)
                .count()
        });
        let analytic = n as f64 * 2.0 * eps / shared.range().unwrap();
        t.push_row(vec![
            format!("×{widen}"),
            format!("{analytic:.2}"),
            format!("{emp:.2}"),
        ]);
    }
    format!(
        "A10 extension: domain-generalization sweep (N = {n}, ε = {eps}, base range {range}, {rounds} rounds)\n{}",
        t.render()
    )
}

/// A12 (extension): distribution-sharing sweep — the per-cell match rate
/// is the collision probability `Σp²`, strictly above the paper's uniform
/// `1/|D|` for skewed data. Skew is parameterised by Zipf-like weights.
pub fn sweep_distribution(n: usize, rounds: usize) -> String {
    use mp_metadata::Distribution;
    let card = 8usize;
    let mut t = TextTable::new(vec![
        "skew".into(),
        "Σp²".into(),
        "effective |D|".into(),
        "analytic N·Σp²".into(),
        "empirical".into(),
        "uniform-domain baseline".into(),
    ]);
    for skew in [0.0f64, 0.5, 1.0, 1.5, 2.0] {
        let weights: Vec<f64> = (1..=card).map(|r| 1.0 / (r as f64).powf(skew)).collect();
        let total: f64 = weights.iter().sum();
        let dist = Distribution::Categorical(
            weights
                .iter()
                .enumerate()
                .map(|(i, w)| (Value::Int(i as i64), w / total))
                .collect(),
        );
        let emp = mean_matches(rounds, |seed| {
            let mut rng = StdRng::seed_from_u64(seed + 91);
            let real = mp_synth::sample_column_from_distribution(&dist, n, &mut rng);
            let syn = mp_synth::sample_column_from_distribution(&dist, n, &mut rng);
            real.iter().zip(&syn).filter(|(a, b)| a == b).count()
        });
        t.push_row(vec![
            format!("{skew:.1}"),
            format!("{:.4}", dist.collision_probability()),
            format!("{:.2}", dist.effective_cardinality()),
            format!(
                "{:.2}",
                analytical::distribution::expected_matches(n, &dist)
            ),
            format!("{emp:.2}"),
            format!("{:.2}", analytical::distribution::uniform_baseline(n, card)),
        ]);
    }
    format!(
        "A12 extension: distribution-sharing sweep (N = {n}, |D| = {card}, {rounds} rounds)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sweeps_render() {
        for s in [
            sweep_random(500, 5),
            sweep_fd(500, 5),
            sweep_afd(500, 5),
            sweep_nd(400, 5),
            sweep_od(50),
            sweep_dd(300, 5),
            sweep_ofd(10),
            sweep_cfd(400, 5),
            sweep_defense(400, 5),
            sweep_distribution(400, 5),
        ] {
            assert!(s.lines().count() > 5, "sweep too short:\n{s}");
            assert!(s.contains("§") || s.contains("extension"), "missing tag");
        }
    }

    #[test]
    fn sweep_fd_series_coincide() {
        // Parse nothing — recompute the invariant directly: FD analytic
        // equals the random analytic at every sweep point.
        for card_x in [5usize, 10, 20, 40] {
            let a = analytical::fd::expected_pair_matches(1000, card_x, 5);
            let r = 1000.0 / (card_x as f64 * 5.0);
            assert!((a - r).abs() < 1e-12);
        }
    }
}
