//! # mp-bench — reproduction harness
//!
//! Library backing the reproduction binaries (`table3`, `table4`,
//! `sweep_*`, `identifiability_report`, `discovery_report`, `repro_all`)
//! and the Criterion benches. See DESIGN.md §5 for the experiment index
//! mapping every table/figure and in-text claim to its regeneration
//! target.

#![warn(missing_docs)]

pub mod reports;
pub mod sweeps;
pub mod tables;
