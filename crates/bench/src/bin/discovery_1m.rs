//! End-to-end million-row scale bench: streaming ingest → sharded PLI
//! build → memory-bounded depth-2 discovery.
//!
//! Generates the planted 7-column scale relation, round-trips it through
//! the streaming CSV path (asserting bit-identical ingest), times
//! single-pass vs sharded PLI construction, then runs a depth-2 TANE pass
//! under a fixed [`MemoryBudget`] (cached) and uncached, asserting both
//! produce the same FDs. Writes `BENCH_scale.json` at the repo root —
//! the scale companion to `BENCH_columnar.json`.
//!
//! Usage: `discovery_1m [rows] [budget_mb]` (defaults: 1000000, 256).

use mp_discovery::{discover_fds_with, DiscoveryContext, MemoryBudget, ParallelConfig, TaneConfig};
use mp_relation::csv::{read_path, write_str_with, CsvOptions};
use mp_relation::par::effective_threads;
use mp_relation::Pli;
use std::time::Instant;

fn canon(fds: &[mp_metadata::Fd]) -> Vec<(Vec<usize>, usize)> {
    let mut v: Vec<(Vec<usize>, usize)> = fds
        .iter()
        .map(|f| (f.lhs.indices().to_vec(), f.rhs))
        .collect();
    v.sort();
    v
}

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let budget_mb: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);

    let out = mp_datasets::scale_relation(rows, 7).expect("scale relation generates");
    let rel = out.relation;
    println!(
        "scale relation: {} rows x {} columns",
        rel.n_rows(),
        rel.arity()
    );

    // Streaming ingest: write the relation out with its kind row and read
    // it back through the chunked file path; the round trip must be
    // bit-identical (dictionaries in first-occurrence order, shortest
    // round-trip float formatting).
    let opts = CsvOptions::with_kind_row();
    let text = write_str_with(&rel, &opts);
    let csv_path = std::env::temp_dir().join(format!("mpriv_discovery_1m_{rows}.csv"));
    std::fs::write(&csv_path, &text).expect("write temp CSV");
    let t = Instant::now();
    let back = read_path(&csv_path, &opts).expect("streaming ingest");
    let ingest_s = t.elapsed().as_secs_f64();
    std::fs::remove_file(&csv_path).ok();
    assert_eq!(
        rel, back,
        "streaming ingest must round-trip bit-identically"
    );
    let ingest_rows_per_sec = rows as f64 / ingest_s.max(f64::MIN_POSITIVE);
    println!(
        "ingest: {} bytes in {:.2} s ({:.0} rows/s), round trip bit-identical",
        text.len(),
        ingest_s,
        ingest_rows_per_sec
    );

    // Single-pass vs sharded PLI build over every column.
    let shards = effective_threads(0).min(16);
    let t = Instant::now();
    let singles: Vec<Pli> = (0..rel.arity())
        .map(|a| Pli::from_typed(rel.column(a).expect("column in range")))
        .collect();
    let pli_single_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let shardeds: Vec<Pli> = (0..rel.arity())
        .map(|a| Pli::from_typed_sharded(rel.column(a).expect("column in range"), shards))
        .collect();
    let pli_sharded_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        singles, shardeds,
        "sharded PLI builds must be bit-identical"
    );
    println!(
        "pli build: single {pli_single_ms:.1} ms, sharded({shards}) {pli_sharded_ms:.1} ms, bit-identical"
    );

    // Depth-2 discovery under a fixed memory budget (cached) vs uncached.
    let config = TaneConfig {
        max_lhs: 2,
        g3_threshold: 0.0,
        ..TaneConfig::default()
    };
    let budget = MemoryBudget::from_mb(budget_mb);
    let ctx = DiscoveryContext::with_budget(&rel, ParallelConfig::default(), budget);
    let t = Instant::now();
    let cached = discover_fds_with(&ctx, &config).expect("budgeted discovery");
    let discovery_cached_ms = t.elapsed().as_secs_f64() * 1e3;
    let stats = ctx.cache_stats();
    println!("budgeted discovery: {discovery_cached_ms:.1} ms, {stats}");

    let uncached_ctx = DiscoveryContext::new(&rel, ParallelConfig::uncached(0));
    let t = Instant::now();
    let uncached = discover_fds_with(&uncached_ctx, &config).expect("uncached discovery");
    let discovery_uncached_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        canon(&cached),
        canon(&uncached),
        "budgeted discovery must find the same FDs as the uncached engine"
    );
    println!(
        "uncached discovery: {discovery_uncached_ms:.1} ms, same {} FDs",
        cached.len()
    );

    // Every planted dependency must be visible in the generated relation.
    for dep in &out.planted {
        assert!(
            dep.holds(&rel).expect("dependency check"),
            "planted {dep} must hold"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"rows\": {rows},\n  \"ingest_rows_per_sec\": {ingest_rows_per_sec:.0},\n  \"pli_build_single_ms\": {pli_single_ms:.1},\n  \"pli_build_sharded_ms\": {pli_sharded_ms:.1},\n  \"shards\": {shards},\n  \"discovery_cached_ms\": {discovery_cached_ms:.1},\n  \"discovery_uncached_ms\": {discovery_uncached_ms:.1},\n  \"budget_mb\": {budget_mb},\n  \"fds\": {}\n}}\n",
        cached.len()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, &json).expect("write BENCH_scale.json");
    println!("wrote {path}:\n{json}");
}
