//! Writes the reconstructed datasets as CSV files (for the `mpriv` CLI and
//! external tooling): `echocardiogram.csv` and `employee.csv` into the
//! directory given as the first argument (default `data/`).
fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "data".to_owned());
    std::fs::create_dir_all(&dir).expect("create output directory");
    let echo = mp_datasets::echocardiogram();
    let employee = mp_datasets::employee();
    mp_relation::csv::write_path(&echo, format!("{dir}/echocardiogram.csv"))
        .expect("write echocardiogram");
    mp_relation::csv::write_path(&employee, format!("{dir}/employee.csv")).expect("write employee");
    println!(
        "wrote {dir}/echocardiogram.csv ({} rows) and {dir}/employee.csv ({} rows)",
        echo.n_rows(),
        employee.n_rows()
    );
}
