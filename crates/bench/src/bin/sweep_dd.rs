//! A6 (§IV-D): differential-dependency ε sweep.
fn main() {
    print!("{}", mp_bench::sweeps::sweep_dd(1000, 200));
}
