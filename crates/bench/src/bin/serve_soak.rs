//! Soak harness for `mpriv serve`: N concurrent two-party VFL setup
//! sessions against one relay daemon over real TCP sockets, with
//! socket-level faults injected by a deterministic per-session schedule:
//!
//! * `reset` — one party drops its connection right after the handshake
//!   (connection reset mid-session);
//! * `stall` — one party splices a *partial* frame onto the wire and
//!   then stops reading and writing (stalled writer + partial frame).
//!
//! Every completed session is checked bit-identical to the same seeds
//! through the in-process [`mp_federated::PerfectTransport`] oracle, and
//! every faulted session must abort with a *typed* error. Reports
//! sessions/sec, p50/p99 setup latency and the abort rate; writes
//! `BENCH_serve.json` at the repo root. Exits non-zero on any oracle
//! divergence, untyped failure, or zero completed sessions.
//!
//! Usage: `serve_soak [sessions]` (default 64).

use mp_federated::net::{encode_frame, FramedStream, ReadStep, SessionFrame, SocketStream};
use mp_federated::{
    outcome_matches, run_client_session, ClientConfig, MultiPartySession, MultiSetupOutcome, Party,
    RetryConfig, ServeConfig, Server, SetupError,
};
use mp_metadata::SharePolicy;
use mp_observe::NoopRecorder;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS: usize = 40;
const SALT: u64 = 0xF1A7;
const DATA_SEED: u64 = 42;
const POLICIES: [SharePolicy; 2] = [SharePolicy::PAPER_RECOMMENDED, SharePolicy::FULL];

/// The deterministic fault mix: index → fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Reset,
    Stall,
}

fn fault_for(index: u64) -> Fault {
    match index % 8 {
        5 => Fault::Reset,
        7 => Fault::Stall,
        _ => Fault::None,
    }
}

fn parties() -> Vec<Party> {
    let data = mp_datasets::fintech_scenario(ROWS, DATA_SEED);
    vec![
        Party::new("bank", data.bank.relation, 0, data.bank.dependencies).unwrap(),
        Party::new(
            "ecommerce",
            data.ecommerce.relation,
            0,
            data.ecommerce.dependencies,
        )
        .unwrap(),
    ]
}

/// A fast-abort retry policy so faulted sessions fail in milliseconds,
/// not the full production ladder.
fn soak_retry() -> RetryConfig {
    RetryConfig {
        ack_timeout: 8,
        max_retries: 3,
        backoff_cap: 16,
        max_ticks: 2_000,
    }
}

/// Joins the session like a real party, then injects the fault.
fn faulty_party(addr: &str, session: u64, fault: Fault) {
    let Ok(stream) = SocketStream::connect(addr) else {
        return;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_millis(2)));
    let mut framed = FramedStream::new(stream);
    if framed
        .write_frame(&SessionFrame::Hello {
            session,
            party: 1,
            n_parties: 2,
        })
        .is_err()
    {
        return;
    }
    // Wait until the session assembles so the fault lands mid-session.
    loop {
        match framed.read_step() {
            Ok(ReadStep::Frame(SessionFrame::Welcome { .. })) => break,
            Ok(ReadStep::Eof) | Err(_) => return,
            _ => {}
        }
    }
    match fault {
        Fault::Reset => {
            let _ = framed.socket().shutdown();
        }
        Fault::Stall => {
            // Splice the first 3 bytes of a valid envelope frame, then
            // go silent: the peer's retries exhaust and the session is
            // torn down around the half-frame.
            let frame = encode_frame(&SessionFrame::Done { party: 1 });
            let _ = framed.socket_mut().write_all(&frame[..3]);
            let _ = framed.socket_mut().flush();
            // Stay connected (neither reading nor writing) until the
            // server hangs up on us.
            loop {
                match framed.read_step() {
                    Ok(ReadStep::Frame(SessionFrame::Abort(_))) | Ok(ReadStep::Eof) | Err(_) => {
                        return;
                    }
                    _ => {}
                }
            }
        }
        Fault::None => unreachable!("clean sessions run real clients"),
    }
}

struct SessionResult {
    fault: Fault,
    elapsed: Duration,
    /// `Ok(matches_oracle)` for completed sessions, the typed error text
    /// otherwise.
    outcome: Result<bool, String>,
    /// A faulted session failing with anything other than a typed
    /// `SetupError` (e.g. a panic) is a finding.
    typed_abort: bool,
}

fn run_one(
    addr: &str,
    index: u64,
    parties: &[Party],
    reference: &MultiSetupOutcome,
) -> SessionResult {
    let fault = fault_for(index);
    let session = index + 1;
    let start = Instant::now();
    let retry = soak_retry();

    let partner: std::thread::JoinHandle<Option<Result<mp_federated::PartyOutcome, SetupError>>> = {
        let addr = addr.to_owned();
        let party = parties[1].clone();
        std::thread::spawn(move || match fault {
            Fault::None => {
                let cfg = ClientConfig::new(session, 1, 2, retry);
                Some(run_client_session(
                    &addr,
                    &cfg,
                    &party,
                    &POLICIES[1],
                    SALT,
                    &NoopRecorder,
                ))
            }
            _ => {
                faulty_party(&addr, session, fault);
                None
            }
        })
    };

    let cfg = ClientConfig::new(session, 0, 2, retry);
    let mine = run_client_session(addr, &cfg, &parties[0], &POLICIES[0], SALT, &NoopRecorder);
    let partner_result = partner.join().expect("party thread never panics");
    let elapsed = start.elapsed();

    match fault {
        Fault::None => {
            let both = [Some(mine), partner_result];
            let mut matches = true;
            let mut error = None;
            for (p, res) in both.into_iter().flatten().enumerate() {
                match res {
                    Ok(outcome) => matches &= outcome_matches(&outcome, p, reference),
                    Err(e) => error = Some(e.to_string()),
                }
            }
            SessionResult {
                fault,
                elapsed,
                outcome: match error {
                    None => Ok(matches),
                    Some(e) => Err(e),
                },
                typed_abort: true,
            }
        }
        _ => {
            // The honest party of a faulted session must fail with a
            // typed SetupError — never hang, never panic.
            let typed = matches!(
                mine,
                Err(SetupError::PartyCrashed { .. })
                    | Err(SetupError::RetriesExhausted { .. })
                    | Err(SetupError::Stalled { .. })
                    | Err(SetupError::Data(_))
            );
            SessionResult {
                fault,
                elapsed,
                outcome: Err(match &mine {
                    Err(e) => e.to_string(),
                    Ok(_) => "faulted session completed".to_owned(),
                }),
                typed_abort: typed,
            }
        }
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn main() {
    let sessions: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);

    let parties = parties();
    let reference = MultiPartySession::new(parties.clone(), SALT)
        .run_setup(&POLICIES)
        .expect("in-process reference setup");

    let cfg = ServeConfig {
        io_tick: Duration::from_millis(1),
        ..ServeConfig::from_retry(&soak_retry())
    };
    let queue_cap = cfg.queue_cap;
    let server = Server::start("127.0.0.1:0", cfg, Arc::new(NoopRecorder)).expect("bind");
    let addr = server.addr().to_owned();

    let wall = Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|i| {
            let addr = addr.clone();
            let parties = parties.clone();
            let reference = reference.clone();
            std::thread::spawn(move || run_one(&addr, i, &parties, &reference))
        })
        .collect();
    let results: Vec<SessionResult> = handles
        .into_iter()
        .map(|h| h.join().expect("session thread never panics"))
        .collect();
    let wall_s = wall.elapsed().as_secs_f64();
    let report = server.shutdown();

    let mut completed = 0u64;
    let mut aborted = 0u64;
    let mut oracle_mismatches = 0u64;
    let mut untyped_failures = 0u64;
    let mut clean_failures = 0u64;
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut fault_counts = [0u64; 3];
    for r in &results {
        fault_counts[r.fault as usize] += 1;
        if !r.typed_abort {
            untyped_failures += 1;
        }
        match &r.outcome {
            Ok(matches) => {
                completed += 1;
                latencies_ms.push(r.elapsed.as_secs_f64() * 1e3);
                if !matches {
                    oracle_mismatches += 1;
                }
            }
            Err(e) => {
                aborted += 1;
                if r.fault == Fault::None {
                    clean_failures += 1;
                    eprintln!("clean session failed: {e}");
                }
            }
        }
    }
    latencies_ms.sort_by(f64::total_cmp);
    let p50 = percentile(&latencies_ms, 0.50);
    let p99 = percentile(&latencies_ms, 0.99);
    let sessions_per_sec = completed as f64 / wall_s.max(1e-9);
    let abort_rate = aborted as f64 / sessions as f64;

    println!(
        "serve soak: {sessions} sessions ({} clean, {} reset, {} stall), {} completed, {} aborted",
        fault_counts[0], fault_counts[1], fault_counts[2], completed, aborted
    );
    println!(
        "throughput {sessions_per_sec:.1} sessions/s, setup latency p50 {p50:.1} ms, p99 {p99:.1} ms"
    );
    println!(
        "oracle mismatches {oracle_mismatches}, untyped failures {untyped_failures}, max queue depth {} (cap {queue_cap})",
        report.max_queue_depth
    );

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"sessions\": {sessions},\n  \"parties_per_session\": 2,\n  \"rows_per_party\": {ROWS},\n  \"faults\": {{ \"clean\": {}, \"reset\": {}, \"stall\": {} }},\n  \"completed\": {completed},\n  \"aborted\": {aborted},\n  \"abort_rate\": {abort_rate:.4},\n  \"sessions_per_sec\": {sessions_per_sec:.2},\n  \"p50_ms\": {p50:.2},\n  \"p99_ms\": {p99:.2},\n  \"oracle_mismatches\": {oracle_mismatches},\n  \"untyped_failures\": {untyped_failures},\n  \"server\": {{ \"sessions_started\": {}, \"sessions_completed\": {}, \"sessions_aborted\": {}, \"frames_in\": {}, \"frames_routed\": {}, \"spoof_rejected\": {}, \"max_queue_depth\": {}, \"queue_cap\": {queue_cap} }}\n}}\n",
        fault_counts[0],
        fault_counts[1],
        fault_counts[2],
        report.sessions_started,
        report.sessions_completed,
        report.sessions_aborted,
        report.frames_in,
        report.frames_routed,
        report.spoof_rejected,
        report.max_queue_depth,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");

    let queue_bounded = report.max_queue_depth <= queue_cap as u64;
    if completed == 0
        || oracle_mismatches > 0
        || untyped_failures > 0
        || clean_failures > 0
        || !queue_bounded
    {
        eprintln!(
            "soak failed: completed {completed}, oracle mismatches {oracle_mismatches}, \
             untyped {untyped_failures}, clean failures {clean_failures}, queue bounded {queue_bounded}"
        );
        std::process::exit(1);
    }
}
