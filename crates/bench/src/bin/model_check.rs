//! Exhaustive small-world model check of the VFL setup protocol:
//! enumerates *every* fault interleaving (drop / duplicate / delay /
//! crash schedules) the bounded world admits via
//! [`mp_federated::model_check`], then writes `BENCH_check.json` at the
//! repo root. Every field except the `timing` block is deterministic;
//! CI asserts `"violations": 0`. Exits non-zero on any violation.
//!
//! Usage: `model_check [parties] [fault_budget]` (defaults 3 and 2).

use mp_federated::{model_check, small_world_session, CheckConfig};
use std::time::Instant;

fn main() {
    let parties: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let fault_budget: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    let cfg = CheckConfig {
        fault_budget,
        ..CheckConfig::default()
    };
    let (session, policies) = small_world_session(parties).expect("session bounds");

    let start = Instant::now();
    let report = model_check(&session, &policies, &cfg).expect("model check setup");
    let elapsed = start.elapsed().as_secs_f64();
    let states_per_sec = report.total_states as f64 / elapsed.max(1e-9);

    println!(
        "{} parties, budget {}: {} schedules, {} states ({} distinct), {} violations",
        report.parties,
        cfg.fault_budget,
        report.runs,
        report.total_states,
        report.distinct_states,
        report.violations.len()
    );
    println!(
        "{:.2} s, {:.0} states/s, {:.0} schedules/s",
        elapsed,
        states_per_sec,
        report.runs as f64 / elapsed.max(1e-9)
    );
    for v in &report.violations {
        eprintln!("VIOLATION [{}]: {}", v.schedule, v.violation);
    }

    let json = format!(
        "{{\n  \"bench\": \"check\",\n  \"config\": {{ \"parties\": {}, \"max_ticks\": {}, \
         \"fault_budget\": {}, \"max_delay\": {}, \"crash_points\": {} }},\n  \
         \"runs\": {},\n  \"completed\": {},\n  \"aborted_crashed\": {},\n  \
         \"aborted_retries\": {},\n  \"crash_schedules\": {},\n  \
         \"faults_injected\": {{ \"drops\": {}, \"duplicates\": {}, \"delays\": {} }},\n  \
         \"max_depth\": {},\n  \"total_states\": {},\n  \"distinct_states\": {},\n  \
         \"distinct_outcomes\": {},\n  \"pruned_subtrees\": {},\n  \
         \"timing\": {{ \"elapsed_s\": {elapsed:.3}, \"states_per_sec\": {states_per_sec:.0} }},\n  \
         \"violations\": {}\n}}\n",
        report.parties,
        cfg.max_ticks,
        cfg.fault_budget,
        cfg.max_delay,
        cfg.crash_points,
        report.runs,
        report.completed,
        report.aborted_crashed,
        report.aborted_retries,
        report.crash_schedules,
        report.faults_injected[0],
        report.faults_injected[1],
        report.faults_injected[2],
        report.max_depth,
        report.total_states,
        report.distinct_states,
        report.distinct_outcomes,
        report.pruned_subtrees,
        report.violations.len()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_check.json");
    std::fs::write(path, &json).expect("write BENCH_check.json");
    println!("wrote {path}");

    if !report.violations.is_empty() {
        eprintln!("{} invariant violation(s)", report.violations.len());
        std::process::exit(1);
    }
}
