//! Regenerates the paper's Table III (continuous-attribute MSE).
fn main() {
    let rounds = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    print!("{}", mp_bench::tables::table3(rounds));
    println!();
    print!("{}", mp_bench::tables::table3_known_lhs(rounds));
}
