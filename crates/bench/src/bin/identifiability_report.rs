//! A8 (§II, Definition 2.1): identifiability report.
fn main() {
    print!("{}", mp_bench::reports::identifiability_report());
}
