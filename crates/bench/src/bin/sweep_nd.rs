//! A4 (§IV-B): numerical-dependency K sweep.
fn main() {
    print!("{}", mp_bench::sweeps::sweep_nd(1000, 200));
}
