//! Million-row PLI construction bench: single-pass vs sharded.
//!
//! Generates the planted 7-column scale relation
//! ([`mp_datasets::scale_relation`]) and times, per column, the
//! single-pass [`Pli::from_typed`] build against the radix-sharded
//! [`Pli::from_typed_sharded`] build, asserting on every column that the
//! two produce bit-identical partitions. Print-only (no JSON) — the
//! machine-readable scale record is written by the `discovery_1m` bin.
//!
//! Usage: `pli_build_1m [rows] [shards]` (defaults: 1000000, auto).

use mp_relation::par::effective_threads;
use mp_relation::Pli;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let shards: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| effective_threads(0).min(16));

    let start = Instant::now();
    let out = mp_datasets::scale_relation(rows, 7).expect("scale relation generates");
    let rel = out.relation;
    println!(
        "generated {} x {} planted relation in {:.1} ms",
        rel.n_rows(),
        rel.arity(),
        start.elapsed().as_secs_f64() * 1e3
    );
    println!(
        "{:<12} {:>12} {:>12} {:>8}  (shards = {shards})",
        "column", "single ms", "sharded ms", "speedup"
    );

    let mut total_single = 0.0;
    let mut total_sharded = 0.0;
    for a in 0..rel.arity() {
        let col = rel.column(a).expect("column in range");
        let name = &rel.schema().attribute(a).expect("attr in range").name;

        let t = Instant::now();
        let single = Pli::from_typed(col);
        let single_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let sharded = Pli::from_typed_sharded(col, shards);
        let sharded_ms = t.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            single, sharded,
            "sharded PLI build diverged from single-pass on column {name}"
        );
        total_single += single_ms;
        total_sharded += sharded_ms;
        println!(
            "{name:<12} {single_ms:>12.2} {sharded_ms:>12.2} {:>7.2}x",
            single_ms / sharded_ms
        );
    }
    println!(
        "{:<12} {total_single:>12.2} {total_sharded:>12.2} {:>7.2}x",
        "TOTAL",
        total_single / total_sharded
    );
    println!(
        "OK: all {} columns bit-identical across builds",
        rel.arity()
    );
}
