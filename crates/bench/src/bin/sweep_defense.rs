//! A10 (extension): domain-generalization defense sweep.
fn main() {
    print!("{}", mp_bench::sweeps::sweep_defense(1000, 200));
}
