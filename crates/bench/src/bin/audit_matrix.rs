//! Bench + smoke harness for the leakage-audit matrix (`mp_core::matrix`).
//!
//! Sweeps the full shipped configuration — echocardiogram, bank and car
//! across every metadata class × share policy, once per adversary model —
//! timing each adversary's sweep separately, and re-checks the paper's
//! §III-B conclusion (*FDs add no extra leakage over domains*) on the
//! measured cells. Writes `BENCH_audit.json` at the repo root. Exits
//! non-zero if the FD claim fails, any sweep comes back empty, or the
//! thread-count determinism contract breaks.
//!
//! Usage: `audit_matrix [rounds]` (default 24).

use mp_core::{LeakageMatrix, MatrixConfig, MatrixDataset};
use mp_observe::NoopRecorder;
use mp_synth::AdversaryModel;
use std::time::Instant;

const EPSILON: f64 = 0.5;

fn datasets() -> Vec<MatrixDataset> {
    let bank = mp_datasets::bank_table(500);
    let (car_rel, car_deps) = mp_datasets::car_table();
    vec![
        MatrixDataset {
            name: "echocardiogram".to_owned(),
            relation: mp_datasets::echocardiogram(),
            dependencies: mp_datasets::verified_dependencies(),
        },
        MatrixDataset {
            name: "bank".to_owned(),
            relation: bank.relation,
            dependencies: bank.dependencies,
        },
        MatrixDataset {
            name: "car".to_owned(),
            relation: car_rel,
            dependencies: car_deps,
        },
    ]
}

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("rounds must be a number"))
        .unwrap_or(24);
    let adversaries = [
        AdversaryModel::Baseline,
        AdversaryModel::PartialAlignment { aligned_pct: 50 },
        AdversaryModel::Collusion { parties: 2 },
        AdversaryModel::NoisyDomains { noise_pct: 10 },
    ];
    let datasets = datasets();

    // One timed sweep per adversary model, so the per-model cost is
    // visible in the artefact (collusion pools packages, partial scores
    // fewer rows — their costs differ).
    let mut adversary_ms = Vec::new();
    let mut all_cells = Vec::new();
    let mut total_rounds = 0u64;
    let started = Instant::now();
    for adversary in adversaries {
        let config = MatrixConfig {
            rounds,
            epsilon: EPSILON,
            threads: 0,
            adversaries: vec![adversary],
        };
        let t0 = Instant::now();
        let matrix =
            LeakageMatrix::run(&datasets, &config, &NoopRecorder).expect("matrix sweep failed");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<10} {:>4} cells in {ms:>8.1} ms",
            adversary.label(),
            matrix.cells.len()
        );
        total_rounds += (matrix.cells.len() * rounds * 2) as u64;
        adversary_ms.push((adversary.label(), ms));
        all_cells.extend(matrix.cells);
    }
    let wall_s = started.elapsed().as_secs_f64();

    // Recombine the sweeps so the §III-B check sees every adversary.
    let combined = LeakageMatrix {
        cells: all_cells,
        rounds,
        epsilon: EPSILON,
    };
    let violations = combined.fd_adds_no_extra_leakage();
    let fd_clean = violations.is_empty();
    for v in &violations {
        eprintln!("§III-B violation: {v}");
    }

    // Determinism spot-check: one dataset, threads 1 vs 4, byte-compare.
    let det_config = |threads| MatrixConfig {
        rounds: 6,
        epsilon: EPSILON,
        threads,
        adversaries: vec![AdversaryModel::Baseline],
    };
    let ds = &datasets[..1];
    let json_t1 = LeakageMatrix::run(ds, &det_config(1), &NoopRecorder)
        .expect("t1 sweep")
        .to_json();
    let json_t4 = LeakageMatrix::run(ds, &det_config(4), &NoopRecorder)
        .expect("t4 sweep")
        .to_json();
    let deterministic = json_t1 == json_t4;

    let cells = combined.cells.len();
    let leaking = combined.cells.iter().filter(|c| c.leaks).count();
    let cells_per_sec = cells as f64 / wall_s.max(1e-9);
    println!(
        "audit matrix: {cells} cells ({leaking} leaking), {rounds} rounds, \
         {total_rounds} synth rounds, {cells_per_sec:.1} cells/s, fd clean {fd_clean}, \
         thread-determinism {deterministic}"
    );

    let adversary_json = adversary_ms
        .iter()
        .map(|(label, ms)| format!("\"{label}\": {ms:.2}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"audit\",\n  \"cells\": {cells},\n  \"rounds\": {rounds},\n  \"synth_rounds\": {total_rounds},\n  \"cells_per_sec\": {cells_per_sec:.2},\n  \"adversary_ms\": {{ {adversary_json} }},\n  \"fd_no_extra_leakage\": {fd_clean},\n  \"thread_deterministic\": {deterministic},\n  \"leaking_cells\": {leaking},\n  \"schema_version\": 1\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_audit.json");
    std::fs::write(path, &json).expect("write BENCH_audit.json");
    println!("wrote {path}");

    if cells == 0 || !fd_clean || !deterministic {
        eprintln!(
            "audit matrix smoke failed: cells {cells}, fd clean {fd_clean}, \
             deterministic {deterministic}"
        );
        std::process::exit(1);
    }
}
