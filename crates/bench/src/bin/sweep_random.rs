//! A1 (§III-A): random-generation leakage sweep.
fn main() {
    print!("{}", mp_bench::sweeps::sweep_random(1000, 200));
}
