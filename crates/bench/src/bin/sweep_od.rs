//! A5 (§IV-C): order-dependency interval-overlap sweep.
fn main() {
    print!("{}", mp_bench::sweeps::sweep_od(2000));
}
