//! A11 (extension): HFL vs VFL alignment contrast.
fn main() {
    print!("{}", mp_bench::reports::hfl_report());
}
