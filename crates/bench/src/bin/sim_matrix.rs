//! CI fault-injection matrix: 32 seeds × 4 fault profiles through the
//! invariant harness ([`mp_federated::check_invariants`]), plus a
//! wall-clock-vs-fault-rate sweep. Exits non-zero on the first invariant
//! violation; writes `BENCH_sim.json` at the repo root.
//!
//! Usage: `sim_matrix [seeds]` (default 32).

use mp_federated::{
    check_invariants, simulate_setup, FaultPlan, MultiPartySession, Party, RetryConfig,
    FAULT_PROFILES,
};
use mp_metadata::SharePolicy;
use std::time::Instant;

fn session(rows: usize) -> MultiPartySession {
    let data = mp_datasets::fintech_scenario(rows, 42);
    let bank = Party::new("bank", data.bank.relation, 0, data.bank.dependencies).unwrap();
    let ecom = Party::new(
        "ecommerce",
        data.ecommerce.relation,
        0,
        data.ecommerce.dependencies,
    )
    .unwrap();
    MultiPartySession::new(vec![bank, ecom], 0xF1A7)
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let sess = session(120);
    let policies = vec![SharePolicy::PAPER_RECOMMENDED, SharePolicy::FULL];
    let retry = RetryConfig::default();

    // --- The invariant matrix. ------------------------------------------
    let mut violations = 0usize;
    let mut profile_rows = Vec::new();
    for profile in FAULT_PROFILES {
        let mut completed = 0usize;
        let mut aborted = 0usize;
        let mut total_ms = 0.0f64;
        let mut total_ticks = 0u64;
        let mut total_sent = 0usize;
        for seed in 0..seeds {
            let plan = FaultPlan::from_names(profile, seed, sess.parties.len()).unwrap();
            let start = Instant::now();
            match check_invariants(&sess, &policies, &plan, &retry) {
                Ok(report) => {
                    if report.completed {
                        completed += 1;
                    } else {
                        aborted += 1;
                    }
                    total_ticks += report.ticks;
                    total_sent += report.summary.sent;
                }
                Err(v) => {
                    violations += 1;
                    eprintln!("VIOLATION [{profile}, seed {seed}]: {v}");
                }
            }
            total_ms += start.elapsed().as_secs_f64() * 1e3;
        }
        let runs = seeds as f64;
        println!(
            "{profile:>8}: {completed} completed, {aborted} aborted, {:.2} ms/run, {:.0} ticks/run",
            total_ms / runs,
            total_ticks as f64 / runs
        );
        profile_rows.push(format!(
            "{{ \"profile\": \"{profile}\", \"seeds\": {seeds}, \"completed\": {completed}, \
             \"aborted\": {aborted}, \"mean_ms\": {:.3}, \"mean_ticks\": {:.1}, \"mean_sent\": {:.1} }}",
            total_ms / runs,
            total_ticks as f64 / runs,
            total_sent as f64 / runs
        ));
    }

    // --- Setup wall-clock vs fault (drop) rate. -------------------------
    let mut rate_rows = Vec::new();
    for drop_pct in [0u32, 10, 20, 30, 40] {
        let mut ms = Vec::new();
        let mut retx = 0usize;
        let mut ticks = 0u64;
        for seed in 0..seeds.min(16) {
            let plan = FaultPlan {
                drop_rate: f64::from(drop_pct) / 100.0,
                ..FaultPlan::fault_free(seed)
            };
            let start = Instant::now();
            let sim = simulate_setup(&sess, &policies, &plan, &retry);
            ms.push(start.elapsed().as_secs_f64() * 1e3);
            retx += sim.summary.retransmissions;
            ticks += sim.ticks;
        }
        ms.sort_by(f64::total_cmp);
        let median = ms[ms.len() / 2];
        let runs = ms.len() as f64;
        println!(
            "drop {drop_pct:>2}%: median {median:.2} ms, {:.1} retransmissions/run, {:.0} ticks/run",
            retx as f64 / runs,
            ticks as f64 / runs
        );
        rate_rows.push(format!(
            "{{ \"drop_rate\": {:.2}, \"median_ms\": {median:.3}, \"mean_retransmissions\": {:.2}, \"mean_ticks\": {:.1} }}",
            f64::from(drop_pct) / 100.0,
            retx as f64 / runs,
            ticks as f64 / runs
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"sim\",\n  \"seeds\": {seeds},\n  \"profiles\": [\n    {}\n  ],\n  \"wallclock_vs_drop_rate\": [\n    {}\n  ],\n  \"violations\": {violations}\n}}\n",
        profile_rows.join(",\n    "),
        rate_rows.join(",\n    ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &json).expect("write BENCH_sim.json");
    println!("wrote {path}");

    if violations > 0 {
        eprintln!("{violations} invariant violation(s)");
        std::process::exit(1);
    }
}
