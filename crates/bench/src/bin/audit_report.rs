//! One-call privacy audit of the evaluation dataset (the consolidated
//! PrivacyAudit API over echocardiogram with its discovered dependencies).
use mp_core::{AuditConfig, PrivacyAudit};
use mp_discovery::{DependencyProfile, ProfileConfig};

fn main() {
    let rel = mp_datasets::echocardiogram();
    let profile = DependencyProfile::discover(&rel, &ProfileConfig::paper()).expect("profiling");
    let audit =
        PrivacyAudit::run(&rel, profile.to_dependencies(), &AuditConfig::default()).expect("audit");
    print!("{}", audit.render(&rel));
}
