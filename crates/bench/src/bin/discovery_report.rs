//! Dependency-discovery profile of the evaluation dataset.
fn main() {
    print!("{}", mp_bench::reports::discovery_report());
}
