//! A7 (§IV-E): ordered-FD random-walk sweep.
fn main() {
    print!("{}", mp_bench::sweeps::sweep_ofd(400));
}
