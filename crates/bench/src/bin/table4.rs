//! Regenerates the paper's Table IV (categorical positive matches).
fn main() {
    let rounds = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    print!("{}", mp_bench::tables::table4(rounds));
    println!();
    print!("{}", mp_bench::tables::table4_known_lhs(rounds));
}
