//! A3 (§IV-A): AFD g3-budget sweep.
fn main() {
    print!("{}", mp_bench::sweeps::sweep_afd(1000, 200));
}
