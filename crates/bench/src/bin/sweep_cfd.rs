//! A9 (extension): constant-CFD support sweep.
fn main() {
    print!("{}", mp_bench::sweeps::sweep_cfd(1000, 200));
}
