//! A2 (§III-B): FD-driven vs random generation sweep.
fn main() {
    print!("{}", mp_bench::sweeps::sweep_fd(1000, 200));
}
