//! Runs every reproduction target in sequence (tables, sweeps, reports) —
//! the one-command regeneration of the paper's evaluation.
fn main() {
    let sep = "\n════════════════════════════════════════════════════════════════\n";
    print!("{}", mp_bench::tables::table4(200));
    print!("{sep}");
    print!("{}", mp_bench::tables::table3(200));
    print!("{sep}");
    print!("{}", mp_bench::sweeps::sweep_random(1000, 100));
    print!("{sep}");
    print!("{}", mp_bench::sweeps::sweep_fd(1000, 100));
    print!("{sep}");
    print!("{}", mp_bench::sweeps::sweep_afd(1000, 100));
    print!("{sep}");
    print!("{}", mp_bench::sweeps::sweep_nd(1000, 100));
    print!("{sep}");
    print!("{}", mp_bench::sweeps::sweep_od(1000));
    print!("{sep}");
    print!("{}", mp_bench::sweeps::sweep_dd(1000, 100));
    print!("{sep}");
    print!("{}", mp_bench::sweeps::sweep_ofd(200));
    print!("{sep}");
    print!("{}", mp_bench::sweeps::sweep_cfd(1000, 100));
    print!("{sep}");
    print!("{}", mp_bench::sweeps::sweep_defense(1000, 100));
    print!("{sep}");
    print!("{}", mp_bench::sweeps::sweep_distribution(1000, 100));
    print!("{sep}");
    print!("{}", mp_bench::reports::hfl_report());
    print!("{sep}");
    print!("{}", mp_bench::reports::identifiability_report());
    print!("{sep}");
    print!("{}", mp_bench::reports::discovery_report());
    print!("{sep}");
    // Consolidated audit of the evaluation dataset (extension API).
    let rel = mp_datasets::echocardiogram();
    let profile =
        mp_discovery::DependencyProfile::discover(&rel, &mp_discovery::ProfileConfig::paper())
            .expect("profiling");
    let audit = mp_core::PrivacyAudit::run(
        &rel,
        profile.to_dependencies(),
        &mp_core::AuditConfig::default(),
    )
    .expect("audit");
    print!("{}", audit.render(&rel));
}
