//! A12 (extension): distribution-sharing leakage sweep.
fn main() {
    print!("{}", mp_bench::sweeps::sweep_distribution(1000, 200));
}
