//! CI overhead guard for the mp-observe instrumentation.
//!
//! The observability layer promises to be effectively free when nobody is
//! listening *and* cheap when a [`mp_observe::Registry`] is attached:
//! handles are resolved once per component and updates are single relaxed
//! atomic operations. This binary measures the `pli_cache_10k_rows`-style
//! workload (FD discovery over the all-classes synthetic relation, warm
//! shared cache) with the default no-op recorder and with a live
//! registry, and exits non-zero if the observed run is more than
//! `OBSERVE_OVERHEAD_PCT` percent slower (default 5).
//!
//! Medians over interleaved repetitions keep the guard stable on noisy
//! CI machines; raise the threshold via the environment if a runner is
//! pathological, e.g. `OBSERVE_OVERHEAD_PCT=10 observe_overhead`.
//!
//! Usage: `observe_overhead [rows] [reps]` (defaults: 10000, 7).

use mp_datasets::all_classes_spec;
use mp_discovery::{discover_fds_with, DiscoveryContext, ParallelConfig, TaneConfig};
use mp_observe::{Recorder, Registry};
use mp_relation::csv::{read_stream, read_stream_observed, write_str, CsvOptions};
use mp_relation::Relation;
use std::sync::Arc;
use std::time::Instant;

/// One warm discovery pass: a cold pass fills the shared PLI cache, then
/// the timed pass measures the steady state the 5% promise is about.
/// Sequential contexts on both sides — the guard measures recorder cost,
/// not scheduler jitter.
fn timed_pass(rel: &Relation, config: &TaneConfig, recorder: Option<Arc<dyn Recorder>>) -> u128 {
    let ctx = match recorder {
        None => DiscoveryContext::new(rel, ParallelConfig::sequential()),
        Some(r) => DiscoveryContext::instrumented(rel, ParallelConfig::sequential(), r),
    };
    discover_fds_with(&ctx, config).expect("warm-up pass");
    let start = Instant::now();
    discover_fds_with(&ctx, config).expect("timed pass");
    start.elapsed().as_nanos()
}

fn median(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One chunked-ingest pass over in-memory CSV bytes, with or without a
/// live recorder. Returns elapsed nanos; asserts observation passivity —
/// the observed parse must produce a bit-identical relation.
fn timed_ingest(text: &str, baseline: &Relation, recorder: Option<Arc<dyn Recorder>>) -> u128 {
    let opts = CsvOptions::default();
    let start = Instant::now();
    let rel = match &recorder {
        None => read_stream(text.as_bytes(), &opts),
        Some(r) => read_stream_observed(text.as_bytes(), &opts, r.as_ref()),
    }
    .expect("ingest pass");
    let elapsed = start.elapsed().as_nanos();
    assert_eq!(
        &rel, baseline,
        "observed ingest must be passive (bit-identical relation)"
    );
    elapsed
}

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(7).max(1);
    let threshold_pct: f64 = std::env::var("OBSERVE_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);

    let rel = all_classes_spec(rows, 7)
        .generate()
        .expect("generation")
        .relation;
    let config = TaneConfig {
        max_lhs: 2,
        g3_threshold: 0.0,
        ..TaneConfig::default()
    };

    // Interleaved sampling so drift (thermal, noisy neighbours) hits both
    // sides equally.
    let mut noop_ns = Vec::with_capacity(reps);
    let mut live_ns = Vec::with_capacity(reps);
    for _ in 0..reps {
        noop_ns.push(timed_pass(&rel, &config, None));
        live_ns.push(timed_pass(
            &rel,
            &config,
            Some(Arc::new(Registry::new()) as Arc<dyn Recorder>),
        ));
    }
    let base = median(noop_ns);
    let live = median(live_ns);

    let overhead_pct = 100.0 * (live as f64 - base as f64) / base as f64;
    println!(
        "observe overhead guard: {rows} rows, {reps} reps (median of warm passes)\n\
         noop recorder:  {base:>12} ns\n\
         live registry:  {live:>12} ns\n\
         overhead:       {overhead_pct:>11.2} % (threshold {threshold_pct} %)"
    );

    // Ingest passivity: the chunked CSV decoder with a live registry must
    // stay within the same envelope, and (asserted inside the pass) must
    // produce a bit-identical relation to the unobserved decoder.
    let text = write_str(&rel);
    let baseline = read_stream(text.as_bytes(), &CsvOptions::default()).expect("baseline parse");
    let mut ingest_noop_ns = Vec::with_capacity(reps);
    let mut ingest_live_ns = Vec::with_capacity(reps);
    for _ in 0..reps {
        ingest_noop_ns.push(timed_ingest(&text, &baseline, None));
        ingest_live_ns.push(timed_ingest(
            &text,
            &baseline,
            Some(Arc::new(Registry::new()) as Arc<dyn Recorder>),
        ));
    }
    let ingest_base = median(ingest_noop_ns);
    let ingest_live = median(ingest_live_ns);
    let ingest_pct = 100.0 * (ingest_live as f64 - ingest_base as f64) / ingest_base as f64;
    println!(
        "ingest passivity guard: {} CSV bytes\n\
         noop ingest:    {ingest_base:>12} ns\n\
         live ingest:    {ingest_live:>12} ns\n\
         overhead:       {ingest_pct:>11.2} % (threshold {threshold_pct} %)",
        text.len()
    );

    let mut failed = false;
    if overhead_pct > threshold_pct {
        eprintln!("FAIL: live metrics slow discovery by {overhead_pct:.2}% (> {threshold_pct}%)");
        failed = true;
    }
    if ingest_pct > threshold_pct {
        eprintln!("FAIL: live metrics slow ingest by {ingest_pct:.2}% (> {threshold_pct}%)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK");
}
