//! Additional reproduction reports: identifiability (Definition 2.1 /
//! experiment A8) and the dependency-discovery profile of the evaluation
//! dataset.

use mp_core::{
    categorical_matches, identifiability_rate, uniqueness_profile, ExperimentConfig, TextTable,
};
use mp_datasets::{echocardiogram, employee};
use mp_discovery::{DependencyProfile, ProfileConfig};
use mp_federated::{horizontal_split, permutation_baseline};
use mp_metadata::MetadataPackage;
use mp_synth::{Adversary, SynthConfig};

/// A8: identifiability report over both datasets.
pub fn identifiability_report() -> String {
    let mut out = String::from("A8 §II Definition 2.1 — identifiability\n\n");
    for (name, rel) in [
        ("employee (Table II)", employee()),
        ("echocardiogram", echocardiogram()),
    ] {
        out.push_str(&format!("{name} ({} rows):\n", rel.n_rows()));
        let mut t = TextTable::new(vec!["subset size ≤".into(), "identifiable tuples".into()]);
        for size in 1..=3 {
            let rate = identifiability_rate(&rel, size).expect("rate");
            t.push_row(vec![size.to_string(), format!("{:.1}%", rate * 100.0)]);
        }
        out.push_str(&t.render());
        let unique = uniqueness_profile(&rel).expect("profile");
        out.push_str(&format!(
            "tuples unique per single attribute: {unique:?}\n\n"
        ));
    }
    out.push_str(
        "Reading: near-total identifiability is what makes the index-aligned\n\
         leakage definitions (2.2/2.3) the right granularity for VFL.\n",
    );
    out
}

/// Discovery profile of the echocardiogram reconstruction with the
/// paper's pairwise configuration.
pub fn discovery_report() -> String {
    let rel = echocardiogram();
    let profile = DependencyProfile::discover(&rel, &ProfileConfig::paper()).expect("profiling");
    let mut out = format!(
        "Dependency profile of echocardiogram ({} rows × {} attrs), pairwise config\n\n",
        rel.n_rows(),
        rel.arity()
    );
    out.push_str(&format!(
        "counts: {} FDs, {} AFDs, {} ODs, {} NDs, {} DDs, {} OFDs, {} CFDs, {} MFDs\n\n",
        profile.fds.len(),
        profile.afds.len(),
        profile.ods.len(),
        profile.nds.len(),
        profile.dds.len(),
        profile.ofds.len(),
        profile.cfds.len(),
        profile.mfds.len()
    ));
    for dep in profile.to_dependencies() {
        out.push_str(&format!("  {dep}\n"));
    }
    for mfd in &profile.mfds {
        out.push_str(&format!("  {mfd}\n"));
    }
    out
}

/// A11 (extension, paper §I): HFL vs VFL alignment contrast — without PSI,
/// index-aligned matching carries no more signal than random permutation,
/// which is why the paper's leakage definitions are VFL-specific.
pub fn hfl_report() -> String {
    let real = echocardiogram();
    let parts = horizontal_split(&real, 2).expect("split");
    let (mine, theirs) = (&parts[0], &parts[1]);
    let pkg = MetadataPackage::describe("me", mine, vec![]).expect("describe");
    let adversary = Adversary::new(pkg);
    let syn = adversary
        .synthesize(&SynthConfig::random_baseline(theirs.n_rows(), 17))
        .expect("synthesize");
    let config = ExperimentConfig {
        rounds: 200,
        base_seed: 5,
        epsilon: 0.0,
    };

    let mut t = TextTable::new(vec![
        "attr".into(),
        "index-aligned matches".into(),
        "permutation baseline".into(),
    ]);
    for &attr in &mp_datasets::CATEGORICAL_ATTRS {
        let aligned = categorical_matches(theirs, &syn, attr).expect("matches") as f64;
        let baseline = permutation_baseline(theirs, &syn, attr, &config).expect("baseline");
        t.push_row(vec![
            attr.to_string(),
            format!("{aligned:.1}"),
            format!("{baseline:.2}"),
        ]);
    }
    format!(
        "A11 extension: HFL alignment contrast (two horizontal halves of \
         echocardiogram; adversary knows the shared schema + its own slice's \
         domains)\n{}\nWithout a PSI-fixed tuple index the aligned count is \
         statistically the permutation baseline — the reason the paper's \
         definitions target VFL.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifiability_report_renders() {
        let r = identifiability_report();
        assert!(r.contains("employee"));
        assert!(r.contains("echocardiogram"));
        assert!(r.contains("100.0%"));
    }

    #[test]
    fn hfl_report_renders() {
        let r = hfl_report();
        assert!(r.contains("permutation"));
        assert!(r.lines().count() > 6);
    }

    #[test]
    fn discovery_report_lists_planted_classes() {
        let r = discovery_report();
        assert!(r.contains("FD "));
        assert!(r.contains("OD "));
        assert!(r.contains("ND "));
    }
}
