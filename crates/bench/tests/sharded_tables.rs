//! Shard-merge equivalence at the reproduction surface: running the
//! discovery engine with forced PLI sharding (and a byte budget) must
//! leave the paper-table outputs byte-identical and find exactly the
//! FDs the sequential single-pass engine finds.

use mp_bench::tables::{table3, table4};
use mp_discovery::{
    discover_fds, discover_fds_with, DiscoveryContext, MemoryBudget, ParallelConfig, TaneConfig,
};
use mp_metadata::Fd;

const ROUNDS: usize = 3;

fn canon(fds: &[Fd]) -> Vec<(Vec<usize>, usize)> {
    let mut v: Vec<(Vec<usize>, usize)> = fds
        .iter()
        .map(|f| (f.lhs.indices().to_vec(), f.rhs))
        .collect();
    v.sort();
    v
}

#[test]
fn sharded_discovery_matches_sequential_on_echocardiogram() {
    let rel = mp_datasets::echocardiogram();
    let config = TaneConfig {
        max_lhs: 2,
        g3_threshold: 0.0,
        parallel: ParallelConfig::sequential(),
    };
    let sequential = discover_fds(&rel, &config).unwrap();

    for shards in [2usize, 7, 64] {
        let ctx = DiscoveryContext::with_budget(
            &rel,
            ParallelConfig {
                threads: 2,
                cache_capacity: 4096,
                pli_shards: shards,
                ..ParallelConfig::default()
            },
            MemoryBudget::from_bytes(4096),
        );
        let sharded = discover_fds_with(&ctx, &config).unwrap();
        assert_eq!(
            canon(&sharded),
            canon(&sequential),
            "sharded ({shards}) discovery diverged from the sequential engine"
        );
    }
}

#[test]
fn table_reproduction_is_byte_identical_around_sharded_discovery() {
    // The rendered Table III/IV strings are pure functions of the dataset
    // and round count; interleaving sharded, byte-budgeted discovery runs
    // must not perturb a single byte of them.
    let t3_before = table3(ROUNDS);
    let t4_before = table4(ROUNDS);

    let rel = mp_datasets::echocardiogram();
    let config = TaneConfig {
        max_lhs: 2,
        g3_threshold: 0.0,
        parallel: ParallelConfig {
            threads: 4,
            cache_capacity: 4096,
            pli_shards: 7,
            cache_budget_bytes: 8192,
        },
    };
    discover_fds(&rel, &config).unwrap();

    assert_eq!(
        table3(ROUNDS),
        t3_before,
        "table3 output drifted across sharded discovery"
    );
    assert_eq!(
        table4(ROUNDS),
        t4_before,
        "table4 output drifted across sharded discovery"
    );
}
