//! Backpressure regression test for `mpriv serve`: one deliberately
//! stalled session must not block, slow down past budget, or corrupt the
//! eight clean sessions sharing the daemon — and the stalled session
//! itself must die with a *typed* error while every queue stays within
//! its bound.

use mp_federated::net::{FramedStream, ReadStep, SessionFrame, SocketStream};
use mp_federated::{
    outcome_matches, run_client_session, ClientConfig, MultiPartySession, Party, RetryConfig,
    ServeConfig, Server, SetupError,
};
use mp_metadata::SharePolicy;
use mp_observe::NoopRecorder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SALT: u64 = 0xF1A7;
const POLICIES: [SharePolicy; 2] = [SharePolicy::PAPER_RECOMMENDED, SharePolicy::FULL];

fn parties() -> Vec<Party> {
    let data = mp_datasets::fintech_scenario(30, 42);
    vec![
        Party::new("bank", data.bank.relation, 0, data.bank.dependencies).unwrap(),
        Party::new(
            "ecommerce",
            data.ecommerce.relation,
            0,
            data.ecommerce.dependencies,
        )
        .unwrap(),
    ]
}

fn fast_retry() -> RetryConfig {
    RetryConfig {
        ack_timeout: 8,
        max_retries: 3,
        backoff_cap: 16,
        max_ticks: 2_000,
    }
}

/// Party 1 of the stalled session: joins, then never reads or writes
/// again until the server or peer tears the session down.
fn stalled_party(addr: String, session: u64, release: Arc<AtomicBool>) {
    let stream = SocketStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(2)))
        .expect("timeout");
    let mut framed = FramedStream::new(stream);
    framed
        .write_frame(&SessionFrame::Hello {
            session,
            party: 1,
            n_parties: 2,
        })
        .expect("hello");
    loop {
        match framed.read_step() {
            Ok(ReadStep::Frame(SessionFrame::Welcome { .. })) => break,
            Ok(ReadStep::Eof) | Err(_) => return,
            _ => {}
        }
    }
    // Assembled. Now stall: hold the connection open without touching it
    // until the clean sessions have all finished.
    while !release.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    // Then drain whatever verdict the server reached.
    loop {
        match framed.read_step() {
            Ok(ReadStep::Frame(SessionFrame::Abort(_))) | Ok(ReadStep::Eof) | Err(_) => return,
            _ => {}
        }
    }
}

#[test]
fn one_stalled_session_never_blocks_eight_clean_ones() {
    let parties = parties();
    let reference = MultiPartySession::new(parties.clone(), SALT)
        .run_setup(&POLICIES)
        .expect("reference setup");
    let retry = fast_retry();
    let cfg = ServeConfig {
        io_tick: Duration::from_millis(1),
        ..ServeConfig::from_retry(&retry)
    };
    let queue_cap = cfg.queue_cap as u64;
    let server = Server::start("127.0.0.1:0", cfg, Arc::new(NoopRecorder)).expect("bind");
    let addr = server.addr().to_owned();

    // Session 1: the stalled one. Its honest party 0 will exhaust
    // retries against a peer that never answers.
    let release = Arc::new(AtomicBool::new(false));
    let staller = {
        let addr = addr.clone();
        let release = Arc::clone(&release);
        std::thread::spawn(move || stalled_party(addr, 1, release))
    };
    let stalled_honest = {
        let addr = addr.clone();
        let party = parties[0].clone();
        std::thread::spawn(move || {
            let cfg = ClientConfig::new(1, 0, 2, fast_retry());
            run_client_session(&addr, &cfg, &party, &POLICIES[0], SALT, &NoopRecorder)
        })
    };

    // Sessions 2..=9: clean, all concurrent with the stall. The budget is
    // the point of the test: with cross-session blocking, these would sit
    // behind the stalled session's supervision timeouts.
    let clean_start = Instant::now();
    let clean: Vec<_> = (2u64..=9)
        .map(|s| {
            let addr = addr.clone();
            let parties = parties.clone();
            std::thread::spawn(move || {
                let handles: Vec<_> = (0..2usize)
                    .map(|p| {
                        let addr = addr.clone();
                        let party = parties[p].clone();
                        std::thread::spawn(move || {
                            let cfg = ClientConfig::new(s, p, 2, fast_retry());
                            run_client_session(
                                &addr,
                                &cfg,
                                &party,
                                &POLICIES[p],
                                SALT,
                                &NoopRecorder,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("party thread"))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for h in clean {
        for (p, res) in h.join().expect("session thread").into_iter().enumerate() {
            let outcome = res.expect("clean session must complete despite the stalled one");
            assert!(
                outcome_matches(&outcome, p, &reference),
                "party {p} diverged from the in-process reference"
            );
        }
    }
    let clean_elapsed = clean_start.elapsed();
    // One full retransmission ladder of the *stalled* session, in wall
    // time, is far more than 8 independent clean sessions need — unless
    // they queue behind the stall. Generous to stay robust on slow CI.
    assert!(
        clean_elapsed < Duration::from_secs(20),
        "clean sessions took {clean_elapsed:?}: cross-session blocking"
    );

    // The stalled session must fail with a typed error, not hang.
    let stalled_result = stalled_honest.join().expect("honest party thread");
    release.store(true, Ordering::SeqCst);
    staller.join().expect("staller thread");
    let err = stalled_result.expect_err("stalled session cannot complete");
    assert!(
        matches!(
            err,
            SetupError::RetriesExhausted { .. }
                | SetupError::PartyCrashed { .. }
                | SetupError::Stalled { .. }
                | SetupError::Data(_)
        ),
        "stall must surface as a typed abort, got {err}"
    );

    let report = server.shutdown();
    assert_eq!(report.sessions_completed, 8, "all clean sessions complete");
    assert!(report.sessions_aborted >= 1, "the stalled session aborts");
    assert!(
        report.max_queue_depth <= queue_cap,
        "queue depth {} exceeded cap {queue_cap}",
        report.max_queue_depth
    );
}
