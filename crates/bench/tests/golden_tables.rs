//! Golden regression tests for the paper-table binaries.
//!
//! `table3` / `table4` regenerate the paper's Tables III/IV from the
//! echocardiogram dataset with seeded attack rounds, so their output is
//! byte-deterministic for a fixed round count. These tests pin the exact
//! output at `rounds = 25` against checked-in golden files — any drift in
//! the dataset loader, dependency discovery, synthesis attack or table
//! formatting shows up as a diff here.
//!
//! To regenerate after an *intentional* change:
//! `cargo run -p mp-bench --bin table3 -- 25 > crates/bench/tests/golden/table3_rounds25.txt`
//! (and likewise for `table4`).

use std::process::Command;

const ROUNDS: &str = "25";

fn run(bin: &str, golden: &str) {
    let out = Command::new(bin).arg(ROUNDS).output().unwrap();
    assert!(
        out.status.success(),
        "{bin} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).unwrap();
    let want = std::fs::read_to_string(golden).unwrap();
    assert_eq!(
        got, want,
        "output of {bin} drifted from {golden}; regenerate the golden file if the change is intended"
    );
}

#[test]
fn table3_matches_golden_output() {
    run(
        env!("CARGO_BIN_EXE_table3"),
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/table3_rounds25.txt"
        ),
    );
}

#[test]
fn table4_matches_golden_output() {
    run(
        env!("CARGO_BIN_EXE_table4"),
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/table4_rounds25.txt"
        ),
    );
}

#[test]
fn table_binaries_are_run_to_run_deterministic() {
    for bin in [env!("CARGO_BIN_EXE_table3"), env!("CARGO_BIN_EXE_table4")] {
        let a = Command::new(bin).arg(ROUNDS).output().unwrap();
        let b = Command::new(bin).arg(ROUNDS).output().unwrap();
        assert_eq!(a.stdout, b.stdout, "{bin} output varies across runs");
    }
}
