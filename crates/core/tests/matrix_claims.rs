//! The paper's conclusions as machine-checked properties of the leakage
//! matrix (ISSUE 9, satellite 3):
//!
//! 1. **FDs add no extra leakage over domains** (§III-B) — for every
//!    dataset × policy × adversary coordinate.
//! 2. **Partial-alignment leakage is monotone in the aligned fraction**
//!    — *exactly*, because aligned subsets are nested and partial
//!    adversaries share the baseline's generation streams.
//! 3. **Collusion leakage bounds any single party's** — the pooled
//!    package's analytical expectation dominates every view's, and the
//!    pool of all views reassembles full knowledge.
//! 4. **Noisy domains mitigate monotonically** — the analytical
//!    expectation never increases with the noise level.

use mp_core::{seed_for, LeakageMatrix, MatrixConfig, MatrixDataset};
use mp_metadata::MetadataPackage;
use mp_observe::NoopRecorder;
use mp_relation::{Attribute, Relation, Schema, Value};
use mp_synth::{Adversary, AdversaryModel, SynthConfig};
use proptest::prelude::*;

fn echo_dataset() -> MatrixDataset {
    MatrixDataset {
        name: "echocardiogram".to_owned(),
        relation: mp_datasets::echocardiogram(),
        dependencies: mp_datasets::verified_dependencies(),
    }
}

fn car_dataset() -> MatrixDataset {
    let (relation, dependencies) = mp_datasets::car_table();
    MatrixDataset {
        name: "car".to_owned(),
        relation,
        dependencies,
    }
}

fn bank_dataset() -> MatrixDataset {
    let party = mp_datasets::bank_table(200);
    MatrixDataset {
        name: "bank".to_owned(),
        relation: party.relation,
        dependencies: party.dependencies,
    }
}

/// A small synthetic table for the proptests: categorical key, skewed
/// categorical, bounded continuous — enough structure that domains leak.
fn tiny_dataset(n: usize) -> MatrixDataset {
    let schema = Schema::new(vec![
        Attribute::categorical("dept"),
        Attribute::continuous("salary"),
        Attribute::categorical("grade"),
    ])
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            vec![
                ["Sales", "CS", "Mgmt", "Legal"][i % 4].into(),
                (20.0 + (i % 6) as f64).into(),
                Value::Int((i % 3) as i64),
            ]
        })
        .collect();
    MatrixDataset {
        name: "tiny".to_owned(),
        relation: Relation::from_rows(schema, rows).unwrap(),
        dependencies: vec![mp_metadata::Fd::new(0usize, 2).into()],
    }
}

fn config(rounds: usize, adversaries: Vec<AdversaryModel>) -> MatrixConfig {
    MatrixConfig {
        rounds,
        epsilon: 0.5,
        threads: 0,
        adversaries,
    }
}

const ALL_ADVERSARIES: [AdversaryModel; 4] = [
    AdversaryModel::Baseline,
    AdversaryModel::PartialAlignment { aligned_pct: 50 },
    AdversaryModel::Collusion { parties: 2 },
    AdversaryModel::NoisyDomains { noise_pct: 10 },
];

// ---- claim 1: FDs add no extra leakage over domains ----------------------

#[test]
fn fd_adds_no_extra_leakage_on_every_dataset_policy_adversary_cell() {
    let datasets = [echo_dataset(), bank_dataset(), car_dataset()];
    let matrix = LeakageMatrix::run(
        &datasets,
        &config(8, ALL_ADVERSARIES.to_vec()),
        &NoopRecorder,
    )
    .unwrap();
    // 3 datasets × 4 adversaries × 7 classes × 5 policies.
    assert_eq!(matrix.cells.len(), 420);
    let violations = matrix.fd_adds_no_extra_leakage();
    assert!(violations.is_empty(), "§III-B violated at: {violations:?}");
}

// ---- claim 2: partial alignment is exactly monotone in f -----------------

#[test]
fn partial_alignment_leakage_monotone_in_aligned_fraction() {
    let datasets = [tiny_dataset(48), car_dataset()];
    let fractions = [10u8, 25, 50, 75, 100];
    let adversaries: Vec<AdversaryModel> = fractions
        .iter()
        .map(|&aligned_pct| AdversaryModel::PartialAlignment { aligned_pct })
        .collect();
    let matrix = LeakageMatrix::run(&datasets, &config(5, adversaries), &NoopRecorder).unwrap();
    for ds in ["tiny", "car"] {
        for cell in matrix.cells.iter().filter(|c| c.dataset == ds) {
            // Compare each fraction against the next one up.
            for window in fractions.windows(2) {
                let (lo, hi) = (window[0], window[1]);
                let low = matrix
                    .find(ds, cell.class, cell.policy, &format!("partial{lo}"))
                    .unwrap();
                let high = matrix
                    .find(ds, cell.class, cell.policy, &format!("partial{hi}"))
                    .unwrap();
                assert!(
                    low.empirical <= high.empirical,
                    "{ds}/{}/{}: partial{lo} leaked {} > partial{hi}'s {} — \
                     nested subsets of one synthetic relation cannot lose matches",
                    cell.class,
                    cell.policy,
                    low.empirical,
                    high.empirical
                );
                assert!(low.rows_scored <= high.rows_scored);
            }
        }
    }
}

// ---- claim 3: collusion bounds any single party --------------------------

#[test]
fn collusion_analytical_leakage_dominates_every_single_view() {
    let ds = echo_dataset();
    let package =
        MetadataPackage::describe("owner", &ds.relation, ds.dependencies.clone()).unwrap();
    let n = ds.relation.n_rows();
    let epsilon = 0.5;
    let expected = |pkg: &MetadataPackage| -> f64 {
        pkg.attributes
            .iter()
            .filter_map(|a| a.domain.as_ref())
            .map(|d| mp_core::analytical::random::expected_matches_for_domain(n, d, epsilon))
            .sum()
    };
    for k in 2..=4usize {
        let views = AdversaryModel::collusion_views(&package, k);
        let pooled = MetadataPackage::pool(&views).unwrap();
        let pooled_expected = expected(&pooled);
        let mut max_single = 0.0f64;
        for view in &views {
            let e = expected(view);
            assert!(
                pooled_expected >= e,
                "k={k}: pooled {pooled_expected} < single view {e}"
            );
            max_single = max_single.max(e);
        }
        assert!(
            pooled_expected >= max_single,
            "k={k}: collusion must dominate the best-informed single party"
        );
        // The views partition the domains, so pooling reassembles exactly
        // the full package's expectation (views overlap only in names).
        let full_expected = expected(&package);
        assert!(
            (pooled_expected - full_expected).abs() < 1e-9,
            "pool of all views must reassemble full knowledge"
        );
    }
}

#[test]
fn collusion_empirical_leakage_dominates_views_with_fixed_seeds() {
    // Measured version of claim 3 on the tiny table: attack rounds from
    // the pooled package vs each view, same number of rounds, seeds from
    // the shared derivation.
    let ds = tiny_dataset(60);
    let package = MetadataPackage::describe("owner", &ds.relation, vec![]).unwrap();
    let rounds = 12u64;
    let epsilon = 0.5;
    let measure = |pkg: &MetadataPackage, label: &str| -> f64 {
        let adversary = Adversary::new(pkg.clone());
        let mut total = 0.0;
        for round in 0..rounds {
            let syn = adversary
                .synthesize(&SynthConfig {
                    n_rows: ds.relation.n_rows(),
                    seed: seed_for("tiny", "claims", label, round),
                    use_dependencies: true,
                })
                .unwrap();
            for (attr, attribute) in ds.relation.schema().iter() {
                let real = ds.relation.column(attr).unwrap();
                let synth = syn.column(attr).unwrap();
                for i in 0..ds.relation.n_rows() {
                    let hit = match attribute.kind {
                        mp_relation::AttrKind::Continuous => {
                            match (real.f64_at(i), synth.f64_at(i)) {
                                (Some(x), Some(y)) => (x - y).abs() <= epsilon,
                                _ => false,
                            }
                        }
                        _ => real.value_ref(i) == synth.value_ref(i),
                    };
                    if hit {
                        total += 1.0;
                    }
                }
            }
        }
        total / rounds as f64
    };
    let views = AdversaryModel::collusion_views(&package, 2);
    let pooled = MetadataPackage::pool(&views).unwrap();
    let pooled_mean = measure(&pooled, "pooled");
    for (i, view) in views.iter().enumerate() {
        let view_mean = measure(view, "view");
        // Generous statistical slack: the pooled adversary generates for
        // strictly more attributes, so it can only gain in expectation.
        assert!(
            pooled_mean >= view_mean - 3.0,
            "pooled mean {pooled_mean} fell below view {i}'s {view_mean}"
        );
    }
}

// ---- claim 4: noisy domains mitigate monotonically -----------------------

#[test]
fn noisy_domains_never_increase_analytical_leakage() {
    let datasets = [tiny_dataset(48), bank_dataset()];
    let adversaries = vec![
        AdversaryModel::Baseline,
        AdversaryModel::NoisyDomains { noise_pct: 10 },
        AdversaryModel::NoisyDomains { noise_pct: 50 },
    ];
    let matrix = LeakageMatrix::run(&datasets, &config(4, adversaries), &NoopRecorder).unwrap();
    for cell in matrix.cells.iter().filter(|c| c.adversary == "baseline") {
        let n10 = matrix
            .find(&cell.dataset, cell.class, cell.policy, "noisy10")
            .unwrap();
        let n50 = matrix
            .find(&cell.dataset, cell.class, cell.policy, "noisy50")
            .unwrap();
        assert!(
            n10.analytical <= cell.analytical + 1e-9,
            "{}/{}/{}: 10% noise must not raise Σ N·θ",
            cell.dataset,
            cell.class,
            cell.policy
        );
        assert!(
            n50.analytical <= n10.analytical + 1e-9,
            "{}/{}/{}: θ must be non-increasing in noise",
            cell.dataset,
            cell.class,
            cell.policy
        );
    }
}

#[test]
fn collusion_of_all_views_matches_baseline_analytical() {
    // The pooled collude-k package reassembles the shared package, so the
    // analytical column must agree with the baseline cell exactly.
    let datasets = [tiny_dataset(48)];
    let adversaries = vec![
        AdversaryModel::Baseline,
        AdversaryModel::Collusion { parties: 2 },
        AdversaryModel::Collusion { parties: 3 },
    ];
    let matrix = LeakageMatrix::run(&datasets, &config(4, adversaries), &NoopRecorder).unwrap();
    for cell in matrix.cells.iter().filter(|c| c.adversary == "baseline") {
        for collude in ["collude2", "collude3"] {
            let pooled = matrix
                .find(&cell.dataset, cell.class, cell.policy, collude)
                .unwrap();
            assert!(
                (pooled.analytical - cell.analytical).abs() < 1e-9,
                "{}/{}/{}: {collude} pooled package must carry the same domains",
                cell.dataset,
                cell.class,
                cell.policy
            );
            assert_eq!(pooled.n_deps, cell.n_deps);
        }
    }
}

// ---- proptests -----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn partial_alignment_monotone_for_arbitrary_fractions(
        lo in 1u8..=99,
        span in 1u8..=99,
        n in 24usize..=60,
    ) {
        let hi = lo.saturating_add(span).min(100);
        prop_assume!(lo < hi);
        let datasets = [tiny_dataset(n)];
        let adversaries = vec![
            AdversaryModel::PartialAlignment { aligned_pct: lo },
            AdversaryModel::PartialAlignment { aligned_pct: hi },
        ];
        let matrix = LeakageMatrix::run(&datasets, &config(3, adversaries), &NoopRecorder)
            .unwrap();
        for cell in matrix.cells.iter().filter(|c| c.adversary == format!("partial{lo}")) {
            let high = matrix
                .find(&cell.dataset, cell.class, cell.policy, &format!("partial{hi}"))
                .unwrap();
            prop_assert!(
                cell.empirical <= high.empirical,
                "partial{} leaked {} > partial{}'s {} at {}/{}",
                lo, cell.empirical, hi, high.empirical, cell.class, cell.policy
            );
        }
    }

    #[test]
    fn noise_monotone_for_arbitrary_levels(
        lo in 0u8..=99,
        span in 1u8..=100,
        n in 24usize..=60,
    ) {
        let hi = lo.saturating_add(span).min(100);
        prop_assume!(lo < hi);
        let datasets = [tiny_dataset(n)];
        let adversaries = vec![
            AdversaryModel::NoisyDomains { noise_pct: lo },
            AdversaryModel::NoisyDomains { noise_pct: hi },
        ];
        let matrix = LeakageMatrix::run(&datasets, &config(3, adversaries), &NoopRecorder)
            .unwrap();
        for cell in matrix.cells.iter().filter(|c| c.adversary == format!("noisy{lo}")) {
            let noisier = matrix
                .find(&cell.dataset, cell.class, cell.policy, &format!("noisy{hi}"))
                .unwrap();
            prop_assert!(
                noisier.analytical <= cell.analytical + 1e-9,
                "noisy{} analytical {} > noisy{}'s {} at {}/{}",
                hi, noisier.analytical, lo, cell.analytical, cell.class, cell.policy
            );
        }
    }
}
