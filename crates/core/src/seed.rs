//! Cell-seed derivation for the audit and matrix harnesses.
//!
//! Every experiment in this crate is seeded, and the seed must identify
//! *which* experiment: the audit of PR ≤ 8 reused `base_seed + round` for
//! every policy, so round `r` of the `full` policy and round `r` of the
//! `domains` policy drew identical random streams — their results were
//! correlated, not independent measurements. [`seed_for`] fixes this with
//! one documented derivation used by both [`crate::audit`] and
//! [`crate::matrix`]: the seed is a hash of the full cell coordinate
//! `(dataset, policy, adversary, round)`, so
//!
//! * every matrix cell is independently reproducible from its coordinate
//!   alone (no ambient base seed needed), and
//! * two distinct coordinates get uncorrelated streams (collision-tested
//!   below; within a fixed label triple, distinct rounds *provably* never
//!   collide — see [`seed_for`]).
//!
//! The per-*round* derivation inside one experiment
//! ([`crate::ExperimentConfig::round_seed`]) intentionally stays
//! `base_seed + round`: the Tables III/IV reproductions are golden-pinned
//! on those streams, and within a single experiment consecutive seeds are
//! harmless.

/// The `splitmix64` finalizer: a bijection on `u64` with full avalanche,
/// so structured inputs (small round numbers, similar labels) come out
/// uncorrelated.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the three labels with an explicit separator fold between
/// them, so `("ab", "c")` and `("a", "bc")` hash differently.
fn fnv1a_labels(dataset: &str, policy: &str, adversary: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for part in [dataset, policy, adversary] {
        for b in part.as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
        }
        // Unit-separator fold: delimits the parts in the hash stream.
        h = (h ^ 0x1f).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Derives the RNG seed for one experiment cell.
///
/// `dataset`, `policy` and `adversary` are free-form labels naming the
/// cell ([`crate::matrix`] folds the metadata class into the policy
/// label); `round` is the repetition index. The derivation is
/// `splitmix64(fnv1a(labels) ^ round · φ64)` where `φ64` is the odd
/// golden-ratio constant: multiplication by an odd constant is a
/// bijection on `u64` and `splitmix64` is a bijection, so **for a fixed
/// label triple, distinct rounds can never collide** (proved as a
/// property test). Across label triples, collisions would require an
/// FNV-1a collision; the preset audit/matrix label space is pinned
/// collision-free by the tests below.
pub fn seed_for(dataset: &str, policy: &str, adversary: &str, round: u64) -> u64 {
    let h = fnv1a_labels(dataset, policy, adversary);
    splitmix64(h ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distinct_policies_no_longer_collide() {
        // The regression this helper exists for: under the old scheme
        // every policy's round r used `base_seed + r`, so all four
        // policies drew identical streams. With seed_for the same round
        // under different policies gets different seeds.
        let policies = ["names", "domains", "full", "recommended"];
        for r in 0..64u64 {
            let mut seeds: Vec<u64> = policies
                .iter()
                .map(|p| seed_for("echocardiogram", p, "baseline", r))
                .collect();
            seeds.sort_unstable();
            seeds.dedup();
            assert_eq!(seeds.len(), policies.len(), "collision at round {r}");
        }
    }

    #[test]
    fn old_scheme_collision_demonstrated() {
        // Documents the bug being fixed: `base_seed + r` is blind to the
        // policy, so (policy₁, r) and (policy₂, r) collide for every r.
        let base_seed = 0xA0D1u64;
        let old = |_policy: &str, r: u64| base_seed.wrapping_add(r);
        assert_eq!(old("full", 7), old("domains", 7));
        assert_ne!(
            seed_for("d", "full", "baseline", 7),
            seed_for("d", "domains", "baseline", 7)
        );
    }

    #[test]
    fn full_preset_label_space_is_collision_free() {
        // Every (dataset, class/policy, adversary, round) coordinate the
        // shipped matrix sweeps, pairwise distinct. Deterministic: if
        // this passes once it passes forever.
        let datasets = ["echocardiogram", "bank", "car"];
        let classes = ["domains-only", "fd", "od", "nd", "dd", "ofd", "cfd"];
        let policies = ["names", "domains", "full", "recommended", "redact-odd"];
        let adversaries = ["baseline", "partial50", "collude2", "noisy10"];
        let mut seeds = Vec::new();
        for d in datasets {
            for c in classes {
                for p in policies {
                    for a in adversaries {
                        for r in [0u64, 1, 63] {
                            seeds.push(seed_for(d, &format!("{c}/{p}"), a, r));
                        }
                    }
                }
            }
        }
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n, "seed collision in the preset label space");
    }

    #[test]
    fn label_boundaries_matter() {
        // The separator fold keeps concatenation ambiguity out.
        assert_ne!(seed_for("ab", "c", "x", 0), seed_for("a", "bc", "x", 0));
        assert_ne!(seed_for("a", "", "x", 0), seed_for("", "a", "x", 0));
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            seed_for("d", "p", "a", 3),
            seed_for("d", "p", "a", 3),
            "same coordinate must reproduce the same seed"
        );
    }

    proptest! {
        #[test]
        fn distinct_rounds_never_collide(r1 in any::<u64>(), r2 in any::<u64>()) {
            // Bijectivity argument: odd-constant multiply and splitmix64
            // are both bijections, so within one label triple the map
            // round → seed is injective.
            prop_assume!(r1 != r2);
            prop_assert!(
                seed_for("d", "p", "a", r1) != seed_for("d", "p", "a", r2),
                "rounds {} and {} collided", r1, r2
            );
        }

        #[test]
        fn rounds_distinct_across_arbitrary_labels(
            d in "[a-z]{0,8}", p in "[a-z/]{0,8}", a in "[a-z0-9]{0,8}",
            r1 in any::<u64>(), r2 in any::<u64>(),
        ) {
            prop_assume!(r1 != r2);
            prop_assert!(
                seed_for(&d, &p, &a, r1) != seed_for(&d, &p, &a, r2),
                "rounds {} and {} collided under ({}, {}, {})", r1, r2, d, p, a
            );
        }
    }
}
