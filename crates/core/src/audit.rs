//! One-call privacy audit: the paper's whole assessment as a single API.
//!
//! [`PrivacyAudit::run`] combines identifiability (Definition 2.1), the
//! measured synthesis attack under every preset policy (§III/§V), and the
//! CFD risk scan (the value-carrying dependency class), and derives a
//! policy recommendation with the reasons attached. This is the surface a
//! data owner integrates before agreeing to a metadata exchange.

use crate::analytical;
use crate::experiment::{run_attack, AttrSummary, ExperimentConfig};
use crate::identifiability::identifiability_rate;
use mp_metadata::{ConditionalFd, Dependency, MetadataPackage, SharePolicy};
use mp_relation::{Relation, Result};

/// Audit parameters.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Attack rounds per policy.
    pub rounds: usize,
    /// ε for continuous matching.
    pub epsilon: f64,
    /// Largest attribute-subset size for identifiability.
    pub max_subset_size: usize,
    /// Base seed. Each policy's attack derives its own stream from this
    /// via [`crate::seed_for`], so the four preset measurements are
    /// independent rather than replaying one random stream four times.
    pub base_seed: u64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            rounds: 60,
            epsilon: 0.0,
            max_subset_size: 2,
            base_seed: 0xA0D1,
        }
    }
}

/// The attack outcome under one preset policy.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// Preset name (`names`, `domains`, `full`, `recommended`).
    pub policy: &'static str,
    /// Total mean matches across all attributes.
    pub total_matches: f64,
    /// Per-attribute detail.
    pub per_attr: Vec<AttrSummary>,
}

/// A CFD flagged as leaking beyond the domain level.
#[derive(Debug, Clone)]
pub struct CfdRisk {
    /// The offending dependency.
    pub cfd: ConditionalFd,
    /// Its support on the audited relation.
    pub support: usize,
    /// Flood amplification `s·|D_Y|/N` (> 1 ⇒ beats random).
    pub amplification: f64,
}

/// The full audit result.
#[derive(Debug, Clone)]
pub struct PrivacyAudit {
    /// Identifiable-tuple fraction per subset size `1..=max_subset_size`.
    pub identifiability: Vec<(usize, f64)>,
    /// Attack outcome per preset policy.
    pub policies: Vec<PolicyOutcome>,
    /// CFDs among the supplied dependencies whose flood strategy beats
    /// random generation.
    pub cfd_risks: Vec<CfdRisk>,
    /// The recommended policy.
    pub recommendation: SharePolicy,
    /// Human-readable reasons behind the recommendation.
    pub reasons: Vec<String>,
}

impl PrivacyAudit {
    /// Runs the audit over `relation`, with `dependencies` the inventory
    /// the owner is considering sharing (e.g. from
    /// `mp_discovery::DependencyProfile::to_dependencies`).
    pub fn run(
        relation: &Relation,
        dependencies: Vec<Dependency>,
        config: &AuditConfig,
    ) -> Result<Self> {
        let mut identifiability = Vec::new();
        for size in 1..=config.max_subset_size.max(1) {
            identifiability.push((size, identifiability_rate(relation, size)?));
        }

        let package = MetadataPackage::describe("audit", relation, dependencies.clone())?;
        let presets: [(&'static str, SharePolicy); 4] = [
            ("names", SharePolicy::NAMES_ONLY),
            ("domains", SharePolicy::NAMES_AND_DOMAINS),
            ("full", SharePolicy::FULL),
            ("recommended", SharePolicy::PAPER_RECOMMENDED),
        ];
        let mut policies = Vec::with_capacity(presets.len());
        for (name, policy) in presets {
            // Per-policy stream: `base_seed + r` alone collides across
            // policies (every preset would replay the same rounds), so
            // the cell coordinate is folded in first.
            let experiment = ExperimentConfig {
                rounds: config.rounds,
                base_seed: config.base_seed ^ crate::seed_for("audit", name, "baseline", 0),
                epsilon: config.epsilon,
            };
            let result = run_attack(relation, &policy.apply(&package), true, &experiment)?;
            policies.push(PolicyOutcome {
                policy: name,
                total_matches: result.per_attr.iter().map(|a| a.mean_matches).sum(),
                per_attr: result.per_attr,
            });
        }

        let n = relation.n_rows();
        let mut cfd_risks = Vec::new();
        for dep in &dependencies {
            if let Dependency::Cfd(cfd) = dep {
                let support = cfd.support(relation)?;
                let card_y = relation.distinct_count(cfd.rhs)?;
                let amplification = analytical::cfd::flood_amplification(n, support, card_y);
                if amplification > 1.0 {
                    cfd_risks.push(CfdRisk {
                        cfd: cfd.clone(),
                        support,
                        amplification,
                    });
                }
            }
        }

        // Recommendation logic, with reasons.
        let mut reasons = Vec::new();
        let domain_leak = policies
            .iter()
            .find(|p| p.policy == "domains")
            .map_or(0.0, |p| p.total_matches);
        if domain_leak >= 1.0 {
            reasons.push(format!(
                "sharing domains enables ≈ {domain_leak:.1} reconstructed cells per \
                 round (§III-A); withhold domains and types"
            ));
        }
        if !cfd_risks.is_empty() {
            reasons.push(format!(
                "{} conditional FD(s) carry data values with flood amplification > 1; \
                 do not share CFDs with high-support patterns",
                cfd_risks.len()
            ));
        }
        if let Some((_, rate)) = identifiability.first() {
            if *rate > 0.5 {
                reasons.push(format!(
                    "{:.0}% of tuples are identifiable from a single attribute \
                     (Definition 2.1); reconstructed cells are attributable",
                    rate * 100.0
                ));
            }
        }
        if reasons.is_empty() {
            reasons.push("no measurable leakage at any disclosure level".to_owned());
        }
        // The paper's recommendation is the safe default; structural
        // dependencies (FD/RFD) are fine to share per §III-B/§IV.
        let recommendation = SharePolicy::PAPER_RECOMMENDED;

        Ok(Self {
            identifiability,
            policies,
            cfd_risks,
            recommendation,
            reasons,
        })
    }

    /// Renders the audit as a readable report.
    pub fn render(&self, relation: &Relation) -> String {
        let mut out = String::new();
        out.push_str("PRIVACY AUDIT\n=============\n\nIdentifiability (Def 2.1):\n");
        for (size, rate) in &self.identifiability {
            out.push_str(&format!(
                "  subsets ≤ {size}: {:.1}% of tuples identifiable\n",
                rate * 100.0
            ));
        }
        out.push_str("\nMeasured synthesis attack (total mean matches / round):\n");
        for p in &self.policies {
            out.push_str(&format!(
                "  {:<12} {:>10.1}  ({:.1}% of cells)\n",
                p.policy,
                p.total_matches,
                100.0 * p.total_matches
                    / (relation.n_rows().max(1) * relation.arity().max(1)) as f64
            ));
        }
        if !self.cfd_risks.is_empty() {
            out.push_str("\nValue-carrying dependencies at risk:\n");
            for r in &self.cfd_risks {
                out.push_str(&format!(
                    "  {}  support {}, amplification ×{:.2}\n",
                    r.cfd, r.support, r.amplification
                ));
            }
        }
        out.push_str(
            "\nRecommendation: share feature names and structural dependencies, \
                      withhold domains, types, distributions and CFD tableaux.\n",
        );
        for reason in &self.reasons {
            out.push_str(&format!("  - {reason}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datasets::{echocardiogram, employee};
    use mp_metadata::Fd;

    fn quick() -> AuditConfig {
        AuditConfig {
            rounds: 15,
            epsilon: 0.0,
            max_subset_size: 2,
            base_seed: 1,
        }
    }

    #[test]
    fn audit_of_employee_table() {
        let rel = employee();
        let audit = PrivacyAudit::run(&rel, vec![Fd::new(0usize, 1).into()], &quick()).unwrap();
        assert_eq!(audit.identifiability[0], (1, 1.0));
        assert_eq!(audit.policies.len(), 4);
        // Names-only and recommended leak nothing (no domains).
        for name in ["names", "recommended"] {
            let p = audit.policies.iter().find(|p| p.policy == name).unwrap();
            assert_eq!(p.total_matches, 0.0, "{name}");
        }
        // Domains leak ≈ N/|D| summed over categorical attrs ≥ 1.
        let domains = audit
            .policies
            .iter()
            .find(|p| p.policy == "domains")
            .unwrap();
        assert!(domains.total_matches >= 1.0);
        assert_eq!(audit.recommendation, SharePolicy::PAPER_RECOMMENDED);
        assert!(!audit.reasons.is_empty());
        let report = audit.render(&rel);
        assert!(report.contains("PRIVACY AUDIT"));
        assert!(report.contains("Recommendation"));
    }

    #[test]
    fn cfd_risks_flagged() {
        // 50%-support pattern over an 8-value dependent domain → ×4.
        let schema = mp_relation::Schema::new(vec![
            mp_relation::Attribute::categorical("x"),
            mp_relation::Attribute::categorical("y"),
        ])
        .unwrap();
        let rows: Vec<Vec<mp_relation::Value>> = (0..200)
            .map(|i| {
                if i % 2 == 0 {
                    vec![mp_relation::Value::Int(0), mp_relation::Value::Int(7)]
                } else {
                    vec![
                        mp_relation::Value::Int(1 + (i % 3) as i64),
                        mp_relation::Value::Int((i % 7) as i64),
                    ]
                }
            })
            .collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let cfd = ConditionalFd::constant(0, 0i64, 1, 7i64);
        let audit = PrivacyAudit::run(&rel, vec![cfd.into()], &quick()).unwrap();
        assert_eq!(audit.cfd_risks.len(), 1);
        assert!(audit.cfd_risks[0].amplification > 1.0);
        assert!(audit.reasons.iter().any(|r| r.contains("conditional FD")));
    }

    #[test]
    fn audit_scales_to_echocardiogram() {
        let rel = echocardiogram();
        let audit = PrivacyAudit::run(&rel, vec![], &quick()).unwrap();
        assert!(audit.identifiability[0].1 > 0.9);
        let full = audit.policies.iter().find(|p| p.policy == "full").unwrap();
        let domains = audit
            .policies
            .iter()
            .find(|p| p.policy == "domains")
            .unwrap();
        // §III-B: dependencies add nothing, so full ≈ domains.
        assert!((full.total_matches - domains.total_matches).abs() < 25.0);
    }
}
