//! Plain-text table rendering for the reproduction binaries.
//!
//! The `mp-bench` binaries print the regenerated Tables III/IV in the same
//! row/column layout the paper uses; this module does the alignment.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn push_row(&mut self, mut row: Vec<String>) {
        while row.len() < self.header.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// Renders the table with column alignment and a header rule.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            parts.join("  ")
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats an optional measurement the way the paper does: a number or
/// `NA` where the dependency class was not available for the attribute.
pub fn na_cell(value: Option<f64>, decimals: usize) -> String {
    match value {
        Some(v) => format!("{v:.decimals$}"),
        None => "NA".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Dep".into(), "Attr 0".into()]);
        t.push_row(vec!["Rand Gen".into(), "580.49".into()]);
        t.push_row(vec!["Func Dep".into(), "NA".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Dep"));
        assert!(lines[2].starts_with("Rand Gen"));
        // Columns align: "580.49" and "NA" start at the same offset.
        let off = lines[2].find("580.49").unwrap();
        assert_eq!(lines[3].find("NA").unwrap(), off);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["a".into(), "b".into(), "c".into()]);
        t.push_row(vec!["x".into()]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn na_cell_formats() {
        assert_eq!(na_cell(Some(1.23456), 2), "1.23");
        assert_eq!(na_cell(None, 2), "NA");
        assert_eq!(na_cell(Some(44.0), 0), "44");
    }

    #[test]
    fn empty_table_renders() {
        let t = TextTable::new(vec![]);
        assert!(t.render().contains('\n'));
    }
}
