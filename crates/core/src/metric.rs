//! Distance metrics for continuous leakage.
//!
//! Definition 2.3 is parameterised by "any valid metric (distance)
//! function d()" — the paper names Euclidean distance as one choice. This
//! module provides the scalar metrics used for single attributes and the
//! vector metrics used for multi-attribute tuple distances, and
//! metric-parameterised variants of the leakage counters.

use mp_relation::{Relation, Result};

/// Distance between two scalar values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarMetric {
    /// `|x − y|` (1-d Euclidean — the paper's default).
    Absolute,
    /// `|x − y| / max(|x|, |y|, 1)` — scale-free; useful when attributes
    /// span different magnitudes (salaries vs fractions).
    Relative,
}

impl ScalarMetric {
    /// Applies the metric.
    pub fn distance(&self, x: f64, y: f64) -> f64 {
        match self {
            ScalarMetric::Absolute => (x - y).abs(),
            ScalarMetric::Relative => (x - y).abs() / x.abs().max(y.abs()).max(1.0),
        }
    }
}

/// Distance between two numeric vectors of equal length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorMetric {
    /// `√Σ(xᵢ−yᵢ)²`.
    Euclidean,
    /// `Σ|xᵢ−yᵢ|`.
    Manhattan,
    /// `max|xᵢ−yᵢ|`.
    Chebyshev,
}

impl VectorMetric {
    /// Applies the metric. Panics if lengths differ.
    pub fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "vector metrics need equal dimensions");
        match self {
            VectorMetric::Euclidean => x
                .iter()
                .zip(y)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt(),
            VectorMetric::Manhattan => x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum(),
            VectorMetric::Chebyshev => x
                .iter()
                .zip(y)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        }
    }
}

/// Definition 2.3 with an explicit scalar metric: index-aligned rows where
/// `d(t_syn[A], t_real[A]) ≤ ε`.
pub fn continuous_matches_metric(
    real: &Relation,
    syn: &Relation,
    attr: usize,
    epsilon: f64,
    metric: ScalarMetric,
) -> Result<usize> {
    let a = real.column(attr)?;
    let b = syn.column(attr)?;
    Ok(a.iter()
        .zip(b.iter())
        .filter(|(x, y)| match (x.as_f64(), y.as_f64()) {
            (Some(x), Some(y)) => metric.distance(x, y) <= epsilon,
            _ => false,
        })
        .count())
}

/// Multi-attribute Definition 2.3: rows whose numeric projections onto
/// `attrs` are within `epsilon` under the vector metric. Rows with any
/// non-numeric cell on either side never match.
pub fn tuple_distance_matches(
    real: &Relation,
    syn: &Relation,
    attrs: &[usize],
    epsilon: f64,
    metric: VectorMetric,
) -> Result<usize> {
    let mut count = 0;
    'rows: for i in 0..real.n_rows().min(syn.n_rows()) {
        let mut xs = Vec::with_capacity(attrs.len());
        let mut ys = Vec::with_capacity(attrs.len());
        for &a in attrs {
            match (real.value(i, a)?.as_f64(), syn.value(i, a)?.as_f64()) {
                (Some(x), Some(y)) => {
                    xs.push(x);
                    ys.push(y);
                }
                _ => continue 'rows,
            }
        }
        if metric.distance(&xs, &ys) <= epsilon {
            count += 1;
        }
    }
    Ok(count)
}

/// Per-row distances under a scalar metric (`None` where non-numeric) —
/// the raw series behind MSE-style reports.
pub fn distance_series(
    real: &Relation,
    syn: &Relation,
    attr: usize,
    metric: ScalarMetric,
) -> Result<Vec<Option<f64>>> {
    let a = real.column(attr)?;
    let b = syn.column(attr)?;
    Ok(a.iter()
        .zip(b.iter())
        .map(|(x, y)| match (x.as_f64(), y.as_f64()) {
            (Some(x), Some(y)) => Some(metric.distance(x, y)),
            _ => None,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Schema, Value};

    fn pair() -> (Relation, Relation) {
        let schema =
            Schema::new(vec![Attribute::continuous("x"), Attribute::continuous("y")]).unwrap();
        let real = Relation::from_rows(
            schema.clone(),
            vec![
                vec![0.0.into(), 0.0.into()],
                vec![100.0.into(), 3.0.into()],
                vec![Value::Null, 4.0.into()],
            ],
        )
        .unwrap();
        let syn = Relation::from_rows(
            schema,
            vec![
                vec![0.5.into(), 0.0.into()],
                vec![105.0.into(), 7.0.into()],
                vec![1.0.into(), 4.0.into()],
            ],
        )
        .unwrap();
        (real, syn)
    }

    #[test]
    fn scalar_metrics() {
        assert_eq!(ScalarMetric::Absolute.distance(3.0, -1.0), 4.0);
        // Relative: |105−100| / 105.
        let d = ScalarMetric::Relative.distance(100.0, 105.0);
        assert!((d - 5.0 / 105.0).abs() < 1e-12);
        // Relative floors the denominator at 1 near zero.
        assert_eq!(ScalarMetric::Relative.distance(0.0, 0.5), 0.5);
    }

    #[test]
    fn vector_metrics() {
        let (x, y) = ([0.0, 3.0], [4.0, 0.0]);
        assert!((VectorMetric::Euclidean.distance(&x, &y) - 5.0).abs() < 1e-12);
        assert_eq!(VectorMetric::Manhattan.distance(&x, &y), 7.0);
        assert_eq!(VectorMetric::Chebyshev.distance(&x, &y), 4.0);
        assert_eq!(VectorMetric::Euclidean.distance(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn mismatched_vectors_panic() {
        VectorMetric::Euclidean.distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn absolute_vs_relative_matching() {
        let (real, syn) = pair();
        // ε = 1 absolute: row 0 (Δ=0.5) matches; row 1 (Δ=5) does not.
        assert_eq!(
            continuous_matches_metric(&real, &syn, 0, 1.0, ScalarMetric::Absolute).unwrap(),
            1
        );
        // ε = 0.06 relative: row 1 (5/105 ≈ 0.048) matches now; row 0
        // (0.5/1 = 0.5) does not.
        assert_eq!(
            continuous_matches_metric(&real, &syn, 0, 0.06, ScalarMetric::Relative).unwrap(),
            1
        );
        // Null row never matches.
        assert_eq!(
            continuous_matches_metric(&real, &syn, 0, 1e9, ScalarMetric::Absolute).unwrap(),
            2
        );
    }

    #[test]
    fn metric_agrees_with_default_definition() {
        let (real, syn) = pair();
        let via_metric =
            continuous_matches_metric(&real, &syn, 1, 3.5, ScalarMetric::Absolute).unwrap();
        let via_default = crate::leakage::continuous_matches(&real, &syn, 1, 3.5).unwrap();
        assert_eq!(via_metric, via_default);
    }

    #[test]
    fn tuple_distances() {
        let (real, syn) = pair();
        // Row 0: (0.5, 0) → L2 = 0.5; row 1: (5, 4) → L2 ≈ 6.4; row 2 has a
        // null and is skipped.
        assert_eq!(
            tuple_distance_matches(&real, &syn, &[0, 1], 1.0, VectorMetric::Euclidean).unwrap(),
            1
        );
        assert_eq!(
            tuple_distance_matches(&real, &syn, &[0, 1], 10.0, VectorMetric::Euclidean).unwrap(),
            2
        );
        // Chebyshev at ε = 5 admits row 1 too (max(5,4) = 5).
        assert_eq!(
            tuple_distance_matches(&real, &syn, &[0, 1], 5.0, VectorMetric::Chebyshev).unwrap(),
            2
        );
    }

    #[test]
    fn distance_series_marks_nulls() {
        let (real, syn) = pair();
        let s = distance_series(&real, &syn, 0, ScalarMetric::Absolute).unwrap();
        assert_eq!(s.len(), 3);
        assert!((s[0].unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(s[2], None);
    }
}
