//! Identifiability — Definition 2.1 of the paper.
//!
//! A tuple `t` is *identifiable* if some attribute subset `A` exists whose
//! value combination `t[A]` is unique in the relation: the tuple can be
//! singled out, the core concern of GDPR Art. 5's data-minimisation and
//! the target of anonymisation techniques (paper ref \[11\]).

use mp_metadata::AttrSet;
use mp_relation::{Pli, Relation, Result};

/// Per-tuple identifiability under attribute subsets of size ≤ `max_size`.
///
/// Returns a boolean per tuple: `true` iff some subset of at most
/// `max_size` attributes isolates it. A tuple unique on a *small* subset is
/// the privacy worst case; `max_size = arity` gives the full definition.
pub fn identifiable_tuples(relation: &Relation, max_size: usize) -> Result<Vec<bool>> {
    let n = relation.n_rows();
    let mut identifiable = vec![false; n];
    // A tuple is unique on subset A iff it lies in no cluster of Π_A.
    for set in subsets_up_to(relation.arity(), max_size) {
        let pli = mp_metadata::pli_of_set(relation, &set)?;
        let mut in_cluster = vec![false; n];
        for cluster in pli.clusters() {
            for &r in cluster {
                in_cluster[r] = true;
            }
        }
        for r in 0..n {
            if !in_cluster[r] {
                identifiable[r] = true;
            }
        }
        if identifiable.iter().all(|&b| b) {
            break;
        }
    }
    Ok(identifiable)
}

/// The fraction of identifiable tuples (0 = fully anonymous at this subset
/// size, 1 = every tuple can be singled out).
pub fn identifiability_rate(relation: &Relation, max_size: usize) -> Result<f64> {
    let flags = identifiable_tuples(relation, max_size)?;
    if flags.is_empty() {
        return Ok(0.0);
    }
    Ok(flags.iter().filter(|&&b| b).count() as f64 / flags.len() as f64)
}

/// All *minimal* attribute sets (size ≤ `max_size`) that isolate tuple
/// `row`: no returned set contains another returned set.
pub fn minimal_identifying_sets(
    relation: &Relation,
    row: usize,
    max_size: usize,
) -> Result<Vec<AttrSet>> {
    let mut minimal: Vec<AttrSet> = Vec::new();
    for set in subsets_up_to(relation.arity(), max_size) {
        if minimal.iter().any(|m| m.is_subset_of(&set)) {
            continue;
        }
        let pli = mp_metadata::pli_of_set(relation, &set)?;
        let unique = !pli.clusters().iter().any(|c| c.contains(&row));
        if unique {
            minimal.push(set);
        }
    }
    Ok(minimal)
}

/// For each single attribute, the number of tuples unique on it — a quick
/// per-attribute disclosure profile.
pub fn uniqueness_profile(relation: &Relation) -> Result<Vec<usize>> {
    let n = relation.n_rows();
    (0..relation.arity())
        .map(|a| {
            let pli = Pli::from_typed(relation.column(a)?);
            Ok(n - pli.covered_count())
        })
        .collect()
}

/// Enumerates attribute subsets of `{0..arity}` with `1 ≤ |A| ≤ max_size`,
/// in ascending size (so minimality checks can rely on order).
fn subsets_up_to(arity: usize, max_size: usize) -> Vec<AttrSet> {
    let mut out = Vec::new();
    let max_size = max_size.min(arity);
    let mut current: Vec<usize> = Vec::new();
    for size in 1..=max_size {
        gen_combos(arity, size, 0, &mut current, &mut out);
    }
    out
}

fn gen_combos(
    arity: usize,
    size: usize,
    start: usize,
    current: &mut Vec<usize>,
    out: &mut Vec<AttrSet>,
) {
    if current.len() == size {
        out.push(AttrSet::from_iter(current.iter().copied()));
        return;
    }
    for a in start..arity {
        current.push(a);
        gen_combos(arity, size, a + 1, current, out);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datasets::employee;
    use mp_relation::{Attribute, Schema};

    #[test]
    fn employee_everyone_identifiable_by_name() {
        let r = employee();
        let flags = identifiable_tuples(&r, 1).unwrap();
        assert!(flags.iter().all(|&b| b), "unique names identify everyone");
        assert_eq!(identifiability_rate(&r, 1).unwrap(), 1.0);
    }

    #[test]
    fn duplicated_rows_are_not_identifiable() {
        let schema = Schema::new(vec![
            Attribute::categorical("a"),
            Attribute::categorical("b"),
        ])
        .unwrap();
        let r = Relation::from_rows(
            schema,
            vec![
                vec!["x".into(), "1".into()],
                vec!["x".into(), "1".into()],
                vec!["y".into(), "1".into()],
            ],
        )
        .unwrap();
        let flags = identifiable_tuples(&r, 2).unwrap();
        assert_eq!(flags, vec![false, false, true]);
        assert!((identifiability_rate(&r, 2).unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn minimal_sets_exclude_supersets() {
        let r = employee();
        // Alice (row 0): {Name} and {Salary} isolate her; {Age} does too
        // (age 18 unique); no superset of these may be returned.
        let sets = minimal_identifying_sets(&r, 0, 4).unwrap();
        assert!(sets.contains(&AttrSet::single(0)));
        assert!(sets.contains(&AttrSet::single(1)));
        assert!(sets.contains(&AttrSet::single(3)));
        for s in &sets {
            for t in &sets {
                if s != t {
                    assert!(!s.is_subset_of(t), "{s} ⊆ {t}");
                }
            }
        }
    }

    #[test]
    fn bob_not_identifiable_by_age() {
        let r = employee();
        // Bob (row 1) shares age 22 with Charlie.
        let sets = minimal_identifying_sets(&r, 1, 1).unwrap();
        assert!(!sets.contains(&AttrSet::single(1)));
        assert!(sets.contains(&AttrSet::single(0)));
    }

    #[test]
    fn uniqueness_profile_counts() {
        let r = employee();
        let profile = uniqueness_profile(&r).unwrap();
        assert_eq!(profile[0], 4); // names all unique
        assert_eq!(profile[1], 2); // ages 18, 26 unique; 22 duplicated
        assert_eq!(profile[3], 4); // salaries all unique
    }

    #[test]
    fn subset_size_limits_detection() {
        // Tuples unique only on a PAIR of attributes.
        let schema = Schema::new(vec![
            Attribute::categorical("a"),
            Attribute::categorical("b"),
        ])
        .unwrap();
        let r = Relation::from_rows(
            schema,
            vec![
                vec!["x".into(), "1".into()],
                vec!["x".into(), "2".into()],
                vec!["y".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        )
        .unwrap();
        assert_eq!(identifiability_rate(&r, 1).unwrap(), 0.0);
        assert_eq!(identifiability_rate(&r, 2).unwrap(), 1.0);
    }

    #[test]
    fn empty_relation() {
        let schema = Schema::new(vec![Attribute::categorical("a")]).unwrap();
        let r = Relation::empty(schema);
        assert!(identifiable_tuples(&r, 1).unwrap().is_empty());
        assert_eq!(identifiability_rate(&r, 1).unwrap(), 0.0);
    }
}
