//! Data-side anonymisation: k-anonymity and generalisation transforms.
//!
//! The paper grounds its privacy notion in GDPR identifiability and cites
//! anonymisation (ref \[11\]) as the standard mitigation: *"anonymization
//! techniques aim to ensure that shared data remain non-identifiable"*.
//! This module provides the classic k-anonymity measure over a
//! quasi-identifier set and the bucketing generalisation used to raise it,
//! so the identifiability results of Definition 2.1 can be traced to a
//! concrete defense.

use mp_relation::{AttrKind, Relation, RelationError, Result, Value};

/// The k-anonymity of `relation` over the quasi-identifier attributes
/// `qi`: the size of the smallest equivalence class of the QI projection.
/// Every tuple is indistinguishable from at least `k − 1` others on the
/// QIs. Returns 0 for an empty relation.
pub fn k_anonymity(relation: &Relation, qi: &[usize]) -> Result<usize> {
    if relation.n_rows() == 0 {
        return Ok(0);
    }
    let set = mp_metadata::AttrSet::from_iter(qi.iter().copied());
    let pli = mp_metadata::pli_of_set(relation, &set)?;
    // Stripped partitions drop singletons; if any tuple is uncovered its
    // class has size 1.
    if pli.covered_count() < relation.n_rows() {
        return Ok(1);
    }
    Ok(pli
        .clusters()
        .iter()
        .map(Vec::len)
        .min()
        .unwrap_or(relation.n_rows()))
}

/// Generalises a continuous column by flooring values to multiples of
/// `bucket_width` (nulls pass through). A coarser view of the data that
/// trades utility for anonymity.
pub fn bucketize_column(relation: &Relation, col: usize, bucket_width: f64) -> Result<Relation> {
    if bucket_width <= 0.0 {
        return Err(RelationError::Csv {
            line: 0,
            message: "bucket_width must be positive".into(),
        });
    }
    if relation.schema().attribute(col)?.kind != AttrKind::Continuous {
        return Err(RelationError::TypeMismatch {
            column: relation.schema().attribute(col)?.name.clone(),
            expected: "continuous",
            got: "categorical",
        });
    }
    let mut columns: Vec<Vec<Value>> = (0..relation.arity())
        .map(|c| relation.column_values(c))
        .collect::<Result<_>>()?;
    for v in &mut columns[col] {
        if let Some(x) = v.as_f64() {
            *v = Value::Float((x / bucket_width).floor() * bucket_width);
        }
    }
    Relation::from_columns(relation.schema().clone(), columns)
}

/// Repeatedly coarsens the continuous QIs (doubling the bucket width) until
/// the relation is k-anonymous over `qi` or `max_steps` is exhausted.
/// Returns the transformed relation and the bucket width reached per QI
/// (`None` for categorical QIs, which are left untouched).
pub fn generalize_to_k(
    relation: &Relation,
    qi: &[usize],
    k: usize,
    initial_width: f64,
    max_steps: usize,
) -> Result<(Relation, Vec<Option<f64>>)> {
    let mut current = relation.clone();
    let mut widths: Vec<Option<f64>> = qi
        .iter()
        .map(|&a| {
            (relation.schema().attributes()[a].kind == AttrKind::Continuous)
                .then_some(initial_width)
        })
        .collect();
    for _ in 0..=max_steps {
        if k_anonymity(&current, qi)? >= k {
            return Ok((current, widths));
        }
        current = relation.clone();
        for (slot, &attr) in widths.iter_mut().zip(qi) {
            if let Some(w) = slot {
                current = bucketize_column(&current, attr, *w)?;
                *slot = Some(*w * 2.0);
            }
        }
    }
    Ok((current, widths))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Schema};

    fn rel() -> Relation {
        let schema = Schema::new(vec![
            Attribute::continuous("age"),
            Attribute::categorical("zip"),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec![23.0.into(), "10001".into()],
                vec![24.0.into(), "10001".into()],
                vec![23.0.into(), "10001".into()],
                vec![57.0.into(), "10002".into()],
                vec![58.0.into(), "10002".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn k_anonymity_measures_smallest_class() {
        let r = rel();
        // Exact ages: 23 appears twice, 24 and 57 and 58 once → k = 1.
        assert_eq!(k_anonymity(&r, &[0]).unwrap(), 1);
        // Zip only: classes of 3 and 2 → k = 2.
        assert_eq!(k_anonymity(&r, &[1]).unwrap(), 2);
        // Empty QI set: everyone in one class.
        assert_eq!(k_anonymity(&r, &[]).unwrap(), 5);
    }

    #[test]
    fn bucketing_raises_k() {
        let r = rel();
        let coarse = bucketize_column(&r, 0, 10.0).unwrap();
        // Ages floor to 20, 20, 20, 50, 50 → k over age = 2.
        assert_eq!(k_anonymity(&coarse, &[0]).unwrap(), 2);
        assert_eq!(coarse.value(0, 0).unwrap(), Value::Float(20.0));
    }

    #[test]
    fn bucketize_validates_inputs() {
        let r = rel();
        assert!(bucketize_column(&r, 0, 0.0).is_err());
        assert!(bucketize_column(&r, 1, 5.0).is_err());
    }

    #[test]
    fn generalize_to_k_reaches_target() {
        let r = rel();
        let (anon, widths) = generalize_to_k(&r, &[0, 1], 2, 1.0, 12).unwrap();
        assert!(k_anonymity(&anon, &[0, 1]).unwrap() >= 2);
        assert!(widths[0].unwrap() > 1.0, "age must have been coarsened");
        assert_eq!(widths[1], None, "categorical QI untouched");
    }

    #[test]
    fn generalization_reduces_identifiability() {
        let r = mp_datasets::echocardiogram();
        let before = crate::identifiability::identifiability_rate(&r, 1).unwrap();
        let mut coarse = r.clone();
        for &attr in &mp_datasets::CONTINUOUS_ATTRS {
            let range = mp_relation::Domain::infer(&coarse, attr)
                .unwrap()
                .range()
                .unwrap()
                .max(1.0);
            coarse = bucketize_column(&coarse, attr, range / 2.0).unwrap();
        }
        let after = crate::identifiability::identifiability_rate(&coarse, 1).unwrap();
        assert!(
            after < before * 0.5,
            "bucketing must slash single-attribute identifiability: {before} → {after}"
        );
    }

    #[test]
    fn empty_relation_k_is_zero() {
        let schema = Schema::new(vec![Attribute::continuous("x")]).unwrap();
        let r = Relation::empty(schema);
        assert_eq!(k_anonymity(&r, &[0]).unwrap(), 0);
    }

    #[test]
    fn nulls_pass_through_bucketing() {
        let schema = Schema::new(vec![Attribute::continuous("x")]).unwrap();
        let r = Relation::from_rows(schema, vec![vec![Value::Null], vec![7.0.into()]]).unwrap();
        let out = bucketize_column(&r, 0, 5.0).unwrap();
        assert_eq!(out.value(0, 0).unwrap(), Value::Null);
        assert_eq!(out.value(1, 0).unwrap(), Value::Float(5.0));
    }
}
