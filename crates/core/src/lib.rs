//! # mp-core — the paper's contribution
//!
//! Privacy definitions, analytical expected-leakage models, and the
//! attack-evaluation harness of *"Will Sharing Metadata Leak Privacy?"*
//! (Zhan & Hai, ICDE 2024):
//!
//! * [`leakage`] — Definitions 2.2/2.3: index-aligned categorical exact
//!   matching, continuous ε-matching, MSE, tuple-level leakage;
//! * [`identifiability`] — Definition 2.1: identifiable tuples, minimal
//!   identifying attribute sets, per-attribute uniqueness profiles;
//! * [`analytical`] — the §III/§IV expected-leakage formulas (binomial
//!   random model, FD/AFD mapping model, hypergeometric ND model,
//!   interval-overlap OD model, ε/δ-ball DD model, random-walk OFD model),
//!   each cross-validated against Monte-Carlo generator runs;
//! * [`experiment`] — the §V harness: multi-round attacks via
//!   [`mp_synth::Adversary`] and the per-cell methodology behind the
//!   paper's Tables III and IV;
//! * [`report`] — plain-text rendering of regenerated tables.

#![warn(missing_docs)]

pub mod analytical;
pub mod audit;
pub mod defense;
pub mod experiment;
pub mod identifiability;
pub mod leakage;
pub mod matrix;
pub mod metric;
pub mod report;
pub mod seed;

pub use audit::{AuditConfig, CfdRisk, PolicyOutcome, PrivacyAudit};
pub use defense::{bucketize_column, generalize_to_k, k_anonymity};
pub use experiment::{
    run_attack, run_cell, run_cell_with_known_lhs, AttackResult, AttrSummary, ExperimentConfig,
};
pub use identifiability::{
    identifiability_rate, identifiable_tuples, minimal_identifying_sets, uniqueness_profile,
};
pub use leakage::{
    categorical_matches, continuous_matches, leakage_rate, measure_all, measure_all_with, mse,
    tuple_matches, AttrLeakage,
};
pub use matrix::{
    LeakageMatrix, MatrixCell, MatrixConfig, MatrixDataset, MatrixPolicy, MetadataClass,
};
pub use metric::{
    continuous_matches_metric, distance_series, tuple_distance_matches, ScalarMetric, VectorMetric,
};
pub use report::{na_cell, TextTable};
pub use seed::seed_for;
