//! §IV-E — ordered functional dependencies.
//!
//! An OFD forces the mapping from the `m` distinct determinant values to
//! be *strictly increasing* into the dependent domain: generating it is a
//! time-variant one-dimensional directed random walk over the sorted
//! codomain. The paper's sample transition probability — uniform over the
//! remaining choices given that all later values must still fit — is
//! `P_{i,i+1} = 1 − (|X| − t)/|Y|`, reaching 1 when the remaining budget
//! forces every step up.

/// The paper's transition probability `P_{i,i+1} = 1 − (|X| − t)/|Y|`,
/// clamped to [0, 1]: at step `t` of a walk placing `|X|` strictly
/// increasing values into a codomain of size `|Y|`.
pub fn transition_probability(card_x: usize, card_y: usize, t: usize) -> f64 {
    if card_y == 0 {
        return 0.0;
    }
    let remaining = card_x.saturating_sub(t) as f64;
    (1.0 - remaining / card_y as f64).clamp(0.0, 1.0)
}

/// Probability that a uniformly random strictly-increasing mapping
/// (an `m`-combination of a `d`-element codomain) assigns the correct
/// codomain value at one fixed position, marginally: each codomain element
/// is included with probability `m/d`, and conditioned on inclusion it
/// sits at the right rank… the simple marginal the paper's binomial model
/// uses is `θ_{Y,t} = m/d` per step; the joint positional probability is
/// `1/C(d, m)` for the whole walk.
pub fn marginal_step_probability(m: usize, card_y: usize) -> f64 {
    if card_y == 0 {
        return 0.0;
    }
    (m as f64 / card_y as f64).min(1.0)
}

/// Probability the adversary's whole walk reproduces the real mapping:
/// `1/C(|D_Y|, m)` (uniform over combinations).
pub fn whole_mapping_probability(m: usize, card_y: usize) -> f64 {
    let c = super::choose(card_y as u64, m as u64);
    if c <= 0.0 {
        0.0
    } else {
        1.0 / c
    }
}

/// Expected number of mapping positions where the walk agrees with the
/// real mapping: hypergeometric element overlap `m²/d` discounted by the
/// positional alignment requirement — for the binomial accounting the
/// paper uses, `N·θ_X·θ_{Y,t}` with `θ_{Y,t}` the marginal step
/// probability.
pub fn expected_matches(n_rows: usize, theta_x: f64, m: usize, card_y: usize) -> f64 {
    n_rows as f64 * theta_x * marginal_step_probability(m, card_y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_probability_paper_form() {
        // |X| = 5 values to place into |Y| = 10: at t = 0 the walk may stay
        // with probability 1 − 5/10.
        assert!((transition_probability(5, 10, 0) - 0.5).abs() < 1e-12);
        // As t approaches |X| the pressure releases.
        assert!((transition_probability(5, 10, 4) - 0.9).abs() < 1e-12);
        assert!((transition_probability(5, 10, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forced_moves_when_budget_tight() {
        // |X| = |Y|: every step is forced (probability clamps to 0 of
        // staying → transition to move is... the paper's P is the
        // probability of *moving up*, 1 when the budget is exhausted).
        assert_eq!(transition_probability(10, 10, 0), 0.0);
        assert_eq!(transition_probability(10, 5, 0), 0.0);
        assert_eq!(transition_probability(0, 5, 0), 1.0);
    }

    #[test]
    fn whole_mapping_probability_combinatorial() {
        assert!((whole_mapping_probability(2, 4) - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(whole_mapping_probability(5, 3), 0.0); // impossible
        assert!((whole_mapping_probability(3, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_matches_binomial_form() {
        // N = 100, θ_X = 0.1, m = 5, |D_Y| = 20 → 100·0.1·0.25 = 2.5.
        assert!((expected_matches(100, 0.1, 5, 20) - 2.5).abs() < 1e-12);
        assert_eq!(expected_matches(100, 0.1, 5, 0), 0.0);
    }

    #[test]
    fn monte_carlo_walk_element_hits() {
        use mp_relation::{Domain, Value};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // Element-level overlap of two random strictly increasing mappings
        // is hypergeometric with mean m²/d; the OFD generator should show
        // it. Build a real mapping and measure the adversary's agreement.
        let (m, d, rounds) = (6usize, 24usize, 120usize);
        let dom = Domain::categorical((0i64..d as i64).collect::<Vec<_>>());
        let lhs: Vec<Value> = (0..m * 10).map(|i| Value::Int((i % m) as i64)).collect();

        // Real mapping: value i ↦ 3i (strictly increasing).
        let real: Vec<Value> = lhs
            .iter()
            .map(|v| Value::Int(v.as_i64().unwrap() * 3))
            .collect();

        let mut element_hits = 0usize;
        for round in 0..rounds {
            let mut rng = StdRng::seed_from_u64(round as u64);
            let syn = mp_synth::generate_ofd_column(&lhs, &dom, lhs.len(), &mut rng);
            // Count mapping positions that agree (measure on distinct lhs).
            for i in 0..m {
                if syn[i] == real[i] {
                    element_hits += 1;
                }
            }
        }
        let mean = element_hits as f64 / rounds as f64;
        // Positional agreement is below the element-overlap mean m²/d but
        // well above zero; sanity-band it.
        let upper = expected_matches(m, 1.0, m, d) + 1.0;
        assert!(mean > 0.05, "mean {mean} suspiciously low");
        assert!(
            mean < upper,
            "mean {mean} above element-overlap bound {upper}"
        );
    }
}
