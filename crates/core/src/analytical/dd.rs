//! §IV-D — differential dependencies.
//!
//! With continuous attributes a generated value within ε of the real one
//! already leaks (Definition 2.3), so the determinant cell hits with
//! probability `2ε_x/range(X)`. The dependent cell's success is the
//! overlap of the generated and real δ-balls normalised by the range,
//! giving the paper's product form
//! `2ε_x · |[y'−ε, y'+ε] ∩ [y−ε, y+ε]| / (range(X)·range(Y))`.

use super::od::interval_overlap;

/// θ for the determinant: `2ε/range`, clamped to [0, 1].
pub fn theta_ball(eps: f64, range: f64) -> f64 {
    if range <= 0.0 {
        return 1.0;
    }
    (2.0 * eps / range).clamp(0.0, 1.0)
}

/// Overlap length of the ε-balls around `y_gen` and `y_real`.
pub fn ball_overlap(y_gen: f64, y_real: f64, eps: f64) -> f64 {
    interval_overlap((y_gen - eps, y_gen + eps), (y_real - eps, y_real + eps))
}

/// The paper's per-tuple success probability for a DD-driven generation:
/// `2ε_x · overlap / (range(X)·range(Y))` where `overlap` is the ball
/// overlap on Y.
pub fn tuple_probability(
    eps_x: f64,
    range_x: f64,
    y_gen: f64,
    y_real: f64,
    eps_y: f64,
    range_y: f64,
) -> f64 {
    if range_x <= 0.0 || range_y <= 0.0 {
        return 0.0;
    }
    (2.0 * eps_x / range_x) * (ball_overlap(y_gen, y_real, eps_y) / range_y)
}

/// Expected matches integrating the ball overlap over a uniformly random
/// generated value. The overlap of the two ε-balls is
/// `max(2ε − |y'−y|, 0)`, a triangle of base `4ε` and height `2ε`; its
/// mean over `y' ∈ [0, range]` (away from the boundary) is the triangle
/// area over the range, `(2ε)²/range = 4ε²/range`. The expected match
/// count is then `N · θ_x · E[overlap]/range_y`.
pub fn expected_matches(n_rows: usize, eps_x: f64, range_x: f64, eps_y: f64, range_y: f64) -> f64 {
    if range_x <= 0.0 || range_y <= 0.0 {
        return 0.0;
    }
    let mean_overlap = 4.0 * eps_y * eps_y / range_y;
    n_rows as f64 * theta_ball(eps_x, range_x) * (mean_overlap / range_y).min(1.0)
}

/// The ε-match expectation under Definition 2.3 for a *free* uniform
/// generation of Y (the random baseline a DD must be compared against):
/// `N·2ε/range(Y)`.
pub fn random_baseline_matches(n_rows: usize, eps_y: f64, range_y: f64) -> f64 {
    n_rows as f64 * theta_ball(eps_y, range_y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_ball_clamps() {
        assert!((theta_ball(1.0, 10.0) - 0.2).abs() < 1e-12);
        assert_eq!(theta_ball(100.0, 10.0), 1.0);
        assert_eq!(theta_ball(1.0, 0.0), 1.0);
    }

    #[test]
    fn ball_overlap_geometry() {
        // Identical centres: full 2ε overlap.
        assert!((ball_overlap(3.0, 3.0, 0.5) - 1.0).abs() < 1e-12);
        // Centres 2ε apart: tangent, zero overlap.
        assert_eq!(ball_overlap(0.0, 2.0, 1.0), 0.0);
        // Partial.
        assert!((ball_overlap(0.0, 1.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tuple_probability_product_form() {
        let p = tuple_probability(1.0, 10.0, 5.0, 5.0, 0.5, 20.0);
        // θ_x = 0.2; overlap = 1.0; /range_y = 0.05 → 0.01.
        assert!((p - 0.01).abs() < 1e-12);
        assert_eq!(tuple_probability(1.0, 0.0, 0.0, 0.0, 1.0, 10.0), 0.0);
    }

    #[test]
    fn expected_matches_scales_quadratically_in_eps_y() {
        let a = expected_matches(1000, 1.0, 10.0, 0.5, 50.0);
        let b = expected_matches(1000, 1.0, 10.0, 1.0, 50.0);
        assert!(
            (b / a - 4.0).abs() < 1e-9,
            "doubling ε_y quadruples overlap mass"
        );
    }

    #[test]
    fn dd_pair_leaks_less_than_free_generation_pair() {
        // For the (X, Y) PAIR, the DD-driven expectation N·θx·E[ov]/r is
        // below the independent-random pair expectation N·θx·θy as soon as
        // E[overlap]/range < θ_y, i.e. ε_y < range/… — sanity-check the
        // regime the paper's conclusion covers.
        let n = 1000;
        let (ex, rx, ey, ry) = (1.0, 10.0, 0.5, 50.0);
        let dd = expected_matches(n, ex, rx, ey, ry);
        let rand_pair = n as f64 * theta_ball(ex, rx) * theta_ball(ey, ry);
        assert!(dd <= rand_pair + 1e-12);
    }

    #[test]
    fn monte_carlo_ball_overlap_mean() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // E[overlap(y', y)] over uniform y' matches (2ε)²/(2·range) away
        // from boundaries.
        let (eps, range) = (2.0, 100.0);
        let y_real = 50.0;
        let mut rng = StdRng::seed_from_u64(31);
        let samples = 200_000;
        let mean: f64 = (0..samples)
            .map(|_| ball_overlap(rng.gen_range(0.0..range), y_real, eps))
            .sum::<f64>()
            / samples as f64;
        let analytic = 4.0 * eps * eps / range;
        assert!(
            (mean - analytic).abs() < 0.05 * analytic,
            "mean {mean} vs analytic {analytic}"
        );
    }
}
