//! §III-B (functional dependencies) and §IV-A (approximate FDs).
//!
//! Sharing the FD `A → B` lets the adversary initialise one mapping for
//! the whole dataset, but the paper shows the *total* expected number of
//! correctly generated (A, B) cells is the same as random generation:
//! `N·θ_A·θ_B`. What changes is the error *structure*: a correct mapping
//! is correct on every tuple of its partition, an incorrect one never is —
//! whereas random generation scatters hits uniformly. AFDs add a `g3`
//! budget ε whose violating fraction behaves like random generation and
//! whose remaining `1 − ε` behaves like the FD, leaving the total
//! unchanged again.

/// The paper's `E(B|A) = |D_A|/|D_B|`: expected number of *correct mapping
/// entries* when each of the `|D_A|` determinant values independently
/// picks its image uniformly from `|D_B|` values. Since the FD `A → B`
/// implies `|D_A| ≥ |D_B|`, this is ≥ 1 — at least one mapping entry is
/// expected to be correct.
pub fn expected_correct_mappings(card_a: usize, card_b: usize) -> f64 {
    if card_b == 0 {
        return 0.0;
    }
    card_a as f64 / card_b as f64
}

/// Expected number of tuples where both A and B are generated correctly:
/// `N·θ_A·θ_B = N/(|D_A|·|D_B|)` — identical to independent random
/// generation (the paper's headline FD result).
pub fn expected_pair_matches(n_rows: usize, card_a: usize, card_b: usize) -> f64 {
    if card_a == 0 || card_b == 0 {
        return 0.0;
    }
    n_rows as f64 / (card_a as f64 * card_b as f64)
}

/// Expected number of tuples whose *B cell alone* is generated correctly
/// under FD-driven generation, assuming uniform partitions: each
/// determinant partition (N/|D_A| tuples) is all-correct with probability
/// `1/|D_B|`, giving `N/|D_B|` — again equal to random generation of B.
pub fn expected_rhs_matches(n_rows: usize, card_b: usize) -> f64 {
    if card_b == 0 {
        return 0.0;
    }
    n_rows as f64 / card_b as f64
}

/// Variance of the RHS match count under FD-driven generation with uniform
/// partitions of size `N/|D_A|`: block-correlated Bernoulli — the whole
/// block of `s = N/|D_A|` tuples is right or wrong together, so
/// `Var = |D_A| · s² · p(1−p)` with `p = 1/|D_B|`. This exceeds the random
/// baseline's `N·p(1−p)` by the factor `s`, which is the paper's
/// "a correct mapping is always correct" observation made quantitative.
pub fn rhs_match_variance(n_rows: usize, card_a: usize, card_b: usize) -> f64 {
    if card_a == 0 || card_b == 0 {
        return 0.0;
    }
    let s = n_rows as f64 / card_a as f64;
    let p = 1.0 / card_b as f64;
    card_a as f64 * s * s * p * (1.0 - p)
}

/// §IV-A: the AFD split of expected pair matches into the structured
/// (mapping-driven, `1 − ε`) and scattered (random, `ε`) parts. They sum to
/// the FD/random total.
pub fn afd_split(n_rows: usize, epsilon: f64, card_a: usize, card_b: usize) -> (f64, f64) {
    let total = expected_pair_matches(n_rows, card_a, card_b);
    (total * (1.0 - epsilon), total * epsilon)
}

/// §III-B transitivity: a chain `A → B → C` generates B from A's mapping
/// and C from B's mapping independently; the expected triple-correct count
/// is `N/(|D_A|·|D_B|·|D_C|)` — still the random baseline.
pub fn expected_chain_matches(n_rows: usize, cards: &[usize]) -> f64 {
    if cards.contains(&0) {
        return 0.0;
    }
    n_rows as f64 / cards.iter().map(|&c| c as f64).product::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_guarantees_one_mapping() {
        // |D_A| ≥ |D_B| under an FD ⇒ E(B|A) ≥ 1 (the paper's point).
        assert!(expected_correct_mappings(10, 5) >= 1.0);
        assert_eq!(expected_correct_mappings(6, 6), 1.0);
        assert_eq!(expected_correct_mappings(4, 0), 0.0);
    }

    #[test]
    fn fd_total_equals_random_total() {
        let n = 1000;
        let (a, b) = (20, 5);
        let fd = expected_pair_matches(n, a, b);
        let random = n as f64 * (1.0 / a as f64) * (1.0 / b as f64);
        assert!((fd - random).abs() < 1e-12);
    }

    #[test]
    fn afd_split_sums_to_total() {
        let (structured, scattered) = afd_split(500, 0.2, 10, 4);
        let total = expected_pair_matches(500, 10, 4);
        assert!((structured + scattered - total).abs() < 1e-12);
        assert!((scattered / total - 0.2).abs() < 1e-12);
    }

    #[test]
    fn chain_extends_product() {
        assert!((expected_chain_matches(1200, &[10, 6, 2]) - 10.0).abs() < 1e-12);
        assert_eq!(expected_chain_matches(100, &[5, 0]), 0.0);
    }

    #[test]
    fn variance_blowup_factor_is_partition_size() {
        let n = 1000;
        let (a, b) = (50, 10);
        let fd_var = rhs_match_variance(n, a, b);
        let random_var = n as f64 * (1.0 / b as f64) * (1.0 - 1.0 / b as f64);
        let s = n as f64 / a as f64;
        assert!((fd_var / random_var - s).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_rhs_matches_agree() {
        use mp_relation::{Domain, Value};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // Real data: uniform A (card 10) with a true mapping to B (card 5).
        let (card_a, card_b, n, rounds) = (10usize, 5usize, 500usize, 60usize);
        let dom_b = Domain::categorical((0i64..card_b as i64).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(4242);
        let real_a: Vec<Value> = (0..n).map(|i| Value::Int((i % card_a) as i64)).collect();
        let real_b: Vec<Value> = real_a
            .iter()
            .map(|v| Value::Int(v.as_i64().unwrap() % card_b as i64))
            .collect();

        // FD-driven generation: adversary generates B via a random mapping
        // keyed on the REAL A (so only the B-cell correctness is at play).
        let mut total = 0usize;
        for _ in 0..rounds {
            let syn_b = mp_synth::generate_fd_column(&[&real_a], &dom_b, n, &mut rng);
            total += real_b.iter().zip(&syn_b).filter(|(x, y)| x == y).count();
        }
        let mean = total as f64 / rounds as f64;
        let expected = expected_rhs_matches(n, card_b);
        // Block-correlated variance makes per-round spread large; the mean
        // over rounds should still approach N/|D_B| = 100.
        assert!(
            (mean - expected).abs() < 0.25 * expected,
            "mean {mean} vs expected {expected}"
        );
    }
}
