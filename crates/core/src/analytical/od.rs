//! §IV-C — order dependencies.
//!
//! An OD `X → Y` tells the adversary how many ordered partitions the
//! dependent domain splits into (one per distinct determinant value). The
//! adversary draws its own non-decreasing boundary sequence `{y'_i}`; a
//! row in partition `i` is generated correctly only when the generated and
//! real intervals overlap. The paper's per-partition success probability:
//! `θ_{y_i} = max(y_{i+1} − y'_i, 0)/(y_max − y_i)`, and the total
//! expectation `Σ_i N θ_{x_i} θ_{y_i}`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Overlap length of two closed intervals.
pub fn interval_overlap(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.1.min(b.1) - a.0.max(b.0)).max(0.0)
}

/// The paper's per-partition probability
/// `θ_{y_i} = max(y_{i+1} − y'_i, 0)/(y_max − y_i)`: the chance the value
/// generated for partition `i` (conditioned to lie above the previously
/// generated boundary `y'_i`) lands inside the real interval
/// `[y_i, y_{i+1}]`.
pub fn theta_y(y_prime_i: f64, y_i: f64, y_i1: f64, y_max: f64) -> f64 {
    let denom = y_max - y_i;
    if denom <= 0.0 {
        return 0.0;
    }
    ((y_i1 - y_prime_i.max(y_i)).max(0.0) / denom).min(1.0)
}

/// Expected correctly generated rows given the real partition boundaries
/// `real` (`m+1` sorted values over the domain) and the adversary's
/// boundaries `gen` (same length), with `rows_per_partition[i]` tuples in
/// partition `i` and determinant success probability `theta_x`:
/// `Σ_i N_i · θ_x · overlap_i / range` — the interval-overlap form of the
/// paper's sum `Σ N θ_{x_i} θ_{y_i}`.
pub fn expected_matches(
    real: &[f64],
    gen: &[f64],
    rows_per_partition: &[usize],
    theta_x: f64,
) -> f64 {
    assert_eq!(real.len(), gen.len(), "boundary sequences must align");
    if real.len() < 2 {
        return 0.0;
    }
    let range = real[real.len() - 1] - real[0]; // lint: allow(no-literal-index) reason="guarded by the len() < 2 early return above"
    if range <= 0.0 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..real.len() - 1 {
        let n_i = *rows_per_partition.get(i).unwrap_or(&0) as f64;
        let overlap = interval_overlap((real[i], real[i + 1]), (gen[i], gen[i + 1]));
        total += n_i * theta_x * overlap / range;
    }
    total
}

/// Monte-Carlo estimate of the *expected* total interval overlap between
/// two independent sorted uniform partitions of `[0, range]` into `m`
/// intervals, normalised by the range (∈ [0, 1]). Used by the sweep
/// binaries: the paper argues this is high-variance, hence OD leakage is
/// low.
pub fn expected_overlap_uniform(m: usize, samples: usize, seed: u64) -> f64 {
    if m == 0 || samples == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0.0;
    for _ in 0..samples {
        let a = sorted_boundaries(m, &mut rng);
        let b = sorted_boundaries(m, &mut rng);
        let mut overlap = 0.0;
        for i in 0..m {
            overlap += interval_overlap((a[i], a[i + 1]), (b[i], b[i + 1]));
        }
        acc += overlap; // range is 1
    }
    acc / samples as f64
}

fn sorted_boundaries(m: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut inner: Vec<f64> = (0..m.saturating_sub(1)).map(|_| rng.gen::<f64>()).collect();
    inner.sort_by(f64::total_cmp);
    let mut out = Vec::with_capacity(m + 1);
    out.push(0.0);
    out.extend(inner);
    out.push(1.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_basics() {
        assert_eq!(interval_overlap((0.0, 2.0), (1.0, 3.0)), 1.0);
        assert_eq!(interval_overlap((0.0, 1.0), (2.0, 3.0)), 0.0);
        assert_eq!(interval_overlap((0.0, 5.0), (1.0, 2.0)), 1.0);
        assert_eq!(interval_overlap((1.0, 1.0), (1.0, 1.0)), 0.0);
    }

    #[test]
    fn theta_y_matches_paper_form() {
        // Real interval [2, 5] of a domain ending at 10; generated lower
        // boundary y'_i = 3 → θ = (5 − 3)/(10 − 2) = 0.25.
        assert!((theta_y(3.0, 2.0, 5.0, 10.0) - 0.25).abs() < 1e-12);
        // Disjoint: y'_i above the real interval → zero.
        assert_eq!(theta_y(6.0, 2.0, 5.0, 10.0), 0.0);
        // y'_i below the interval start clamps to the full interval.
        assert!((theta_y(0.0, 2.0, 5.0, 10.0) - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(theta_y(0.0, 5.0, 5.0, 5.0), 0.0);
    }

    #[test]
    fn identical_partitions_give_full_expectation() {
        let bounds = [0.0, 2.0, 5.0, 10.0];
        let rows = [10usize, 10, 10];
        // Perfect boundary knowledge with θ_x = 1: every row's generated
        // interval equals the real one → expectation = Σ N_i·len_i/range.
        let e = expected_matches(&bounds, &bounds, &rows, 1.0);
        let manual = 10.0 * (2.0 / 10.0) + 10.0 * (3.0 / 10.0) + 10.0 * (5.0 / 10.0);
        assert!((e - manual).abs() < 1e-12);
    }

    #[test]
    fn disjoint_partitions_give_zero() {
        let real = [0.0, 1.0, 10.0];
        let gen = [0.0, 9.5, 10.0];
        // Partition 0: real [0,1] vs gen [0,9.5] → overlap 1; partition 1:
        // [1,10] vs [9.5,10] → 0.5.
        let e = expected_matches(&real, &gen, &[5, 5], 1.0);
        assert!((e - (5.0 * 0.1 + 5.0 * 0.05)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(expected_matches(&[1.0], &[1.0], &[], 1.0), 0.0);
        assert_eq!(expected_matches(&[1.0, 1.0], &[1.0, 1.0], &[3], 1.0), 0.0);
        assert_eq!(expected_overlap_uniform(0, 10, 1), 0.0);
    }

    #[test]
    fn uniform_overlap_decreases_with_partitions() {
        // More partitions → more misalignment → less expected overlap.
        let few = expected_overlap_uniform(2, 400, 5);
        let many = expected_overlap_uniform(16, 400, 5);
        assert!(few > many, "few {few} many {many}");
        assert!(few <= 1.0 && many > 0.0);
    }

    #[test]
    fn single_partition_overlaps_fully() {
        // m = 1: both "partitions" are the whole domain.
        let e = expected_overlap_uniform(1, 50, 2);
        assert!((e - 1.0).abs() < 1e-9);
    }
}
