//! Analytical expected-leakage models — the paper's §III and §IV
//! derivations, one module per metadata level.
//!
//! Each function implements a formula exactly where the paper states one,
//! with the section cited in its doc comment. Tests cross-validate every
//! model against Monte-Carlo runs of the corresponding generator in
//! `mp-synth` (see `crates/core/tests` and the sweep binaries in
//! `mp-bench`).

pub mod cfd;
pub mod dd;
pub mod distribution;
pub mod fd;
pub mod nd;
pub mod od;
pub mod ofd;
pub mod random;

/// Natural log of the binomial coefficient `C(n, k)`, stable for large
/// arguments. Returns `f64::NEG_INFINITY` when `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    let mut acc = 0.0;
    for i in 0..k {
        acc += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    acc
}

/// `C(n, k)` as an `f64` (may be `inf` for huge arguments; exact enough for
/// probability ratios).
pub fn choose(n: u64, k: u64) -> f64 {
    ln_choose(n, k).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_small_values() {
        assert_eq!(choose(5, 2).round(), 10.0);
        assert_eq!(choose(10, 0).round(), 1.0);
        assert_eq!(choose(10, 10).round(), 1.0);
        assert_eq!(choose(3, 5), 0.0);
    }

    #[test]
    fn choose_large_values_stable() {
        // C(1000, 500) overflows u128 but ln_choose stays finite.
        let ln = ln_choose(1000, 500);
        assert!(ln.is_finite());
        assert!((ln - 689.467).abs() < 0.01); // known value ≈ e^689.47
    }

    #[test]
    fn symmetry() {
        for n in [7u64, 20, 63] {
            for k in 0..=n {
                assert!((ln_choose(n, k) - ln_choose(n, n - k)).abs() < 1e-9);
            }
        }
    }
}
