//! §III-A — leakage of sharing attribute names and domains.
//!
//! Tuple generation is independent, so correct generations over the
//! dataset follow a Binomial(N, θ_A) with `θ_A = 1/|D_A|` for uniform
//! categorical generation. The paper's leakage criterion: privacy leaks if
//! the expected number of correct generations `N·θ_A ≥ 1`.

use mp_relation::Domain;

/// Expected number of index-aligned correct generations, `N·θ`.
pub fn expected_matches(n_rows: usize, theta: f64) -> f64 {
    n_rows as f64 * theta
}

/// Expected matches for uniform generation from `domain` with continuous
/// tolerance `epsilon` (θ from [`Domain::theta`]).
pub fn expected_matches_for_domain(n_rows: usize, domain: &Domain, epsilon: f64) -> f64 {
    expected_matches(n_rows, domain.theta(epsilon))
}

/// The paper's §III-A leakage predicate: `N·θ_A ≥ 1`.
pub fn leaks(n_rows: usize, theta: f64) -> bool {
    expected_matches(n_rows, theta) >= 1.0
}

/// Variance of the match count, `N·θ(1−θ)` (Binomial).
pub fn match_variance(n_rows: usize, theta: f64) -> f64 {
    n_rows as f64 * theta * (1.0 - theta)
}

/// Probability of at least one correct generation, `1 − (1−θ)^N`.
pub fn prob_any_match(n_rows: usize, theta: f64) -> f64 {
    1.0 - (1.0 - theta).powi(n_rows as i32)
}

/// Expected MSE of uniform generation from `[min, max]` against a fixed
/// real value `x`: `E[(x−U)²] = (x−μ)² + w²/12` with `μ` the interval
/// midpoint and `w` its width. Averaging over real values distributed
/// uniformly too gives the classic `w²/6`.
pub fn expected_mse_vs_value(x: f64, min: f64, max: f64) -> f64 {
    let w = max - min;
    let mu = (min + max) / 2.0;
    (x - mu) * (x - mu) + w * w / 12.0
}

/// Expected MSE when both real and generated values are uniform on the
/// domain: `w²/6`.
pub fn expected_mse_uniform(min: f64, max: f64) -> f64 {
    let w = max - min;
    w * w / 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_3_1() {
        // Age domain [18, 26]: 9 values, N = 4 → expectation 4/9 < 1:
        // leakage unlikely. Department: 3 values → 4/3 ≥ 1: leak expected.
        let age = Domain::categorical((18i64..=26).collect::<Vec<_>>());
        assert!((expected_matches_for_domain(4, &age, 0.0) - 4.0 / 9.0).abs() < 1e-12);
        assert!(!leaks(4, age.theta(0.0)));

        let dept = Domain::categorical(vec!["Sales", "CS", "Mgmt"]);
        assert!((expected_matches_for_domain(4, &dept, 0.0) - 4.0 / 3.0).abs() < 1e-12);
        assert!(leaks(4, dept.theta(0.0)));
    }

    #[test]
    fn binomial_moments() {
        assert_eq!(expected_matches(100, 0.25), 25.0);
        assert_eq!(match_variance(100, 0.25), 100.0 * 0.25 * 0.75);
        assert!((prob_any_match(10, 0.1) - (1.0 - 0.9f64.powi(10))).abs() < 1e-12);
        assert_eq!(prob_any_match(0, 0.5), 0.0);
    }

    #[test]
    fn continuous_epsilon_matches() {
        // Domain width 10, ε = 1 → θ = 0.2, N = 50 → expect 10.
        let d = Domain::continuous(0.0, 10.0);
        assert!((expected_matches_for_domain(50, &d, 1.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mse_formulas() {
        assert!((expected_mse_uniform(0.0, 6.0) - 6.0).abs() < 1e-12);
        // At the midpoint the conditional MSE is w²/12.
        assert!((expected_mse_vs_value(3.0, 0.0, 6.0) - 3.0).abs() < 1e-12);
        // Away from the midpoint it grows quadratically.
        assert!((expected_mse_vs_value(0.0, 0.0, 6.0) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_agreement() {
        use mp_relation::Value;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Empirical matches vs N·θ for categorical uniform generation.
        let dom = Domain::categorical((0i64..7).collect::<Vec<_>>());
        let n = 7000usize;
        let mut rng = StdRng::seed_from_u64(99);
        let real = mp_synth::sample_column(&dom, n, &mut rng);
        let syn = mp_synth::sample_column(&dom, n, &mut rng);
        let matches = real
            .iter()
            .zip(&syn)
            .filter(|(a, b): &(&Value, &Value)| a == b)
            .count() as f64;
        let expected = expected_matches(n, dom.theta(0.0));
        let sd = match_variance(n, dom.theta(0.0)).sqrt();
        assert!(
            (matches - expected).abs() < 4.0 * sd,
            "matches {matches} vs expected {expected}"
        );
    }
}
