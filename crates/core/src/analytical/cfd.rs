//! Extension: expected leakage of conditional functional dependencies.
//!
//! The paper analyses dependency classes whose metadata is purely
//! *structural* (which attributes constrain which) and finds none of them
//! leaks beyond the domain level. CFDs break that pattern: a constant CFD
//! `(X = x → Y = y)` ships two **data values** inside the metadata. This
//! module quantifies the difference within the paper's own framework.
//!
//! Setup: N tuples, support `s` = number of real tuples with `X = x`
//! (hence `Y = y`), domains `|D_X|`, `|D_Y|`.
//!
//! * Random/FD-level baseline on the matching rows' Y cells:
//!   `s / |D_Y|`.
//! * CFD adversary (pattern strategy): it can set `Y = y` on every row it
//!   generates with `X = x` — those rows' Y cells are right whenever the
//!   real row also matches, giving `s / |D_X|` expected extra-correct
//!   cells, a factor `|D_Y|` more per matching row than the baseline.
//! * CFD adversary (constant-flood strategy): set `Y = y` on *all* rows;
//!   expected correct = `s` — beats random on Y whenever
//!   `s > N/|D_Y|`, i.e. the pattern is more frequent than a uniform
//!   value.

/// Expected Y-cell hits on the matching partition for the *baseline*
/// (uniform generation): `s/|D_Y|`.
pub fn baseline_partition_hits(support: usize, card_y: usize) -> f64 {
    if card_y == 0 {
        return 0.0;
    }
    support as f64 / card_y as f64
}

/// Expected Y-cell hits for the CFD adversary that applies the pattern to
/// its generated rows: rows where generated `X = x` (probability
/// `1/|D_X|`) and the real row matches (`s` of them) are guaranteed hits —
/// `s/|D_X|`.
pub fn pattern_strategy_hits(support: usize, card_x: usize) -> f64 {
    if card_x == 0 {
        return 0.0;
    }
    support as f64 / card_x as f64
}

/// Expected Y-cell hits for the constant-flood strategy (`Y = y`
/// everywhere): exactly the support `s`.
pub fn flood_strategy_hits(support: usize) -> f64 {
    support as f64
}

/// The multiplicative leakage amplification of the flood strategy over the
/// random baseline on attribute Y: `s·|D_Y|/N`. Values > 1 mean the CFD
/// leaks strictly more than anything in the paper's §III/§IV.
pub fn flood_amplification(n_rows: usize, support: usize, card_y: usize) -> f64 {
    if n_rows == 0 {
        return 0.0;
    }
    support as f64 * card_y as f64 / n_rows as f64
}

/// `true` iff sharing this constant CFD gives the adversary a strictly
/// better-than-random strategy on Y (the flood criterion `s > N/|D_Y|`).
pub fn leaks_more_than_random(n_rows: usize, support: usize, card_y: usize) -> bool {
    flood_amplification(n_rows, support, card_y) > 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_ordering() {
        // N = 100, support 30, |D_X| = 5, |D_Y| = 4.
        let base = baseline_partition_hits(30, 4); // 7.5
        let pattern = pattern_strategy_hits(30, 5); // 6.0
        let flood = flood_strategy_hits(30); // 30
        assert!(flood > base);
        assert!((base - 7.5).abs() < 1e-12);
        assert!((pattern - 6.0).abs() < 1e-12);
    }

    #[test]
    fn flood_criterion() {
        // support 30 of 100, |D_Y| = 4: 30 > 25 → leaks more.
        assert!(leaks_more_than_random(100, 30, 4));
        // support 20: 20 < 25 → does not beat random.
        assert!(!leaks_more_than_random(100, 20, 4));
        assert!((flood_amplification(100, 30, 4) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(baseline_partition_hits(10, 0), 0.0);
        assert_eq!(pattern_strategy_hits(10, 0), 0.0);
        assert_eq!(flood_amplification(0, 5, 2), 0.0);
    }

    #[test]
    fn monte_carlo_flood_strategy() {
        use mp_metadata::ConditionalFd;
        use mp_relation::{Domain, Value};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // Real data: X uniform over 4, Y = 7 whenever X = 0 (support ≈ N/4),
        // otherwise uniform over 8 values.
        let (n, card_x, card_y, rounds) = (800usize, 4usize, 8usize, 40usize);
        let mut rng = StdRng::seed_from_u64(55);
        let dom_x = Domain::categorical((0i64..card_x as i64).collect::<Vec<_>>());
        let dom_y = Domain::categorical((0i64..card_y as i64).collect::<Vec<_>>());
        let real_x = mp_synth::sample_column(&dom_x, n, &mut rng);
        let real_y: Vec<Value> = real_x
            .iter()
            .map(|v| {
                if *v == Value::Int(0) {
                    Value::Int(7)
                } else {
                    Value::Int((v.as_i64().unwrap() * 2) % card_y as i64)
                }
            })
            .collect();
        let support = real_x.iter().filter(|v| **v == Value::Int(0)).count();

        // CFD-driven generation through the pattern strategy.
        let cfd = ConditionalFd::constant(0, 0i64, 1, 7i64);
        let mut pattern_hits = 0usize;
        let mut random_hits = 0usize;
        for round in 0..rounds {
            let mut rng = StdRng::seed_from_u64(round as u64);
            let sx = mp_synth::sample_column(&dom_x, n, &mut rng);
            let sy = mp_synth::generate_cfd_column(&cfd, &[&sx], &dom_y, n, &mut rng);
            pattern_hits += (0..n).filter(|&i| sy[i] == real_y[i]).count();
            let ry = mp_synth::sample_column(&dom_y, n, &mut rng);
            random_hits += (0..n).filter(|&i| ry[i] == real_y[i]).count();
        }
        let pattern_mean = pattern_hits as f64 / rounds as f64;
        let random_mean = random_hits as f64 / rounds as f64;
        // Expected Y hits: pattern rows s/|D_X| sure hits + non-pattern
        // rows at the 1/|D_Y| baseline.
        let expected = pattern_strategy_hits(support, card_x)
            + (n as f64 - n as f64 / card_x as f64) / card_y as f64;
        assert!(
            (pattern_mean - expected).abs() < 0.2 * expected,
            "pattern {pattern_mean} vs expected {expected}"
        );
        // And it visibly beats random generation on this attribute.
        assert!(
            pattern_mean > random_mean * 1.15,
            "pattern {pattern_mean} vs random {random_mean}"
        );
    }
}
