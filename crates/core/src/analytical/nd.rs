//! §IV-B — numerical dependencies `X →≤K Y`.
//!
//! The adversary knows each determinant value maps into at most `K`
//! dependent values, so it selects a random `K`-subset of `dom(Y)` per
//! determinant value (a hypergeometric selection) and samples within it.

use super::choose;

/// The paper's §IV-B pair expectation `N·K/(|D_X|·|D_Y|)`.
///
/// The `K/|D_Y|` factor is *mapping coverage*: the probability the
/// adversary's random K-subset for a determinant value contains the real
/// dependent value. A tuple counts when its X cell is right (`1/|D_X|`)
/// and its mapping covers the truth.
pub fn expected_pair_matches(n_rows: usize, k: usize, card_x: usize, card_y: usize) -> f64 {
    if card_x == 0 || card_y == 0 {
        return 0.0;
    }
    n_rows as f64 * k as f64 / (card_x as f64 * card_y as f64)
}

/// Exact-cell pair expectation: both the X and Y *values* equal the real
/// ones. Sampling uniformly inside a covering subset contributes `1/K`, so
/// the net per-cell probability collapses back to `1/|D_Y|` and the total
/// to the random baseline `N/(|D_X|·|D_Y|)` — NDs, like FDs, add no exact
/// leakage.
pub fn expected_exact_pair_matches(n_rows: usize, card_x: usize, card_y: usize) -> f64 {
    if card_x == 0 || card_y == 0 {
        return 0.0;
    }
    n_rows as f64 / (card_x as f64 * card_y as f64)
}

/// Hypergeometric expectation of §IV-B: the number of elements shared by
/// the adversary's random `k`-subset and the real `k`-subset of a
/// `|D_Y|`-element domain, `k²/|D_Y|`.
pub fn expected_mapping_hits(k: usize, card_y: usize) -> f64 {
    if card_y == 0 {
        return 0.0;
    }
    (k * k) as f64 / card_y as f64
}

/// The paper's probability of at least one correct mapping element:
/// `1 − C(|D_Y|−K, K)/C(|D_Y|, K)` (the chance a random K-subset misses
/// the real K-subset entirely, complemented).
pub fn prob_any_mapping_hit(k: usize, card_y: usize) -> f64 {
    if k == 0 || card_y == 0 {
        return 0.0;
    }
    if 2 * k > card_y {
        // Subsets larger than half the domain must intersect.
        return 1.0;
    }
    let miss = (super::ln_choose((card_y - k) as u64, k as u64)
        - super::ln_choose(card_y as u64, k as u64))
    .exp();
    1.0 - miss
}

/// The paper's pigeonhole guarantee: when `k > |D_Y|/2`, any two k-subsets
/// of the domain share at least `2k − |D_Y|` elements.
pub fn guaranteed_overlap(k: usize, card_y: usize) -> usize {
    (2 * k).saturating_sub(card_y)
}

/// Exact hypergeometric pmf `P(overlap = j)` between a random k-subset and
/// a fixed k-subset of a `card_y`-element domain.
pub fn overlap_pmf(k: usize, card_y: usize, j: usize) -> f64 {
    if j > k || k > card_y {
        return 0.0;
    }
    let num = choose(k as u64, j as u64) * choose((card_y - k) as u64, (k - j) as u64);
    let den = choose(card_y as u64, k as u64);
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_expectation_formula() {
        // N·K/(|D_X|·|D_Y|) = 1000·4/200 = 20.
        assert!((expected_pair_matches(1000, 4, 10, 20) - 20.0).abs() < 1e-12);
        assert_eq!(expected_pair_matches(10, 2, 0, 5), 0.0);
        // Exact-cell expectation is K-independent: the random baseline.
        assert!((expected_exact_pair_matches(1000, 10, 20) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn k_equals_domain_reduces_to_random() {
        // K = |D_Y| means no constraint: N·K/(|D_X|·|D_Y|) = N/|D_X| —
        // the Y cell is free, only X must match.
        let e = expected_pair_matches(100, 20, 5, 20);
        assert!((e - 20.0).abs() < 1e-12);
    }

    #[test]
    fn mapping_hits_hypergeometric_mean() {
        assert!((expected_mapping_hits(4, 16) - 1.0).abs() < 1e-12);
        // Mean of the pmf equals k²/|D_Y|.
        let (k, d) = (5usize, 12usize);
        let mean: f64 = (0..=k).map(|j| j as f64 * overlap_pmf(k, d, j)).sum();
        assert!((mean - expected_mapping_hits(k, d)).abs() < 1e-9);
    }

    #[test]
    fn pmf_sums_to_one() {
        for (k, d) in [(3usize, 10usize), (5, 8), (1, 1)] {
            let total: f64 = (0..=k).map(|j| overlap_pmf(k, d, j)).sum();
            assert!((total - 1.0).abs() < 1e-9, "k={k} d={d} total={total}");
        }
    }

    #[test]
    fn prob_any_hit_bounds() {
        assert_eq!(prob_any_mapping_hit(0, 10), 0.0);
        assert_eq!(prob_any_mapping_hit(6, 10), 1.0); // pigeonhole
        let p = prob_any_mapping_hit(2, 10);
        // 1 − C(8,2)/C(10,2) = 1 − 28/45.
        assert!((p - (1.0 - 28.0 / 45.0)).abs() < 1e-9);
        // Consistent with the pmf.
        let p_pmf = 1.0 - overlap_pmf(2, 10, 0);
        assert!((p - p_pmf).abs() < 1e-9);
    }

    #[test]
    fn pigeonhole_guarantee() {
        assert_eq!(guaranteed_overlap(6, 10), 2);
        assert_eq!(guaranteed_overlap(5, 10), 0);
        assert_eq!(guaranteed_overlap(10, 10), 10);
    }

    #[test]
    fn monte_carlo_pair_matches_agree() {
        use mp_relation::{Domain, Value};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let (n, k, card_x, card_y, rounds) = (600usize, 3usize, 6usize, 12usize, 80usize);
        let dom_x = Domain::categorical((0i64..card_x as i64).collect::<Vec<_>>());
        let dom_y = Domain::categorical((0i64..card_y as i64).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(777);

        // Real data: X uniform; Y drawn from a per-X real k-subset.
        let real_x: Vec<Value> = (0..n)
            .map(|_| Value::Int(rng.gen_range(0..card_x) as i64))
            .collect();
        let real_y: Vec<Value> = real_x
            .iter()
            .map(|v| {
                let base = v.as_i64().unwrap() as usize;
                Value::Int(((base * 2 + rng.gen_range(0..k)) % card_y) as i64)
            })
            .collect();

        let mut total = 0usize;
        for round in 0..rounds {
            let mut rng = StdRng::seed_from_u64(1000 + round as u64);
            let syn_x = mp_synth::sample_column(&dom_x, n, &mut rng);
            let syn_y = mp_synth::generate_nd_column(&syn_x, &dom_y, k, n, &mut rng);
            total += (0..n)
                .filter(|&i| syn_x[i] == real_x[i] && syn_y[i] == real_y[i])
                .count();
        }
        let mean = total as f64 / rounds as f64;
        // Exact cell matches follow the K-independent exact expectation.
        let expected = expected_exact_pair_matches(n, card_x, card_y);
        assert!(
            (mean - expected).abs() < 0.35 * expected + 1.0,
            "mean {mean} vs expected {expected}"
        );
        // And the paper's mapping-coverage expectation upper-bounds it.
        assert!(mean <= expected_pair_matches(n, k, card_x, card_y) + 1.0);
    }
}
