//! Extension: expected leakage of sharing value *distributions*.
//!
//! The paper's experiments withhold the distribution ("we will assume a
//! uniform distribution"), so its §III-A bound is `N/|D|`. If the
//! distribution *is* shared — frequency tables for encoders, histograms
//! for binning are common in practice — the adversary samples from it, and
//! the real data is distributed by it too, so the per-cell match
//! probability becomes the collision probability `Σ p_v²`. By
//! Cauchy–Schwarz `Σ p² ≥ 1/|D|` with equality iff uniform: sharing any
//! *skewed* distribution strictly increases leakage over sharing the
//! domain alone.

use mp_metadata::Distribution;

/// Expected index-aligned matches when both real data and generation
/// follow `dist`: `N · Σ p²`.
pub fn expected_matches(n_rows: usize, dist: &Distribution) -> f64 {
    n_rows as f64 * dist.collision_probability()
}

/// The §III-A uniform-domain baseline for comparison: `N / |D|`.
pub fn uniform_baseline(n_rows: usize, cardinality: usize) -> f64 {
    if cardinality == 0 {
        return 0.0;
    }
    n_rows as f64 / cardinality as f64
}

/// Leakage amplification of sharing the distribution over sharing the
/// domain: `|D| · Σ p²` (≥ 1, equality iff uniform).
pub fn amplification(dist: &Distribution, cardinality: usize) -> f64 {
    cardinality as f64 * dist.collision_probability()
}

/// Continuous ε-match expectation under a shared histogram with bucket
/// width `w = range/B`: within a bucket of probability `p_b` both values
/// are uniform, so the per-pair ε-hit probability is ≈ `2ε/w` (for
/// `2ε ≤ w`) and the total is `N · Σ p_b² · min(2ε/w, 1)` (ignoring the
/// small cross-bucket boundary mass).
pub fn expected_eps_matches_histogram(
    n_rows: usize,
    densities: &[f64],
    range: f64,
    epsilon: f64,
) -> f64 {
    if densities.is_empty() || range <= 0.0 {
        return 0.0;
    }
    let width = range / densities.len() as f64;
    let within = (2.0 * epsilon / width).min(1.0);
    n_rows as f64 * densities.iter().map(|p| p * p).sum::<f64>() * within
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::Value;

    fn skewed() -> Distribution {
        Distribution::Categorical(vec![
            (Value::Int(0), 0.7),
            (Value::Int(1), 0.2),
            (Value::Int(2), 0.1),
        ])
    }

    #[test]
    fn collision_exceeds_uniform_baseline() {
        let d = skewed();
        // Σp² = 0.49 + 0.04 + 0.01 = 0.54.
        assert!((expected_matches(100, &d) - 54.0).abs() < 1e-9);
        assert!(expected_matches(100, &d) > uniform_baseline(100, 3));
        assert!((amplification(&d, 3) - 1.62).abs() < 1e-9);
    }

    #[test]
    fn uniform_distribution_is_the_floor() {
        let u = Distribution::Categorical(vec![
            (Value::Int(0), 1.0 / 3.0),
            (Value::Int(1), 1.0 / 3.0),
            (Value::Int(2), 1.0 / 3.0),
        ]);
        assert!((amplification(&u, 3) - 1.0).abs() < 1e-9);
        assert!((expected_matches(99, &u) - uniform_baseline(99, 3)).abs() < 1e-9);
    }

    #[test]
    fn histogram_eps_expectation() {
        // Two buckets over range 10 (width 5), all mass in one bucket,
        // ε = 0.5: N · 1 · (1/5).
        let e = expected_eps_matches_histogram(100, &[1.0, 0.0], 10.0, 0.5);
        assert!((e - 20.0).abs() < 1e-9);
        // Clamp when ε exceeds the bucket width.
        let e = expected_eps_matches_histogram(100, &[1.0, 0.0], 10.0, 100.0);
        assert!((e - 100.0).abs() < 1e-9);
        assert_eq!(expected_eps_matches_histogram(10, &[], 10.0, 1.0), 0.0);
    }

    #[test]
    fn monte_carlo_agreement() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let d = skewed();
        let (n, rounds) = (2000usize, 30usize);
        let mut total = 0usize;
        for round in 0..rounds {
            let mut rng = StdRng::seed_from_u64(round as u64);
            let real = mp_synth::sample_column_from_distribution(&d, n, &mut rng);
            let syn = mp_synth::sample_column_from_distribution(&d, n, &mut rng);
            total += real.iter().zip(&syn).filter(|(a, b)| a == b).count();
        }
        let mean = total as f64 / rounds as f64;
        let expected = expected_matches(n, &d);
        assert!(
            (mean - expected).abs() < 0.05 * expected,
            "mean {mean} vs expected {expected}"
        );
    }
}
