//! The leakage-audit matrix: metadata class × share policy × adversary.
//!
//! [`PrivacyAudit`](crate::PrivacyAudit) answers "how bad is this one
//! table under the four preset policies"; the matrix answers the paper's
//! full question systematically. Every cell fixes a coordinate
//!
//! * **metadata class** — which dependency class rides along with the
//!   domains (domains-only, +FD, +OD, +ND, +DD, +OFD, +CFD), isolating
//!   each class's *marginal* leakage the way Tables III/IV isolate the
//!   generators;
//! * **share policy** — the four presets plus a per-attribute redaction
//!   ([`MatrixPolicy::RedactOdd`]) that withholds every odd attribute's
//!   domain, the "redact the sensitive half" compromise;
//! * **adversary model** — the paper baseline plus partial alignment,
//!   collusion and noisy domains ([`mp_synth::AdversaryModel`]);
//!
//! and measures empirical cells-leaked (mean index-aligned matches per
//! round, Definitions 2.2/2.3), the §III-A analytical expectation
//! `Σ N·θ_A`, and the delta against the same-seed random-generation
//! baseline — the number that operationalises "does this dependency class
//! add leakage *beyond* domains". Every cell is independently
//! reproducible: its RNG stream is derived from its coordinate alone via
//! [`crate::seed_for`], so the matrix is byte-identical across runs and
//! thread counts (cells are parallelised with the order-preserving
//! [`mp_relation::par::par_map`]).

use mp_metadata::{Dependency, MetadataPackage, SharePolicy};
use mp_observe::Recorder;
use mp_relation::par::par_map;
use mp_relation::{AttrKind, Column, Relation, RelationError, Result};
use mp_synth::{Adversary, AdversaryModel, SynthConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One table entering the matrix: a relation plus the dependency
/// inventory its owner is considering sharing. mp-core takes the
/// inventory as data (the CLI wires in `mp_datasets` inventories; tests
/// plant their own), keeping the engine dataset-agnostic.
#[derive(Debug, Clone)]
pub struct MatrixDataset {
    /// Dataset label, used in seeds, JSON and markdown.
    pub name: String,
    /// The real relation under attack.
    pub relation: Relation,
    /// The owner's full dependency inventory; each matrix row filters it
    /// down to one class.
    pub dependencies: Vec<Dependency>,
}

/// Which dependency class accompanies the domains in a matrix row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetadataClass {
    /// No dependencies at all — the §III-A random-generation floor.
    DomainsOnly,
    /// Strict functional dependencies (§III-B).
    Fd,
    /// Order dependencies (§IV-C).
    Od,
    /// Numerical dependencies (§IV-B).
    Nd,
    /// Differential dependencies (§IV-D).
    Dd,
    /// Ordered functional dependencies (§IV-E).
    Ofd,
    /// Conditional functional dependencies (value-carrying; paper ref 7).
    Cfd,
}

impl MetadataClass {
    /// Every class, in matrix row order.
    pub const ALL: [MetadataClass; 7] = [
        MetadataClass::DomainsOnly,
        MetadataClass::Fd,
        MetadataClass::Od,
        MetadataClass::Nd,
        MetadataClass::Dd,
        MetadataClass::Ofd,
        MetadataClass::Cfd,
    ];

    /// The row label used in JSON, markdown and seed derivation.
    pub fn label(&self) -> &'static str {
        match self {
            MetadataClass::DomainsOnly => "domains-only",
            MetadataClass::Fd => "fd",
            MetadataClass::Od => "od",
            MetadataClass::Nd => "nd",
            MetadataClass::Dd => "dd",
            MetadataClass::Ofd => "ofd",
            MetadataClass::Cfd => "cfd",
        }
    }

    /// Whether `dep` belongs to this row's class.
    fn keeps(&self, dep: &Dependency) -> bool {
        let class = dep.class();
        match self {
            MetadataClass::DomainsOnly => false,
            MetadataClass::Fd => class == "FD",
            MetadataClass::Od => class == "OD",
            MetadataClass::Nd => class == "ND",
            MetadataClass::Dd => class == "DD",
            MetadataClass::Ofd => class == "OFD",
            MetadataClass::Cfd => class == "CFD",
        }
    }
}

/// Which redaction policy the owner applies before sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixPolicy {
    /// [`SharePolicy::NAMES_ONLY`].
    Names,
    /// [`SharePolicy::NAMES_AND_DOMAINS`].
    Domains,
    /// [`SharePolicy::FULL`].
    Full,
    /// [`SharePolicy::PAPER_RECOMMENDED`].
    Recommended,
    /// Full disclosure for even-indexed attributes, names-only for
    /// odd-indexed ones — the per-attribute "redact the sensitive
    /// columns" compromise the presets cannot express.
    RedactOdd,
}

impl MatrixPolicy {
    /// Every policy, in matrix column order.
    pub const ALL: [MatrixPolicy; 5] = [
        MatrixPolicy::Names,
        MatrixPolicy::Domains,
        MatrixPolicy::Full,
        MatrixPolicy::Recommended,
        MatrixPolicy::RedactOdd,
    ];

    /// The column label used in JSON, markdown and seed derivation.
    pub fn label(&self) -> &'static str {
        match self {
            MatrixPolicy::Names => "names",
            MatrixPolicy::Domains => "domains",
            MatrixPolicy::Full => "full",
            MatrixPolicy::Recommended => "recommended",
            MatrixPolicy::RedactOdd => "redact-odd",
        }
    }

    /// Applies the redaction, producing what actually crosses the trust
    /// boundary.
    pub fn apply(&self, pkg: &MetadataPackage) -> MetadataPackage {
        match self {
            MatrixPolicy::Names => SharePolicy::NAMES_ONLY.apply(pkg),
            MatrixPolicy::Domains => SharePolicy::NAMES_AND_DOMAINS.apply(pkg),
            MatrixPolicy::Full => SharePolicy::FULL.apply(pkg),
            MatrixPolicy::Recommended => SharePolicy::PAPER_RECOMMENDED.apply(pkg),
            MatrixPolicy::RedactOdd => {
                let mut out = SharePolicy::FULL.apply(pkg);
                for (attr, meta) in out.attributes.iter_mut().enumerate() {
                    if attr % 2 == 1 {
                        meta.kind = None;
                        meta.domain = None;
                        meta.distribution = None;
                    }
                }
                out
            }
        }
    }
}

/// Matrix run parameters.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Attack rounds averaged per cell (clamped to ≥ 1).
    pub rounds: usize,
    /// ε for continuous matching and for `θ = 2ε/range`.
    pub epsilon: f64,
    /// Worker threads for cell evaluation; `0` = available parallelism.
    /// Output is byte-identical for every value.
    pub threads: usize,
    /// The adversary models to sweep.
    pub adversaries: Vec<AdversaryModel>,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        Self {
            rounds: 40,
            epsilon: 0.5,
            threads: 0,
            adversaries: vec![AdversaryModel::Baseline],
        }
    }
}

/// One evaluated matrix cell.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Dataset label.
    pub dataset: String,
    /// Metadata-class row label.
    pub class: &'static str,
    /// Share-policy column label.
    pub policy: &'static str,
    /// Adversary-model label.
    pub adversary: String,
    /// Dependencies the adversary's effective package carries.
    pub n_deps: usize,
    /// Rows the adversary can score (the PSI-aligned subset).
    pub rows_scored: usize,
    /// Mean cells leaked per round (Definitions 2.2/2.3, index-aligned).
    pub empirical: f64,
    /// Population standard deviation of the per-round leak count.
    pub std: f64,
    /// The §III-A analytical expectation `Σ_A N·θ_A` over shared domains.
    pub analytical: f64,
    /// Mean cells leaked by same-seed dependency-blind generation.
    pub random_baseline: f64,
    /// `empirical − random_baseline`: leakage *added* by the shared
    /// dependencies.
    pub delta_vs_random: f64,
    /// The §III-A predicate: at least one expected leaked cell per round.
    pub leaks: bool,
    /// Recommended mitigation for this cell.
    pub mitigation: &'static str,
}

/// The evaluated matrix.
#[derive(Debug, Clone)]
pub struct LeakageMatrix {
    /// Cells in deterministic sweep order:
    /// dataset → adversary → class → policy.
    pub cells: Vec<MatrixCell>,
    /// Rounds averaged per cell.
    pub rounds: usize,
    /// Matching tolerance ε.
    pub epsilon: f64,
}

/// Work order for one cell; self-contained so cells parallelise freely.
struct CellSpec<'a> {
    dataset: &'a MatrixDataset,
    class: MetadataClass,
    policy: MatrixPolicy,
    adversary: AdversaryModel,
}

/// The fixed PSI-alignment permutation for a dataset: which victim rows
/// fall into the adversary's intersection, worst-case-shuffled once per
/// dataset (seeded by the dataset label only) so the aligned subsets of
/// different fractions are *nested* — the exact-monotonicity invariant.
fn alignment_permutation(dataset: &str, n: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(crate::seed_for(dataset, "psi-alignment", "", 0));
    let mut perm: Vec<usize> = (0..n).collect();
    // Fisher–Yates (the vendored rand has no shuffle adaptor).
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// Index-aligned matches between real and synthetic columns, restricted
/// to the scored `rows`. Continuous attributes use Definition 2.3
/// (ε-ball, both values present); everything else uses Definition 2.2
/// (exact [`mp_relation::ValueRef`] equality, the same semantics as
/// [`crate::leakage`]).
fn matches_on_rows(
    real: &Column,
    syn: &Column,
    kind: AttrKind,
    rows: &[usize],
    epsilon: f64,
) -> usize {
    let mut matched = 0;
    for &i in rows {
        let hit = match kind {
            AttrKind::Continuous => match (real.f64_at(i), syn.f64_at(i)) {
                (Some(x), Some(y)) => (x - y).abs() <= epsilon,
                _ => false,
            },
            _ => real.value_ref(i) == syn.value_ref(i),
        };
        if hit {
            matched += 1;
        }
    }
    matched
}

fn evaluate_cell(spec: &CellSpec<'_>, rounds: usize, epsilon: f64) -> Result<MatrixCell> {
    let relation = &spec.dataset.relation;
    let n = relation.n_rows();

    let class_deps: Vec<Dependency> = spec
        .dataset
        .dependencies
        .iter()
        .filter(|d| spec.class.keeps(d))
        .cloned()
        .collect();
    let package = MetadataPackage::describe(spec.dataset.name.clone(), relation, class_deps)?;
    let shared = spec.policy.apply(&package);
    let effective = spec
        .adversary
        .shared_package(&shared)
        .map_err(RelationError::Io)?;

    // The PSI-aligned rows the adversary can score. Fractions share one
    // permutation per dataset, so smaller fractions are strict subsets.
    let aligned_pct = usize::from(spec.adversary.aligned_pct());
    let scored: Vec<usize> = if aligned_pct >= 100 {
        (0..n).collect()
    } else {
        let take = (n * aligned_pct).div_ceil(100);
        let mut rows = alignment_permutation(&spec.dataset.name, n);
        rows.truncate(take);
        rows
    };

    let policy_label = format!("{}/{}", spec.class.label(), spec.policy.label());
    let generation_label = spec.adversary.generation_label();
    let attacker = Adversary::new(effective.clone());

    let mut per_round = Vec::with_capacity(rounds);
    let mut per_round_random = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let seed = crate::seed_for(
            &spec.dataset.name,
            &policy_label,
            &generation_label,
            round as u64,
        );
        let with_deps = attacker.synthesize(&SynthConfig {
            n_rows: n,
            seed,
            use_dependencies: true,
        })?;
        // Same seed, dependencies ignored: the §III-A baseline. Where the
        // package carries no dependencies the two plans coincide and the
        // delta is exactly zero.
        let random = attacker.synthesize(&SynthConfig {
            n_rows: n,
            seed,
            use_dependencies: false,
        })?;

        let mut leaked = 0usize;
        let mut leaked_random = 0usize;
        for (attr, attribute) in relation.schema().iter() {
            let real = relation.column(attr)?;
            leaked += matches_on_rows(
                real,
                with_deps.column(attr)?,
                attribute.kind,
                &scored,
                epsilon,
            );
            leaked_random +=
                matches_on_rows(real, random.column(attr)?, attribute.kind, &scored, epsilon);
        }
        per_round.push(leaked as f64);
        per_round_random.push(leaked_random as f64);
    }

    let count = per_round.len().max(1) as f64;
    let empirical = per_round.iter().sum::<f64>() / count;
    let random_baseline = per_round_random.iter().sum::<f64>() / count;
    let variance = per_round
        .iter()
        .map(|x| (x - empirical) * (x - empirical))
        .sum::<f64>()
        / count;
    let std = variance.sqrt();

    let analytical = effective
        .attributes
        .iter()
        .filter_map(|meta| meta.domain.as_ref())
        .map(|domain| {
            crate::analytical::random::expected_matches_for_domain(scored.len(), domain, epsilon)
        })
        .sum::<f64>();

    let delta_vs_random = empirical - random_baseline;
    let leaks = empirical >= 1.0;
    let mitigation = if !leaks {
        "none needed"
    } else if spec.class == MetadataClass::Cfd && delta_vs_random >= 1.0 {
        "strip CFD tableaux (value-carrying; paper ref 7)"
    } else {
        "withhold domains and types (paper §VI)"
    };

    Ok(MatrixCell {
        dataset: spec.dataset.name.clone(),
        class: spec.class.label(),
        policy: spec.policy.label(),
        adversary: spec.adversary.label(),
        n_deps: effective.dependencies.len(),
        rows_scored: scored.len(),
        empirical,
        std,
        analytical,
        random_baseline,
        delta_vs_random,
        leaks,
        mitigation,
    })
}

impl LeakageMatrix {
    /// Evaluates the full matrix over `datasets`.
    ///
    /// Cell order is the deterministic sweep
    /// dataset → adversary → class → policy; evaluation parallelises over
    /// cells with [`par_map`], which preserves that order, and every
    /// cell's RNG stream comes from its coordinate alone — so the result
    /// (and its serializations) are byte-identical for any
    /// `config.threads`.
    pub fn run(
        datasets: &[MatrixDataset],
        config: &MatrixConfig,
        recorder: &dyn Recorder,
    ) -> Result<LeakageMatrix> {
        let rounds = config.rounds.max(1);
        let mut specs = Vec::new();
        for dataset in datasets {
            for adversary in &config.adversaries {
                for class in MetadataClass::ALL {
                    for policy in MatrixPolicy::ALL {
                        specs.push(CellSpec {
                            dataset,
                            class,
                            policy,
                            adversary: *adversary,
                        });
                    }
                }
            }
        }

        let span = recorder.span("matrix.run");
        let guard = span.enter();
        let results = par_map(specs, config.threads, |spec| {
            evaluate_cell(&spec, rounds, config.epsilon)
        });
        let cells = results.into_iter().collect::<Result<Vec<MatrixCell>>>()?;
        drop(guard);

        recorder.counter("matrix.cells").add(cells.len() as u64);
        recorder
            .counter("matrix.synth.rounds")
            .add((cells.len() * rounds * 2) as u64);
        for adversary in &config.adversaries {
            let label = adversary.label();
            let owned = cells.iter().filter(|c| c.adversary == label).count();
            recorder
                .counter(&format!("matrix.adversary.{label}.cells"))
                .add(owned as u64);
        }

        Ok(LeakageMatrix {
            cells,
            rounds,
            epsilon: config.epsilon,
        })
    }

    /// The cell at a coordinate, if evaluated.
    pub fn find(
        &self,
        dataset: &str,
        class: &str,
        policy: &str,
        adversary: &str,
    ) -> Option<&MatrixCell> {
        self.cells.iter().find(|c| {
            c.dataset == dataset
                && c.class == class
                && c.policy == policy
                && c.adversary == adversary
        })
    }

    /// Checks the paper's §III-B conclusion — *sharing FDs adds no extra
    /// leakage over sharing domains alone* — on every
    /// (dataset, policy, adversary) coordinate, returning a description
    /// of each violating coordinate (empty ⇔ the claim holds).
    ///
    /// The FD row may beat the domains-only row by sampling noise, so the
    /// tolerance is one cell plus four standard errors of the two means:
    /// `1 + 4·(σ_fd + σ_dom)/√rounds`.
    pub fn fd_adds_no_extra_leakage(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for fd_cell in self.cells.iter().filter(|c| c.class == "fd") {
            let Some(base) = self.find(
                &fd_cell.dataset,
                "domains-only",
                fd_cell.policy,
                &fd_cell.adversary,
            ) else {
                continue;
            };
            let tolerance = 1.0 + 4.0 * (fd_cell.std + base.std) / (self.rounds as f64).sqrt();
            if fd_cell.empirical > base.empirical + tolerance {
                violations.push(format!(
                    "{}/{}/{}: fd {:.4} > domains-only {:.4} + {:.4}",
                    fd_cell.dataset,
                    fd_cell.policy,
                    fd_cell.adversary,
                    fd_cell.empirical,
                    base.empirical,
                    tolerance
                ));
            }
        }
        violations
    }

    /// Serialises the matrix as schema-versioned JSON with sorted keys
    /// and fixed-precision floats — byte-reproducible by construction.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"adversary\": \"{}\", ",
                escape_json(&cell.adversary)
            ));
            out.push_str(&format!(
                "\"analytical\": {}, ",
                format_float(cell.analytical)
            ));
            out.push_str(&format!("\"class\": \"{}\", ", cell.class));
            out.push_str(&format!(
                "\"dataset\": \"{}\", ",
                escape_json(&cell.dataset)
            ));
            out.push_str(&format!(
                "\"delta_vs_random\": {}, ",
                format_float(cell.delta_vs_random)
            ));
            out.push_str(&format!(
                "\"empirical\": {}, ",
                format_float(cell.empirical)
            ));
            out.push_str(&format!("\"leaks\": {}, ", cell.leaks));
            out.push_str(&format!(
                "\"mitigation\": \"{}\", ",
                escape_json(cell.mitigation)
            ));
            out.push_str(&format!("\"n_deps\": {}, ", cell.n_deps));
            out.push_str(&format!("\"policy\": \"{}\", ", cell.policy));
            out.push_str(&format!(
                "\"random_baseline\": {}, ",
                format_float(cell.random_baseline)
            ));
            out.push_str(&format!("\"rows_scored\": {}, ", cell.rows_scored));
            out.push_str(&format!("\"std\": {}}}", format_float(cell.std)));
        }
        out.push_str(&format!(
            "\n  ],\n  \"epsilon\": {},\n  \"rounds\": {},\n  \"schema_version\": 1\n}}\n",
            format_float(self.epsilon),
            self.rounds
        ));
        out
    }

    /// Renders the matrix as markdown: one table per dataset × adversary,
    /// rows = metadata classes, columns = share policies, `⚠` marking
    /// cells where the §III-A leakage predicate fires.
    pub fn render_markdown(&self) -> String {
        let mut out = format!(
            "# Leakage matrix\n\nMean cells leaked per round (empirical, {} rounds, ε = {}); \
             `⚠` = expected leakage ≥ 1 cell (§III-A predicate).\n",
            self.rounds,
            format_float(self.epsilon)
        );
        let mut groups: Vec<(String, String)> = Vec::new();
        for cell in &self.cells {
            let key = (cell.dataset.clone(), cell.adversary.clone());
            if !groups.contains(&key) {
                groups.push(key);
            }
        }
        for (dataset, adversary) in &groups {
            out.push_str(&format!("\n## {dataset} — adversary: {adversary}\n\n"));
            out.push_str("| class |");
            for policy in MatrixPolicy::ALL {
                out.push_str(&format!(" {} |", policy.label()));
            }
            out.push_str("\n|---|");
            for _ in MatrixPolicy::ALL {
                out.push_str("---:|");
            }
            out.push('\n');
            for class in MetadataClass::ALL {
                out.push_str(&format!("| {} |", class.label()));
                for policy in MatrixPolicy::ALL {
                    match self.find(dataset, class.label(), policy.label(), adversary) {
                        Some(cell) => {
                            let flag = if cell.leaks { " ⚠" } else { "" };
                            out.push_str(&format!(" {}{flag} |", format_float(cell.empirical)));
                        }
                        None => out.push_str(" — |"),
                    }
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Fixed-precision float formatting with `-0.0000` normalised to
/// `0.0000`, so equal-by-value cells serialize identically.
fn format_float(x: f64) -> String {
    let s = format!("{x:.4}");
    if s == "-0.0000" {
        "0.0000".to_owned()
    } else {
        s
    }
}

/// Minimal JSON string escaping for the label/mitigation strings.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_metadata::{Fd, OrderDep};
    use mp_observe::NoopRecorder;
    use mp_relation::{Attribute, Schema, Value};

    fn tiny_dataset() -> MatrixDataset {
        let schema = Schema::new(vec![
            Attribute::categorical("dept"),
            Attribute::continuous("salary"),
            Attribute::categorical("grade"),
        ])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..30)
            .map(|i| {
                let dept = ["Sales", "CS", "Mgmt"][i % 3];
                vec![
                    dept.into(),
                    (20.0 + (i % 5) as f64).into(),
                    Value::Int((i % 3) as i64),
                ]
            })
            .collect();
        let relation = Relation::from_rows(schema, rows).unwrap();
        MatrixDataset {
            name: "tiny".to_owned(),
            relation,
            dependencies: vec![Fd::new(0usize, 2).into(), OrderDep::ascending(1, 1).into()],
        }
    }

    fn quick_config() -> MatrixConfig {
        MatrixConfig {
            rounds: 6,
            epsilon: 0.5,
            threads: 1,
            adversaries: vec![
                AdversaryModel::Baseline,
                AdversaryModel::PartialAlignment { aligned_pct: 50 },
            ],
        }
    }

    #[test]
    fn full_sweep_shape_and_order() {
        let ds = [tiny_dataset()];
        let m = LeakageMatrix::run(&ds, &quick_config(), &NoopRecorder).unwrap();
        // 1 dataset × 2 adversaries × 7 classes × 5 policies.
        assert_eq!(m.cells.len(), 70);
        // Sweep order: adversary-major over class → policy.
        assert_eq!(m.cells[0].adversary, "baseline");
        assert_eq!(m.cells[0].class, "domains-only");
        assert_eq!(m.cells[0].policy, "names");
        assert_eq!(m.cells[1].policy, "domains");
        assert_eq!(m.cells[35].adversary, "partial50");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let ds = [tiny_dataset()];
        let mut cfg = quick_config();
        let one = LeakageMatrix::run(&ds, &cfg, &NoopRecorder).unwrap();
        cfg.threads = 4;
        let four = LeakageMatrix::run(&ds, &cfg, &NoopRecorder).unwrap();
        assert_eq!(one.to_json(), four.to_json());
        assert_eq!(one.render_markdown(), four.render_markdown());
    }

    #[test]
    fn domains_only_delta_is_exactly_zero() {
        let ds = [tiny_dataset()];
        let m = LeakageMatrix::run(&ds, &quick_config(), &NoopRecorder).unwrap();
        for cell in m.cells.iter().filter(|c| c.class == "domains-only") {
            assert_eq!(
                cell.delta_vs_random, 0.0,
                "no dependencies ⇒ same plan, same seed, zero delta"
            );
            assert_eq!(cell.n_deps, 0);
        }
    }

    #[test]
    fn names_policy_blocks_generation() {
        let ds = [tiny_dataset()];
        let m = LeakageMatrix::run(&ds, &quick_config(), &NoopRecorder).unwrap();
        for cell in m.cells.iter().filter(|c| c.policy == "names") {
            assert_eq!(cell.analytical, 0.0, "no domains shared ⇒ θ undefined");
            assert_eq!(
                cell.empirical, 0.0,
                "all-null synthetic columns match nothing in a null-free table"
            );
            assert!(!cell.leaks);
            assert_eq!(cell.mitigation, "none needed");
        }
    }

    #[test]
    fn domains_policy_leaks_and_tracks_analytical() {
        let ds = [tiny_dataset()];
        let m = LeakageMatrix::run(&ds, &quick_config(), &NoopRecorder).unwrap();
        let cell = m
            .find("tiny", "domains-only", "domains", "baseline")
            .unwrap();
        // dept: 30/3 = 10, grade: 30/3 = 10, salary: 30·(2·0.5/4) = 7.5.
        assert!(cell.leaks);
        assert!(cell.empirical > 1.0);
        assert!(
            (cell.empirical - cell.analytical).abs() < 4.0 * cell.std.max(3.0),
            "empirical {} vs analytical {}",
            cell.empirical,
            cell.analytical
        );
        assert_eq!(cell.mitigation, "withhold domains and types (paper §VI)");
    }

    #[test]
    fn partial_alignment_scores_fewer_rows() {
        let ds = [tiny_dataset()];
        let m = LeakageMatrix::run(&ds, &quick_config(), &NoopRecorder).unwrap();
        let full = m
            .find("tiny", "domains-only", "domains", "baseline")
            .unwrap();
        let half = m
            .find("tiny", "domains-only", "domains", "partial50")
            .unwrap();
        assert_eq!(full.rows_scored, 30);
        assert_eq!(half.rows_scored, 15);
        assert!(half.empirical <= full.empirical);
    }

    #[test]
    fn fd_claim_holds_on_tiny() {
        let ds = [tiny_dataset()];
        let m = LeakageMatrix::run(&ds, &quick_config(), &NoopRecorder).unwrap();
        assert_eq!(m.fd_adds_no_extra_leakage(), Vec::<String>::new());
    }

    #[test]
    fn json_is_schema_versioned_and_sorted() {
        let ds = [tiny_dataset()];
        let mut cfg = quick_config();
        cfg.adversaries = vec![AdversaryModel::Baseline];
        let m = LeakageMatrix::run(&ds, &cfg, &NoopRecorder).unwrap();
        let json = m.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"cells\": ["));
        let adv = json.find("\"adversary\"").unwrap();
        let class = json.find("\"class\"").unwrap();
        let std = json.find("\"std\"").unwrap();
        assert!(adv < class && class < std, "keys must be sorted");
        assert!(
            !json.contains("-0.0000"),
            "negative zero must be normalised"
        );
    }

    #[test]
    fn markdown_renders_every_group() {
        let ds = [tiny_dataset()];
        let m = LeakageMatrix::run(&ds, &quick_config(), &NoopRecorder).unwrap();
        let md = m.render_markdown();
        assert!(md.contains("# Leakage matrix"));
        assert!(md.contains("## tiny — adversary: baseline"));
        assert!(md.contains("## tiny — adversary: partial50"));
        assert!(md.contains("| domains-only |"));
        assert!(md.contains("| cfd |"));
        assert!(md.contains("⚠"));
    }

    #[test]
    fn recorder_sees_the_sweep() {
        let ds = [tiny_dataset()];
        let registry = mp_observe::Registry::new();
        let m = LeakageMatrix::run(&ds, &quick_config(), &registry).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["matrix.cells"], m.cells.len() as u64);
        assert_eq!(snap.counters["matrix.adversary.baseline.cells"], 35);
        assert_eq!(snap.counters["matrix.adversary.partial50.cells"], 35);
        assert_eq!(
            snap.counters["matrix.synth.rounds"],
            (m.cells.len() * 6 * 2) as u64
        );
    }

    #[test]
    fn alignment_permutation_is_a_permutation() {
        let perm = alignment_permutation("tiny", 100);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(perm, (0..100).collect::<Vec<_>>(), "shuffled, not identity");
        assert_eq!(perm, alignment_permutation("tiny", 100), "deterministic");
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\ny");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn format_float_normalises_negative_zero() {
        assert_eq!(format_float(-0.000001), "0.0000");
        assert_eq!(format_float(1.25), "1.2500");
    }
}
