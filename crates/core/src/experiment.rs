//! The attack-evaluation harness behind the paper's §V experiments.
//!
//! Two granularities:
//!
//! * [`run_attack`] — the full pipeline: an [`Adversary`] holding a
//!   metadata package synthesises whole relations, and leakage is measured
//!   per attribute, averaged over seeded rounds.
//! * [`run_cell`] — one table cell of the paper's Tables III/IV: a single
//!   dependent attribute is generated through one dependency (its
//!   determinants generated uniformly from their domains), and exact
//!   matches / MSE against the real column are averaged over rounds. This
//!   isolates the contribution of a single dependency class per attribute,
//!   exactly as the paper's per-row methodology does.

use crate::leakage::{measure_all, AttrLeakage};
use mp_metadata::{Dependency, MetadataPackage};
use mp_relation::{AttrKind, Domain, Relation, Result, Value};

use mp_synth::{Adversary, SynthConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rounds, seeding and the continuous match tolerance.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of seeded generation rounds averaged over ("The MSE is the
    /// mean error over many generation rounds to decrease the variance").
    pub rounds: usize,
    /// Base RNG seed; round `r` uses `base_seed + r`.
    pub base_seed: u64,
    /// ε for continuous-match counting (Definition 2.3).
    pub epsilon: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            rounds: 100,
            base_seed: 0x5EED,
            epsilon: 0.0,
        }
    }
}

impl ExperimentConfig {
    /// The RNG seed for round `round` of *this* experiment:
    /// `base_seed + round` (wrapping), byte-for-byte the derivation the
    /// Tables III/IV goldens were pinned on. Consecutive seeds within one
    /// experiment are harmless; what must never happen is two *different*
    /// experiments (another policy, another dataset) reusing the same
    /// stream — callers running many experiments derive each cell's
    /// `base_seed` through [`crate::seed_for`] first.
    pub fn round_seed(&self, round: usize) -> u64 {
        self.base_seed.wrapping_add(round as u64)
    }
}

/// Per-attribute outcome, averaged over rounds.
#[derive(Debug, Clone)]
pub struct AttrSummary {
    /// Attribute index.
    pub attr: usize,
    /// Attribute name.
    pub name: String,
    /// Mean index-aligned matches per round (exact for categorical,
    /// ε-matches for continuous).
    pub mean_matches: f64,
    /// Standard deviation of the per-round match count.
    pub std_matches: f64,
    /// Mean MSE per round (continuous attributes only).
    pub mean_mse: Option<f64>,
}

/// Outcome of a multi-round attack.
#[derive(Debug, Clone)]
pub struct AttackResult {
    /// Per-attribute summaries, in schema order.
    pub per_attr: Vec<AttrSummary>,
    /// Rounds actually run.
    pub rounds: usize,
}

impl AttackResult {
    /// The summary for attribute `attr`.
    pub fn attr(&self, attr: usize) -> Option<&AttrSummary> {
        self.per_attr.iter().find(|s| s.attr == attr)
    }
}

/// Runs the full synthesis attack `config.rounds` times and aggregates
/// per-attribute leakage against `real`.
pub fn run_attack(
    real: &Relation,
    package: &MetadataPackage,
    use_dependencies: bool,
    config: &ExperimentConfig,
) -> Result<AttackResult> {
    let adversary = Adversary::new(package.clone());
    let n = real.n_rows();
    let mut acc: Vec<RoundAccumulator> = (0..real.arity())
        .map(|attr| RoundAccumulator::new(attr, real.schema().attributes()[attr].name.clone()))
        .collect();

    for round in 0..config.rounds {
        let synth_cfg = SynthConfig {
            n_rows: n,
            seed: config.round_seed(round),
            use_dependencies,
        };
        let syn = adversary.synthesize(&synth_cfg)?;
        let measured = measure_all(real, &syn, config.epsilon)?;
        for (a, m) in acc.iter_mut().zip(measured) {
            a.push(&m);
        }
    }
    Ok(AttackResult {
        per_attr: acc.into_iter().map(RoundAccumulator::finish).collect(),
        rounds: config.rounds,
    })
}

/// One cell of the paper's Tables III/IV: generates attribute `attr` of
/// `real` through `dep` (or uniformly from its domain when `None` — the
/// "Random Generation" row) and returns the averaged outcome.
///
/// Determinant attributes are generated uniformly from their shared
/// domains each round, as the paper's generation procedure does before
/// materialising a mapping.
pub fn run_cell(
    real: &Relation,
    domains: &[Domain],
    dep: Option<&Dependency>,
    attr: usize,
    config: &ExperimentConfig,
) -> Result<AttrSummary> {
    let n = real.n_rows();
    let name = real.schema().attribute(attr)?.name.clone();
    let mut acc = RoundAccumulator::new(attr, name);

    for round in 0..config.rounds {
        let mut rng = StdRng::seed_from_u64(config.round_seed(round));
        let syn_col: Vec<Value> = match dep {
            None => mp_synth::sample_column(&domains[attr], n, &mut rng),
            Some(dep) => {
                // Generate determinants uniformly, then derive.
                let lhs_cols: Vec<Vec<Value>> = lhs_order(dep)
                    .into_iter()
                    .map(|a| mp_synth::sample_column(&domains[a], n, &mut rng))
                    .collect();
                let lhs_refs: Vec<&[Value]> = lhs_cols.iter().map(Vec::as_slice).collect();
                derive(dep, &lhs_refs, &domains[attr], n, &mut rng)
            }
        };
        acc.push_column(real, attr, &syn_col, config.epsilon)?;
    }
    Ok(acc.finish())
}

/// Variant of [`run_cell`] where the adversary *knows* the determinant
/// column's real values — the VFL situation where the dependency's LHS is
/// (or is aligned with) the attacking party's own feature. Only the
/// dependent attribute is generated; the mapping/interval machinery runs
/// on the true determinant values.
///
/// This is the strongest position a metadata adversary can be in, and the
/// regime where order metadata visibly localises continuous values (the
/// paper's Table III shows an OD cell dropping well below the random MSE).
pub fn run_cell_with_known_lhs(
    real: &Relation,
    domains: &[Domain],
    dep: &Dependency,
    attr: usize,
    config: &ExperimentConfig,
) -> Result<AttrSummary> {
    let n = real.n_rows();
    let name = real.schema().attribute(attr)?.name.clone();
    let mut acc = RoundAccumulator::new(attr, name);
    let lhs_owned: Vec<Vec<Value>> = lhs_order(dep)
        .into_iter()
        .map(|a| real.column_values(a))
        .collect::<Result<_>>()?;
    let lhs_cols: Vec<&[Value]> = lhs_owned.iter().map(Vec::as_slice).collect();

    for round in 0..config.rounds {
        let mut rng = StdRng::seed_from_u64(config.round_seed(round));
        let syn_col = derive(dep, &lhs_cols, &domains[attr], n, &mut rng);
        acc.push_column(real, attr, &syn_col, config.epsilon)?;
    }
    Ok(acc.finish())
}

/// Determinant columns in the order the class's generator expects:
/// tableau order for CFDs (pattern cells are positional), sorted-set order
/// for everything else.
fn lhs_order(dep: &Dependency) -> Vec<usize> {
    match dep {
        Dependency::Cfd(c) => c.lhs.iter().map(|(a, _)| *a).collect(),
        _ => dep.lhs().iter().collect(),
    }
}

fn derive(
    dep: &Dependency,
    lhs: &[&[Value]],
    rhs_domain: &Domain,
    n: usize,
    rng: &mut StdRng,
) -> Vec<Value> {
    match dep {
        Dependency::Fd(_) => mp_synth::generate_fd_column(lhs, rhs_domain, n, rng),
        Dependency::Afd(afd) => {
            mp_synth::generate_afd_column(lhs, rhs_domain, afd.g3_threshold, n, rng)
        }
        Dependency::Od(od) => {
            // lint: allow(no-literal-index) reason="unary dependencies carry exactly one LHS attribute by construction"
            mp_synth::generate_od_column(lhs[0], rhs_domain, od.direction, n, rng)
        }
        Dependency::Nd(nd) => mp_synth::generate_nd_column(lhs[0], rhs_domain, nd.k, n, rng), // lint: allow(no-literal-index) reason="unary dependencies carry exactly one LHS attribute by construction"
        Dependency::Dd(dd) => {
            // lint: allow(no-literal-index) reason="unary dependencies carry exactly one LHS attribute by construction"
            mp_synth::generate_dd_column(lhs[0], rhs_domain, dd.eps_lhs, dd.delta_rhs, n, rng)
        }
        Dependency::Ofd(_) => mp_synth::generate_ofd_column(lhs[0], rhs_domain, n, rng), // lint: allow(no-literal-index) reason="unary dependencies carry exactly one LHS attribute by construction"
        Dependency::Cfd(cfd) => mp_synth::generate_cfd_column(cfd, lhs, rhs_domain, n, rng),
    }
}

/// Accumulates per-round match counts and MSEs for one attribute.
struct RoundAccumulator {
    attr: usize,
    name: String,
    matches: Vec<f64>,
    mses: Vec<f64>,
}

impl RoundAccumulator {
    fn new(attr: usize, name: String) -> Self {
        Self {
            attr,
            name,
            matches: Vec::new(),
            mses: Vec::new(),
        }
    }

    fn push(&mut self, measured: &AttrLeakage) {
        self.matches.push(measured.matches);
        if let Some(m) = measured.mse {
            self.mses.push(m);
        }
    }

    fn push_column(
        &mut self,
        real: &Relation,
        attr: usize,
        syn_col: &[Value],
        epsilon: f64,
    ) -> Result<()> {
        let real_col = real.column(attr)?;
        let kind = real.schema().attribute(attr)?.kind;
        let matches = real_col
            .iter()
            .zip(syn_col)
            .filter(|(x, y)| match kind {
                AttrKind::Categorical => *x == y.as_value_ref(),
                AttrKind::Continuous => match (x.as_f64(), y.as_f64()) {
                    (Some(a), Some(b)) => (a - b).abs() <= epsilon,
                    _ => false,
                },
            })
            .count();
        self.matches.push(matches as f64);

        let mut sum = 0.0;
        let mut n = 0usize;
        for (x, y) in real_col.iter().zip(syn_col) {
            if let (Some(a), Some(b)) = (x.as_f64(), y.as_f64()) {
                sum += (a - b) * (a - b);
                n += 1;
            }
        }
        if n > 0 {
            self.mses.push(sum / n as f64);
        }
        Ok(())
    }

    fn finish(self) -> AttrSummary {
        let n = self.matches.len().max(1) as f64;
        let mean = self.matches.iter().sum::<f64>() / n;
        let var = self
            .matches
            .iter()
            .map(|m| (m - mean) * (m - mean))
            .sum::<f64>()
            / n;
        let mean_mse = if self.mses.is_empty() {
            None
        } else {
            Some(self.mses.iter().sum::<f64>() / self.mses.len() as f64)
        };
        AttrSummary {
            attr: self.attr,
            name: self.name,
            mean_matches: mean,
            std_matches: var.sqrt(),
            mean_mse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datasets::{employee, employee_attrs as ea};
    use mp_metadata::{Fd, MetadataPackage};

    fn config(rounds: usize) -> ExperimentConfig {
        ExperimentConfig {
            rounds,
            base_seed: 7,
            epsilon: 0.0,
        }
    }

    #[test]
    fn random_attack_matches_n_over_domain() {
        // Department has 3 values, N = 4: expected matches 4/3 ≈ 1.33 —
        // the paper's Example 3.1.
        let real = employee();
        let pkg = MetadataPackage::describe("a", &real, vec![]).unwrap();
        let result = run_attack(&real, &pkg, false, &config(800)).unwrap();
        let dept = result.attr(ea::DEPARTMENT).unwrap();
        assert!(
            (dept.mean_matches - 4.0 / 3.0).abs() < 0.15,
            "mean {} vs 4/3",
            dept.mean_matches
        );
    }

    #[test]
    fn fd_attack_close_to_random_attack() {
        // The paper's §III-B conclusion: FD-driven generation leaks no more
        // than random generation on the dependent attribute.
        let real = employee();
        let pkg_rand = MetadataPackage::describe("a", &real, vec![]).unwrap();
        let pkg_fd =
            MetadataPackage::describe("a", &real, vec![Fd::new(ea::NAME, ea::DEPARTMENT).into()])
                .unwrap();
        let rand = run_attack(&real, &pkg_rand, false, &config(600)).unwrap();
        let fd = run_attack(&real, &pkg_fd, true, &config(600)).unwrap();
        let (r, f) = (
            rand.attr(ea::DEPARTMENT).unwrap().mean_matches,
            fd.attr(ea::DEPARTMENT).unwrap().mean_matches,
        );
        assert!((r - f).abs() < 0.35, "random {r} vs fd {f}");
    }

    #[test]
    fn run_cell_random_baseline() {
        let real = employee();
        let domains = Domain::infer_all(&real).unwrap();
        let cell = run_cell(&real, &domains, None, ea::DEPARTMENT, &config(800)).unwrap();
        assert!((cell.mean_matches - 4.0 / 3.0).abs() < 0.15);
        assert!(cell.mean_mse.is_none());
        assert!(cell.std_matches > 0.0);
    }

    #[test]
    fn run_cell_continuous_reports_mse() {
        let real = employee();
        let domains = Domain::infer_all(&real).unwrap();
        let cell = run_cell(&real, &domains, None, ea::SALARY, &config(200)).unwrap();
        let mse = cell.mean_mse.expect("salary is continuous");
        // Uniform-vs-data MSE is on the order of range²/6 = 15000²/6.
        let scale = 15_000.0f64 * 15_000.0 / 6.0;
        assert!(mse > 0.2 * scale && mse < 3.0 * scale, "mse {mse}");
    }

    #[test]
    fn run_cell_with_dependency_generates_validly() {
        let real = employee();
        let domains = Domain::infer_all(&real).unwrap();
        let dep: Dependency = Fd::new(ea::NAME, ea::AGE).into();
        let cell = run_cell(&real, &domains, Some(&dep), ea::AGE, &config(100)).unwrap();
        assert!(cell.mean_matches >= 0.0);
        assert_eq!(cell.attr, ea::AGE);
    }

    #[test]
    fn deterministic_given_seed() {
        let real = employee();
        let pkg = MetadataPackage::describe("a", &real, vec![]).unwrap();
        let a = run_attack(&real, &pkg, false, &config(30)).unwrap();
        let b = run_attack(&real, &pkg, false, &config(30)).unwrap();
        assert_eq!(
            a.attr(0).unwrap().mean_matches,
            b.attr(0).unwrap().mean_matches
        );
    }

    #[test]
    fn zero_rounds_is_harmless() {
        let real = employee();
        let pkg = MetadataPackage::describe("a", &real, vec![]).unwrap();
        let r = run_attack(&real, &pkg, false, &config(0)).unwrap();
        assert_eq!(r.rounds, 0);
        assert_eq!(r.per_attr[0].mean_matches, 0.0);
    }
}
