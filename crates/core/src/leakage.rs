//! Privacy-leakage measurement — Definitions 2.2 and 2.3 of the paper.
//!
//! In VFL the tuple order of `R_real` and `R_syn` is aligned by private set
//! intersection, so leakage is measured **index-aligned**: the i-th
//! synthetic tuple is compared against the i-th real tuple.
//!
//! * Definition 2.2 (categorical): leakage at row i iff
//!   `t_i_syn[A] = t_i_real[A]` — exact match.
//! * Definition 2.3 (continuous): leakage at row i iff
//!   `d(t_i_syn[A], t_i_real[A]) ≤ ε` for a distance `d` (absolute
//!   difference here, the 1-d Euclidean metric).
//!
//! The evaluation additionally reports MSE for continuous attributes, as
//! the paper's Table III does, interpreting MSE "as an indicator of a value
//! of ε to indicate leakage".

use mp_relation::{Column, Relation, RelationError, Result};
use std::collections::HashMap;

/// Index-aligned Value-equality matches between two columns, exploiting the
/// typed layouts: dictionary-encoded columns are compared by `u32` code
/// after remapping the synthetic dictionary into the real one, integer and
/// float columns directly on their primitive slices with the null bitmaps.
/// Mismatched layouts fall back to the row-wise [`ValueRef`] comparison,
/// which defines the semantics the fast paths must reproduce.
///
/// [`ValueRef`]: mp_relation::ValueRef
pub(crate) fn aligned_value_matches(a: &Column, b: &Column) -> usize {
    match (a, b) {
        (
            Column::Categorical {
                dict: da,
                codes: ca,
            },
            Column::Categorical {
                dict: db,
                codes: cb,
            },
        ) => {
            // Map every code of `a` to the first code carrying its label
            // (dictionaries are normally duplicate-free, but nothing in the
            // `Column` API forces that), then remap `b`'s codes into the
            // same space. Absent labels get a sentinel no real code equals.
            let mut first: HashMap<&str, u32> = HashMap::with_capacity(da.len());
            let mut canon: Vec<u32> = Vec::with_capacity(da.len() + 1);
            canon.push(0);
            for (i, s) in da.iter().enumerate() {
                canon.push(*first.entry(s.as_str()).or_insert(i as u32 + 1));
            }
            let mut remap: Vec<u32> = Vec::with_capacity(db.len() + 1);
            remap.push(0); // null matches null
            remap.extend(
                db.iter()
                    .map(|s| first.get(s.as_str()).copied().unwrap_or(u32::MAX)),
            );
            ca.iter()
                .zip(cb)
                .filter(|&(&x, &y)| canon[x as usize] == remap[y as usize])
                .count()
        }
        (
            Column::Int {
                values: va,
                nulls: na,
            },
            Column::Int {
                values: vb,
                nulls: nb,
            },
        ) => (0..va.len())
            .filter(|&i| match (na.get(i), nb.get(i)) {
                (true, true) => true,
                (false, false) => va[i] == vb[i],
                _ => false,
            })
            .count(),
        (
            Column::Float {
                values: va,
                nulls: na,
                ..
            },
            Column::Float {
                values: vb,
                nulls: nb,
                ..
            },
        ) => (0..va.len())
            .filter(|&i| match (na.get(i), nb.get(i)) {
                (true, true) => true,
                // `==` already treats -0.0 like 0.0, and any Int rows in the
                // mask are exactly representable, so plain float equality
                // plus the NaN-canonicalisation clause matches Value::eq.
                (false, false) => va[i] == vb[i] || (va[i].is_nan() && vb[i].is_nan()),
                _ => false,
            })
            .count(),
        _ => (0..a.len())
            .filter(|&i| a.value_ref(i) == b.value_ref(i))
            .count(),
    }
}

/// Calls `f(x, y)` for every index-aligned row where both columns hold a
/// numeric value, reading `&[f64]` slices under the null bitmaps when both
/// sides are float columns.
fn for_each_numeric_pair(a: &Column, b: &Column, mut f: impl FnMut(f64, f64)) {
    if let (Some((va, na)), Some((vb, nb))) = (a.as_float_parts(), b.as_float_parts()) {
        for i in 0..va.len() {
            if !na.get(i) && !nb.get(i) {
                f(va[i], vb[i]);
            }
        }
        return;
    }
    for i in 0..a.len() {
        if let (Some(x), Some(y)) = (a.f64_at(i), b.f64_at(i)) {
            f(x, y);
        }
    }
}

/// Number of index-aligned exact matches on a categorical attribute
/// (Definition 2.2). Nulls match nulls: `?` is an observable value in the
/// echocardiogram evaluation. Dictionary-encoded columns are counted by
/// `u32` code equality after remapping dictionaries.
pub fn categorical_matches(real: &Relation, syn: &Relation, attr: usize) -> Result<usize> {
    let a = real.column(attr)?;
    let b = syn.column(attr)?;
    check_aligned(real, syn)?;
    Ok(aligned_value_matches(a, b))
}

/// Number of index-aligned ε-close matches on a continuous attribute
/// (Definition 2.3). Rows where either side is non-numeric never match.
pub fn continuous_matches(
    real: &Relation,
    syn: &Relation,
    attr: usize,
    epsilon: f64,
) -> Result<usize> {
    let a = real.column(attr)?;
    let b = syn.column(attr)?;
    check_aligned(real, syn)?;
    let mut count = 0usize;
    for_each_numeric_pair(a, b, |x, y| {
        if (x - y).abs() <= epsilon {
            count += 1;
        }
    });
    Ok(count)
}

/// Mean squared error between the real and synthetic columns over rows
/// where both are numeric (the paper's Table III metric), computed over the
/// typed `&[f64]` slices with the null masks. `None` if no such rows exist.
pub fn mse(real: &Relation, syn: &Relation, attr: usize) -> Result<Option<f64>> {
    let a = real.column(attr)?;
    let b = syn.column(attr)?;
    check_aligned(real, syn)?;
    let mut sum = 0.0;
    let mut n = 0usize;
    for_each_numeric_pair(a, b, |x, y| {
        sum += (x - y) * (x - y);
        n += 1;
    });
    Ok((n > 0).then(|| sum / n as f64))
}

/// Tuple-level leakage over an attribute subset `attrs`: the number of rows
/// where *every* listed attribute matches (categorical attrs exactly,
/// continuous attrs within `epsilon`). This is the multi-attribute form of
/// Definitions 2.2/2.3 with `A` a set.
pub fn tuple_matches(
    real: &Relation,
    syn: &Relation,
    attrs: &[usize],
    epsilon: f64,
) -> Result<usize> {
    check_aligned(real, syn)?;
    // Hoist the schema and column lookups out of the row loop; the scan
    // itself then reads typed cells only.
    let mut checks = Vec::with_capacity(attrs.len());
    for &a in attrs {
        let kind = real.schema().attribute(a)?.kind;
        checks.push((kind, real.column(a)?, syn.column(a)?));
    }
    let mut count = 0;
    'rows: for i in 0..real.n_rows() {
        for (kind, xs, ys) in &checks {
            let matched = match kind {
                mp_relation::AttrKind::Categorical => xs.value_ref(i) == ys.value_ref(i),
                mp_relation::AttrKind::Continuous => match (xs.f64_at(i), ys.f64_at(i)) {
                    (Some(x), Some(y)) => (x - y).abs() <= epsilon,
                    _ => false,
                },
            };
            if !matched {
                continue 'rows;
            }
        }
        count += 1;
    }
    Ok(count)
}

/// The fraction of rows leaked on `attr` under the appropriate definition
/// for the attribute's kind.
pub fn leakage_rate(real: &Relation, syn: &Relation, attr: usize, epsilon: f64) -> Result<f64> {
    if real.n_rows() == 0 {
        return Ok(0.0);
    }
    let matches = match real.schema().attribute(attr)?.kind {
        mp_relation::AttrKind::Categorical => categorical_matches(real, syn, attr)?,
        mp_relation::AttrKind::Continuous => continuous_matches(real, syn, attr, epsilon)?,
    };
    Ok(matches as f64 / real.n_rows() as f64)
}

fn check_aligned(real: &Relation, syn: &Relation) -> Result<()> {
    if real.n_rows() != syn.n_rows() {
        return Err(RelationError::ArityMismatch {
            expected: real.n_rows(),
            got: syn.n_rows(),
        });
    }
    Ok(())
}

/// Schema-level alignment: the synthetic relation must describe the same
/// number of attributes as the real one, or per-attribute measurement
/// would silently cover only a prefix.
fn check_arity(real: &Relation, syn: &Relation) -> Result<()> {
    if real.arity() != syn.arity() {
        return Err(RelationError::ArityMismatch {
            expected: real.arity(),
            got: syn.arity(),
        });
    }
    Ok(())
}

/// Per-attribute leakage summary used by experiment reports.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrLeakage {
    /// Attribute index.
    pub attr: usize,
    /// Attribute name.
    pub name: String,
    /// Exact index-aligned matches (Definition 2.2 for categorical; for
    /// continuous attributes this counts ε-matches at the configured ε).
    pub matches: f64,
    /// MSE against the real column (continuous attributes), `None` when
    /// undefined.
    pub mse: Option<f64>,
}

/// Measures leakage on every attribute of an aligned pair, with `epsilon`
/// as the continuous match tolerance.
pub fn measure_all(real: &Relation, syn: &Relation, epsilon: f64) -> Result<Vec<AttrLeakage>> {
    measure_all_with(real, syn, epsilon, &mp_observe::NoopRecorder)
}

/// [`measure_all`] with an explicit [`mp_observe::Recorder`]: counts every
/// compared cell (`core.leakage.cells_compared`), every index-aligned
/// match (`core.leakage.matches`), and buckets each attribute's match
/// rate, in whole percent, into `core.leakage.match_rate_pct`. All values
/// are integers derived from the comparison itself, so snapshots are
/// byte-stable for a fixed input pair.
pub fn measure_all_with(
    real: &Relation,
    syn: &Relation,
    epsilon: f64,
    recorder: &dyn mp_observe::Recorder,
) -> Result<Vec<AttrLeakage>> {
    check_arity(real, syn)?;
    let cells = recorder.counter("core.leakage.cells_compared");
    let matched = recorder.counter("core.leakage.matches");
    let rate_pct = recorder.histogram(
        "core.leakage.match_rate_pct",
        &[0, 1, 5, 10, 25, 50, 75, 90, 100],
    );
    let n_rows = real.n_rows() as u64;
    (0..real.arity())
        .map(|attr| {
            let name = real.schema().attribute(attr)?.name.clone();
            let matches = match real.schema().attribute(attr)?.kind {
                mp_relation::AttrKind::Categorical => categorical_matches(real, syn, attr)? as f64,
                mp_relation::AttrKind::Continuous => {
                    continuous_matches(real, syn, attr, epsilon)? as f64
                }
            };
            cells.add(n_rows);
            matched.add(matches as u64);
            if let Some(pct) = (matches as u64 * 100).checked_div(n_rows) {
                rate_pct.record(pct);
            }
            Ok(AttrLeakage {
                attr,
                name,
                matches,
                mse: mse(real, syn, attr)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Schema, Value};

    fn pair() -> (Relation, Relation) {
        let schema = Schema::new(vec![
            Attribute::categorical("c"),
            Attribute::continuous("x"),
        ])
        .unwrap();
        let real = Relation::from_rows(
            schema.clone(),
            vec![
                vec!["a".into(), 1.0.into()],
                vec!["b".into(), 2.0.into()],
                vec![Value::Null, 3.0.into()],
                vec!["d".into(), Value::Null],
            ],
        )
        .unwrap();
        let syn = Relation::from_rows(
            schema,
            vec![
                vec!["a".into(), 1.05.into()],
                vec!["x".into(), 2.5.into()],
                vec![Value::Null, 2.95.into()],
                vec!["d".into(), 4.0.into()],
            ],
        )
        .unwrap();
        (real, syn)
    }

    #[test]
    fn categorical_definition_2_2() {
        let (real, syn) = pair();
        // Rows 0 ("a"), 2 (null = null), 3 ("d") match.
        assert_eq!(categorical_matches(&real, &syn, 0).unwrap(), 3);
    }

    #[test]
    fn continuous_definition_2_3() {
        let (real, syn) = pair();
        // ε = 0.1: rows 0 (Δ=.05) and 2 (Δ=.05) match; row 3 has a null.
        assert_eq!(continuous_matches(&real, &syn, 1, 0.1).unwrap(), 2);
        // ε = 0.5: row 1 (Δ=.5) joins.
        assert_eq!(continuous_matches(&real, &syn, 1, 0.5).unwrap(), 3);
        // ε = 0: nothing is exactly equal.
        assert_eq!(continuous_matches(&real, &syn, 1, 0.0).unwrap(), 0);
    }

    #[test]
    fn mse_over_numeric_rows() {
        let (real, syn) = pair();
        // Rows 0, 1, 2: (0.05² + 0.5² + 0.05²)/3.
        let expected = (0.0025 + 0.25 + 0.0025) / 3.0;
        assert!((mse(&real, &syn, 1).unwrap().unwrap() - expected).abs() < 1e-12);
        // Categorical column: no numeric rows.
        assert_eq!(mse(&real, &syn, 0).unwrap(), None);
    }

    #[test]
    fn tuple_level_matches() {
        let (real, syn) = pair();
        // Both attrs must match: only row 0 (cat match + Δ=.05 ≤ .1)
        // and row 2 (null=null + Δ=.05).
        assert_eq!(tuple_matches(&real, &syn, &[0, 1], 0.1).unwrap(), 2);
        // Single-attr subset reduces to the per-attr counts.
        assert_eq!(tuple_matches(&real, &syn, &[0], 0.0).unwrap(), 3);
    }

    #[test]
    fn leakage_rate_normalises() {
        let (real, syn) = pair();
        assert!((leakage_rate(&real, &syn, 0, 0.0).unwrap() - 0.75).abs() < 1e-12);
        assert!((leakage_rate(&real, &syn, 1, 0.1).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn misaligned_relations_rejected() {
        let (real, _) = pair();
        let schema = real.schema().clone();
        let short = Relation::empty(schema);
        assert!(categorical_matches(&real, &short, 0).is_err());
        assert!(mse(&real, &short, 1).is_err());
        assert!(tuple_matches(&real, &short, &[0], 0.0).is_err());
    }

    #[test]
    fn measure_all_rejects_arity_mismatch() {
        let (real, _) = pair();
        let narrow = real.project(&[0]).unwrap();
        assert!(measure_all(&real, &narrow, 0.0).is_err());
    }

    #[test]
    fn measure_all_spans_schema() {
        let (real, syn) = pair();
        let all = measure_all(&real, &syn, 0.1).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].matches, 3.0);
        assert_eq!(all[1].matches, 2.0);
        assert!(all[1].mse.is_some());
        assert_eq!(all[0].name, "c");
    }

    #[test]
    fn measure_all_with_records_cells_and_matches() {
        use mp_observe::{Recorder, Registry};
        let (real, syn) = pair();
        let registry = Registry::new();
        let observed = measure_all_with(&real, &syn, 0.1, &registry).unwrap();
        assert_eq!(observed, measure_all(&real, &syn, 0.1).unwrap());
        let snap = registry.snapshot();
        // 2 attributes × 4 rows.
        assert_eq!(snap.counters["core.leakage.cells_compared"], 8);
        // 3 categorical + 2 continuous matches.
        assert_eq!(snap.counters["core.leakage.matches"], 5);
        assert_eq!(snap.histograms["core.leakage.match_rate_pct"].count, 2);
        let _ = registry.counter("core.leakage.cells_compared"); // still interned
    }

    #[test]
    fn empty_relations() {
        let schema = Schema::new(vec![Attribute::categorical("c")]).unwrap();
        let e1 = Relation::empty(schema.clone());
        let e2 = Relation::empty(schema);
        assert_eq!(categorical_matches(&e1, &e2, 0).unwrap(), 0);
        assert_eq!(leakage_rate(&e1, &e2, 0, 0.0).unwrap(), 0.0);
        assert_eq!(mse(&e1, &e2, 0).unwrap(), None);
    }
}
