//! Interval-based generation for order and differential dependencies.
//!
//! **Order dependency (§IV-C):** given the generated determinant column,
//! its `m` distinct values (sorted) induce `m` partitions; the adversary
//! draws a non-decreasing sequence over the dependent domain and assigns
//! partition `i` the `i`-th element — for continuous codomains a point
//! inside the `i`-th interval of a sorted uniform sample, for categorical
//! codomains the value at a non-decreasing random index. The paper's
//! probability of a correct generation is then the interval-overlap ratio
//! `θ_{y_i} = max(y_{i+1} − y'_i, 0)/(y_max − y_i)`.
//!
//! **Differential dependency (§IV-D):** values are generated as a Markov
//! chain over rows sorted by the determinant: each new value is sampled
//! uniformly from the intersection of the `±δ` balls of every ε-close
//! predecessor (always non-empty, see `generate_dd_column`), so the
//! generated pair satisfies the DD by construction.

use crate::sampler::sample_uniform;
use mp_metadata::OrderDirection;
use mp_relation::{Domain, Value};
use rand::Rng;
use std::collections::HashMap;

/// Generates a dependent column under an **OD** with the given direction.
///
/// Each distinct determinant value maps to a single dependent value
/// (OD ties must be ties), and the mapping is monotone in the dependency's
/// direction. Null determinant values are treated as the smallest group
/// (consistent with [`Value`]'s total order).
pub fn generate_od_column<R: Rng + ?Sized>(
    lhs_col: &[Value],
    rhs_domain: &Domain,
    direction: OrderDirection,
    n_rows: usize,
    rng: &mut R,
) -> Vec<Value> {
    let mut distinct: Vec<&Value> = lhs_col.iter().collect();
    distinct.sort();
    distinct.dedup();
    let m = distinct.len();
    if m == 0 {
        return Vec::new();
    }

    // Draw a non-decreasing sequence of m dependent values.
    let mut seq: Vec<Value> = match rhs_domain {
        Domain::Continuous { min, max } => {
            // Sorted uniform sample: y_1 ≤ … ≤ y_m partition the domain.
            let mut ys: Vec<f64> = (0..m).map(|_| rng.gen_range(*min..=*max)).collect();
            ys.sort_by(f64::total_cmp);
            ys.into_iter().map(Value::Float).collect()
        }
        Domain::Categorical(vals) => {
            if vals.is_empty() {
                return vec![Value::Null; n_rows];
            }
            let mut idx: Vec<usize> = (0..m).map(|_| rng.gen_range(0..vals.len())).collect();
            idx.sort_unstable();
            idx.into_iter().map(|i| vals[i].clone()).collect()
        }
    };
    if direction == OrderDirection::Descending {
        seq.reverse();
    }

    let mapping: HashMap<&Value, Value> = distinct.into_iter().zip(seq).collect();
    (0..n_rows).map(|r| mapping[&lhs_col[r]].clone()).collect()
}

/// Generates a dependent column under a **DD** `X (ε) → Y (δ)`.
///
/// Rows are processed in ascending determinant order; each dependent value
/// is drawn uniformly from the intersection of `[y_j − δ, y_j + δ]` over
/// every already-generated row `j` with `|x_i − x_j| ≤ ε`, intersected with
/// the domain. Inductively all values inside an ε-window are pairwise
/// within δ, so this intersection is never empty and the generated pair
/// satisfies the DD exactly. Rows whose determinant is non-numeric get an
/// unconstrained uniform draw.
pub fn generate_dd_column<R: Rng + ?Sized>(
    lhs_col: &[Value],
    rhs_domain: &Domain,
    eps: f64,
    delta: f64,
    n_rows: usize,
    rng: &mut R,
) -> Vec<Value> {
    let (dom_min, dom_max) = match rhs_domain {
        Domain::Continuous { min, max } => (*min, *max),
        // A DD's dependent attribute is continuous by definition; for a
        // categorical domain fall back to unconstrained uniform draws.
        Domain::Categorical(_) => {
            return (0..n_rows)
                .map(|_| sample_uniform(rhs_domain, rng))
                .collect();
        }
    };

    // Sort row indices by the numeric determinant; non-numeric rows last.
    let mut order: Vec<usize> = (0..n_rows).collect();
    order.sort_by(|&a, &b| match (lhs_col[a].as_f64(), lhs_col[b].as_f64()) {
        (Some(x), Some(y)) => x.total_cmp(&y),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => a.cmp(&b),
    });

    let mut out = vec![Value::Null; n_rows];
    // (x, y) pairs of the current ε-window, in ascending x.
    let mut window: Vec<(f64, f64)> = Vec::new();
    for &r in &order {
        let Some(x) = lhs_col[r].as_f64() else {
            out[r] = sample_uniform(rhs_domain, rng);
            continue;
        };
        while let Some(&(wx, _)) = window.first() {
            if x - wx > eps {
                window.remove(0);
            } else {
                break;
            }
        }
        let (lo, hi) = window
            .iter()
            .fold((dom_min, dom_max), |(lo, hi), &(_, wy)| {
                (lo.max(wy - delta), hi.min(wy + delta))
            });
        let y = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
        window.push((x, y));
        out[r] = Value::Float(y);
    }
    out
}

/// Generates a dependent column under an **SD** `X ↦ Y (gaps ∈ [lo, hi])`:
/// the distinct determinant values, in ascending order, receive Y values
/// built by a cumulative walk whose steps are uniform in `[lo, hi]`,
/// started uniformly in the domain and clamped to it. X-ties share a
/// value (as in OD generation), so the generated pair satisfies the SD.
pub fn generate_sd_column<R: Rng + ?Sized>(
    lhs_col: &[Value],
    rhs_domain: &Domain,
    min_gap: f64,
    max_gap: f64,
    n_rows: usize,
    rng: &mut R,
) -> Vec<Value> {
    let (dom_min, dom_max) = match rhs_domain {
        Domain::Continuous { min, max } => (*min, *max),
        Domain::Categorical(_) => {
            return (0..n_rows)
                .map(|_| sample_uniform(rhs_domain, rng))
                .collect();
        }
    };
    let mut distinct: Vec<&Value> = lhs_col.iter().collect();
    distinct.sort();
    distinct.dedup();
    if distinct.is_empty() {
        return Vec::new();
    }
    let mut y = if dom_max > dom_min {
        rng.gen_range(dom_min..=dom_max)
    } else {
        dom_min
    };
    let mut seq = Vec::with_capacity(distinct.len());
    seq.push(y);
    for _ in 1..distinct.len() {
        let step = if max_gap > min_gap {
            rng.gen_range(min_gap..=max_gap)
        } else {
            min_gap
        };
        y += step;
        seq.push(y);
    }
    let mapping: HashMap<&Value, Value> = distinct
        .into_iter()
        .zip(seq.into_iter().map(Value::Float))
        .collect();
    (0..n_rows).map(|r| mapping[&lhs_col[r]].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_metadata::{DifferentialDep, OrderDep};
    use mp_relation::{Attribute, Relation, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rel(xattr: Attribute, x: Vec<Value>, yattr: Attribute, y: Vec<Value>) -> Relation {
        Relation::from_columns(Schema::new(vec![xattr, yattr]).unwrap(), vec![x, y]).unwrap()
    }

    #[test]
    fn od_generation_satisfies_ascending_od() {
        let mut rng = StdRng::seed_from_u64(20);
        let x: Vec<Value> = (0..90).map(|i| Value::Int((i % 9) as i64)).collect();
        let dom = Domain::continuous(0.0, 50.0);
        let y = generate_od_column(&x, &dom, OrderDirection::Ascending, 90, &mut rng);
        let r = rel(
            Attribute::categorical("x"),
            x,
            Attribute::continuous("y"),
            y,
        );
        assert!(OrderDep::ascending(0, 1).holds(&r).unwrap());
    }

    #[test]
    fn od_generation_satisfies_descending_od() {
        let mut rng = StdRng::seed_from_u64(21);
        let x: Vec<Value> = (0..60).map(|i| Value::Int((i % 6) as i64)).collect();
        let dom = Domain::categorical((0i64..25).collect::<Vec<_>>());
        let y = generate_od_column(&x, &dom, OrderDirection::Descending, 60, &mut rng);
        let r = rel(
            Attribute::categorical("x"),
            x,
            Attribute::categorical("y"),
            y,
        );
        assert!(OrderDep::descending(0, 1).holds(&r).unwrap());
        assert!(r.column_values(1).unwrap().iter().all(|v| dom.contains(v)));
    }

    #[test]
    fn od_generation_categorical_codomain() {
        let mut rng = StdRng::seed_from_u64(22);
        let x: Vec<Value> = (0..50).map(|i| Value::Float((i % 5) as f64)).collect();
        let dom = Domain::categorical(vec!["a", "b", "c"]);
        let y = generate_od_column(&x, &dom, OrderDirection::Ascending, 50, &mut rng);
        let r = rel(
            Attribute::continuous("x"),
            x,
            Attribute::categorical("y"),
            y,
        );
        assert!(OrderDep::ascending(0, 1).holds(&r).unwrap());
    }

    #[test]
    fn od_mapping_is_functional() {
        // Ties in X must produce identical Y (the OD tie condition).
        let mut rng = StdRng::seed_from_u64(23);
        let x = vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(2)];
        let dom = Domain::continuous(0.0, 1.0);
        let y = generate_od_column(&x, &dom, OrderDirection::Ascending, 4, &mut rng);
        assert_eq!(y[0], y[1]);
        assert_eq!(y[2], y[3]);
    }

    #[test]
    fn od_empty_categorical_domain() {
        let mut rng = StdRng::seed_from_u64(24);
        let x = vec![Value::Int(1)];
        let y = generate_od_column(
            &x,
            &Domain::Categorical(vec![]),
            OrderDirection::Ascending,
            1,
            &mut rng,
        );
        assert_eq!(y, vec![Value::Null]);
    }

    #[test]
    fn dd_generation_satisfies_dd() {
        let mut rng = StdRng::seed_from_u64(25);
        let x: Vec<Value> = (0..200)
            .map(|_| Value::Float(rng.gen_range(0.0..100.0)))
            .collect();
        let dom = Domain::continuous(0.0, 10.0);
        let y = generate_dd_column(&x, &dom, 2.0, 1.5, 200, &mut rng);
        let r = rel(Attribute::continuous("x"), x, Attribute::continuous("y"), y);
        assert!(DifferentialDep::new(0, 1, 2.0, 1.5).holds(&r).unwrap());
        // Values stay inside the domain.
        for v in r.column(1).unwrap().iter() {
            let f = v.as_f64().unwrap();
            assert!((0.0..=10.0).contains(&f));
        }
    }

    #[test]
    fn dd_tight_delta_still_valid() {
        // δ = 0: all ε-close values must be exactly equal.
        let mut rng = StdRng::seed_from_u64(26);
        let x: Vec<Value> = (0..50).map(|i| Value::Float(i as f64 * 0.1)).collect();
        let dom = Domain::continuous(0.0, 1.0);
        let y = generate_dd_column(&x, &dom, 0.5, 0.0, 50, &mut rng);
        let r = rel(Attribute::continuous("x"), x, Attribute::continuous("y"), y);
        assert!(DifferentialDep::new(0, 1, 0.5, 0.0).holds(&r).unwrap());
    }

    #[test]
    fn dd_with_nulls_in_lhs() {
        let mut rng = StdRng::seed_from_u64(27);
        let x = vec![
            Value::Float(1.0),
            Value::Null,
            Value::Float(1.5),
            Value::Null,
        ];
        let dom = Domain::continuous(0.0, 4.0);
        let y = generate_dd_column(&x, &dom, 1.0, 0.5, 4, &mut rng);
        assert_eq!(y.len(), 4);
        assert!(y.iter().all(|v| !v.is_null()));
        let r = rel(Attribute::continuous("x"), x, Attribute::continuous("y"), y);
        assert!(DifferentialDep::new(0, 1, 1.0, 0.5).holds(&r).unwrap());
    }

    #[test]
    fn dd_categorical_domain_falls_back() {
        let mut rng = StdRng::seed_from_u64(28);
        let x = vec![Value::Float(0.0), Value::Float(0.1)];
        let dom = Domain::categorical(vec!["a", "b"]);
        let y = generate_dd_column(&x, &dom, 1.0, 0.5, 2, &mut rng);
        assert!(y.iter().all(|v| dom.contains(v)));
    }

    #[test]
    fn sd_generation_satisfies_sd() {
        use mp_metadata::SequentialDep;
        let mut rng = StdRng::seed_from_u64(30);
        let x: Vec<Value> = (0..80).map(|i| Value::Float((i % 8) as f64)).collect();
        let dom = Domain::continuous(0.0, 100.0);
        let y = generate_sd_column(&x, &dom, 0.5, 2.0, 80, &mut rng);
        let r = rel(Attribute::continuous("x"), x, Attribute::continuous("y"), y);
        assert!(SequentialDep::new(0, 1, 0.5, 2.0).holds(&r).unwrap());
        // Bounded positive gaps imply the ascending OD too.
        assert!(OrderDep::ascending(0, 1).holds(&r).unwrap());
    }

    #[test]
    fn sd_generation_fixed_gap() {
        use mp_metadata::SequentialDep;
        let mut rng = StdRng::seed_from_u64(31);
        let x: Vec<Value> = (0..5).map(Value::Int).collect();
        let dom = Domain::continuous(0.0, 10.0);
        let y = generate_sd_column(&x, &dom, 1.0, 1.0, 5, &mut rng);
        let r = rel(Attribute::continuous("x"), x, Attribute::continuous("y"), y);
        assert!(SequentialDep::new(0, 1, 1.0, 1.0).holds(&r).unwrap());
    }
}
