//! Mapping-based generation for FD, AFD, ND and OFD metadata.
//!
//! The common shape (paper §III-B): the adversary first generates the
//! determinant column(s), then materialises a *random mapping* from
//! observed determinant values into the dependent attribute's domain —
//! "one-time initialization throughout the dataset". Each dependency class
//! constrains the mapping differently:
//!
//! * **FD** — any function: each LHS value maps to one uniformly chosen
//!   RHS value (`P(B|A=a) = 1/|D_B|`).
//! * **AFD** — an FD mapping, but an ε fraction of rows are perturbed to
//!   independent uniform values, scattering violations across partitions
//!   exactly as §IV-A describes.
//! * **ND** — each LHS value maps to a uniformly chosen `k`-subset of the
//!   RHS domain (the hypergeometric selection of §IV-B); rows then sample
//!   inside their subset.
//! * **OFD** — distinct LHS values map to a *strictly increasing* random
//!   sequence of RHS values — the directed-random-walk of §IV-E.

use crate::sampler::{enumerate_domain, sample_uniform};
use mp_relation::{Domain, Value};
use rand::Rng;
use std::collections::HashMap;

/// Number of grid points used to view a continuous domain as a finite
/// codomain for subset/walk mappings.
pub const DEFAULT_BINS: usize = 64;

/// Composite key of the already-generated determinant columns for one row.
fn lhs_key(lhs_cols: &[&[Value]], row: usize) -> Vec<Value> {
    lhs_cols.iter().map(|c| c[row].clone()).collect()
}

/// Generates a dependent column under an **FD**: one uniformly random image
/// per distinct determinant value.
pub fn generate_fd_column<R: Rng + ?Sized>(
    lhs_cols: &[&[Value]],
    rhs_domain: &Domain,
    n_rows: usize,
    rng: &mut R,
) -> Vec<Value> {
    let mut mapping: HashMap<Vec<Value>, Value> = HashMap::new();
    (0..n_rows)
        .map(|r| {
            let key = lhs_key(lhs_cols, r);
            mapping
                .entry(key)
                .or_insert_with(|| sample_uniform(rhs_domain, rng))
                .clone()
        })
        .collect()
}

/// Generates a dependent column under an **AFD**: the FD mapping with an
/// `epsilon` fraction of rows replaced by independent uniform draws.
pub fn generate_afd_column<R: Rng + ?Sized>(
    lhs_cols: &[&[Value]],
    rhs_domain: &Domain,
    epsilon: f64,
    n_rows: usize,
    rng: &mut R,
) -> Vec<Value> {
    let mut mapping: HashMap<Vec<Value>, Value> = HashMap::new();
    (0..n_rows)
        .map(|r| {
            if rng.gen::<f64>() < epsilon {
                sample_uniform(rhs_domain, rng)
            } else {
                let key = lhs_key(lhs_cols, r);
                mapping
                    .entry(key)
                    .or_insert_with(|| sample_uniform(rhs_domain, rng))
                    .clone()
            }
        })
        .collect()
}

/// Generates a dependent column under an **ND** `X →≤k Y`: each distinct
/// determinant value gets a uniformly chosen `k`-subset of the (possibly
/// discretised) RHS domain; each row samples uniformly within its subset.
pub fn generate_nd_column<R: Rng + ?Sized>(
    lhs_col: &[Value],
    rhs_domain: &Domain,
    k: usize,
    n_rows: usize,
    rng: &mut R,
) -> Vec<Value> {
    let pool = enumerate_domain(rhs_domain, DEFAULT_BINS.max(k));
    if pool.is_empty() {
        return vec![Value::Null; n_rows];
    }
    let k = k.clamp(1, pool.len());
    let mut subsets: HashMap<&Value, Vec<usize>> = HashMap::new();
    (0..n_rows)
        .map(|r| {
            let subset = subsets.entry(&lhs_col[r]).or_insert_with(|| {
                // Partial Fisher–Yates: a uniform k-subset of the pool.
                let mut idx: Vec<usize> = (0..pool.len()).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..idx.len());
                    idx.swap(i, j);
                }
                idx.truncate(k);
                idx
            });
            pool[subset[rng.gen_range(0..subset.len())]].clone()
        })
        .collect()
}

/// Generates a dependent column under an **OFD** `X → Y`: the `m` distinct
/// determinant values, in sorted order, map to a strictly increasing
/// uniformly random sequence over the RHS codomain.
///
/// When the finite codomain has fewer than `m` values a strictly increasing
/// sequence is impossible; the walk degrades to non-decreasing (the closest
/// realisable mapping — the paper's transition probability
/// `P_{i,i+1} = 1 − (|X|−t)/|Y|` likewise forces every remaining step up
/// when the codomain budget runs out).
pub fn generate_ofd_column<R: Rng + ?Sized>(
    lhs_col: &[Value],
    rhs_domain: &Domain,
    n_rows: usize,
    rng: &mut R,
) -> Vec<Value> {
    let mut distinct: Vec<&Value> = lhs_col.iter().collect();
    distinct.sort();
    distinct.dedup();
    let m = distinct.len();
    if m == 0 {
        return Vec::new();
    }
    let pool = enumerate_domain(rhs_domain, DEFAULT_BINS.max(m));
    if pool.is_empty() {
        return vec![Value::Null; n_rows];
    }

    // Choose m indices into the sorted pool: a uniform m-combination when
    // possible (strictly increasing), otherwise a sorted m-multiset.
    let indices: Vec<usize> = if m <= pool.len() {
        let mut idx: Vec<usize> = (0..pool.len()).collect();
        for i in 0..m {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx.truncate(m);
        idx.sort_unstable();
        idx
    } else {
        let mut idx: Vec<usize> = (0..m).map(|_| rng.gen_range(0..pool.len())).collect();
        idx.sort_unstable();
        idx
    };

    let mapping: HashMap<&Value, &Value> = distinct
        .iter()
        .zip(indices.iter().map(|&i| &pool[i]))
        .map(|(k, v)| (*k, v))
        .collect();
    (0..n_rows).map(|r| mapping[&lhs_col[r]].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_metadata::{Fd, NumericalDep, OrderedFd};
    use mp_relation::{Attribute, Relation, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rel_from(cols: Vec<(Attribute, Vec<Value>)>) -> Relation {
        let (attrs, columns): (Vec<_>, Vec<_>) = cols.into_iter().unzip();
        Relation::from_columns(Schema::new(attrs).unwrap(), columns).unwrap()
    }

    fn lhs_values(n: usize, card: usize) -> Vec<Value> {
        (0..n).map(|i| Value::Int((i % card) as i64)).collect()
    }

    #[test]
    fn fd_generation_satisfies_fd() {
        let mut rng = StdRng::seed_from_u64(5);
        let lhs = lhs_values(100, 7);
        let rhs_dom = Domain::categorical(vec!["a", "b", "c"]);
        let rhs = generate_fd_column(&[&lhs], &rhs_dom, 100, &mut rng);
        let r = rel_from(vec![
            (Attribute::categorical("x"), lhs),
            (Attribute::categorical("y"), rhs),
        ]);
        assert!(Fd::new(0usize, 1).holds(&r).unwrap());
    }

    #[test]
    fn fd_generation_composite_lhs() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = lhs_values(120, 4);
        let b: Vec<Value> = (0..120).map(|i| Value::Int((i / 4 % 3) as i64)).collect();
        let dom = Domain::categorical(vec![0i64, 1]);
        let c = generate_fd_column(&[&a, &b], &dom, 120, &mut rng);
        let r = rel_from(vec![
            (Attribute::categorical("a"), a),
            (Attribute::categorical("b"), b),
            (Attribute::categorical("c"), c),
        ]);
        assert!(Fd::new(vec![0, 1], 2).holds(&r).unwrap());
    }

    #[test]
    fn afd_generation_respects_epsilon_roughly() {
        let mut rng = StdRng::seed_from_u64(7);
        let lhs = lhs_values(2000, 5);
        let dom = Domain::categorical((0i64..20).collect::<Vec<_>>());
        let rhs = generate_afd_column(&[&lhs], &dom, 0.1, 2000, &mut rng);
        let r = rel_from(vec![
            (Attribute::categorical("x"), lhs),
            (Attribute::categorical("y"), rhs),
        ]);
        let g3 = Fd::new(0usize, 1).g3_error(&r).unwrap();
        assert!(g3 > 0.02, "g3 {g3}: perturbations must land");
        assert!(g3 < 0.15, "g3 {g3}: too many violations for ε=0.1");
    }

    #[test]
    fn afd_with_zero_epsilon_is_fd() {
        let mut rng = StdRng::seed_from_u64(8);
        let lhs = lhs_values(200, 6);
        let dom = Domain::categorical(vec![0i64, 1, 2]);
        let rhs = generate_afd_column(&[&lhs], &dom, 0.0, 200, &mut rng);
        let r = rel_from(vec![
            (Attribute::categorical("x"), lhs),
            (Attribute::categorical("y"), rhs),
        ]);
        assert!(Fd::new(0usize, 1).holds(&r).unwrap());
    }

    #[test]
    fn nd_generation_bounds_fanout() {
        let mut rng = StdRng::seed_from_u64(9);
        let lhs = lhs_values(600, 6);
        let dom = Domain::categorical((0i64..30).collect::<Vec<_>>());
        let rhs = generate_nd_column(&lhs, &dom, 4, 600, &mut rng);
        let r = rel_from(vec![
            (Attribute::categorical("x"), lhs),
            (Attribute::categorical("y"), rhs),
        ]);
        assert!(NumericalDep::new(0, 1, 4).holds(&r).unwrap());
        // And the generator uses the budget: with 100 rows per group the
        // fanout should actually reach 4 for some group.
        let max = NumericalDep::max_fanout(0, 1, &r).unwrap();
        assert!(max >= 3, "fanout {max} suspiciously small");
    }

    #[test]
    fn nd_generation_continuous_domain() {
        let mut rng = StdRng::seed_from_u64(10);
        let lhs = lhs_values(200, 4);
        let dom = Domain::continuous(0.0, 100.0);
        let rhs = generate_nd_column(&lhs, &dom, 3, 200, &mut rng);
        let r = rel_from(vec![
            (Attribute::categorical("x"), lhs),
            (Attribute::continuous("y"), rhs),
        ]);
        assert!(NumericalDep::new(0, 1, 3).holds(&r).unwrap());
    }

    #[test]
    fn nd_with_k_larger_than_domain_clamps() {
        let mut rng = StdRng::seed_from_u64(11);
        let lhs = lhs_values(50, 2);
        let dom = Domain::categorical(vec![0i64, 1]);
        let rhs = generate_nd_column(&lhs, &dom, 99, 50, &mut rng);
        assert_eq!(rhs.len(), 50);
        assert!(rhs.iter().all(|v| dom.contains(v)));
    }

    #[test]
    fn ofd_generation_satisfies_ofd() {
        let mut rng = StdRng::seed_from_u64(12);
        let lhs = lhs_values(150, 8);
        let dom = Domain::categorical((0i64..40).collect::<Vec<_>>());
        let rhs = generate_ofd_column(&lhs, &dom, 150, &mut rng);
        let r = rel_from(vec![
            (Attribute::categorical("x"), lhs),
            (Attribute::categorical("y"), rhs),
        ]);
        assert!(OrderedFd::new(0, 1).holds(&r).unwrap());
    }

    #[test]
    fn ofd_generation_continuous_codomain() {
        let mut rng = StdRng::seed_from_u64(13);
        let lhs: Vec<Value> = (0..100).map(|i| Value::Float((i % 10) as f64)).collect();
        let dom = Domain::continuous(-5.0, 5.0);
        let rhs = generate_ofd_column(&lhs, &dom, 100, &mut rng);
        let r = rel_from(vec![
            (Attribute::continuous("x"), lhs),
            (Attribute::continuous("y"), rhs),
        ]);
        assert!(OrderedFd::new(0, 1).holds(&r).unwrap());
    }

    #[test]
    fn ofd_degrades_gracefully_when_codomain_small() {
        let mut rng = StdRng::seed_from_u64(14);
        let lhs = lhs_values(60, 10); // 10 distinct lhs values
        let dom = Domain::categorical(vec![0i64, 1, 2]); // only 3 targets
        let rhs = generate_ofd_column(&lhs, &dom, 60, &mut rng);
        // Strictness is unachievable; the result must still be an
        // order-compatible function (FD + non-decreasing).
        let r = rel_from(vec![
            (Attribute::categorical("x"), lhs),
            (Attribute::categorical("y"), rhs),
        ]);
        assert!(Fd::new(0usize, 1).holds(&r).unwrap());
        assert!(mp_metadata::OrderDep::ascending(0, 1).holds(&r).unwrap());
    }

    #[test]
    fn empty_inputs() {
        let mut rng = StdRng::seed_from_u64(15);
        let dom = Domain::categorical(vec![0i64]);
        assert!(generate_ofd_column(&[], &dom, 0, &mut rng).is_empty());
        assert!(generate_fd_column(&[&[]], &dom, 0, &mut rng).is_empty());
        let empty_dom = Domain::Categorical(vec![]);
        let out = generate_nd_column(&lhs_values(5, 2), &empty_dom, 2, 5, &mut rng);
        assert!(out.iter().all(Value::is_null));
    }
}
