//! # mp-synth — the metadata adversary
//!
//! Synthetic-data generators conditioned on shared metadata, implementing
//! the attack model of *"Will Sharing Metadata Leak Privacy?"* (Zhan &
//! Hai, ICDE 2024):
//!
//! * [`sample_uniform`] / [`sample_column`] — the §III-A random baseline
//!   (uniform generation from a shared domain);
//! * [`generate_fd_column`] / [`generate_afd_column`] — FD/AFD mapping
//!   generation (§III-B, §IV-A);
//! * [`generate_nd_column`] — hypergeometric k-subset mappings (§IV-B);
//! * [`generate_od_column`] — monotone interval-sequence generation
//!   (§IV-C);
//! * [`generate_dd_column`] — Markov-chain ε/δ-ball generation (§IV-D);
//! * [`generate_ofd_column`] — the directed-random-walk strict mapping
//!   (§IV-E);
//! * [`Adversary`] — the orchestrator that turns a received
//!   [`mp_metadata::MetadataPackage`] into a full `R_syn`, following the
//!   dependency graph's generation plan.
//!
//! Every generator guarantees the generated pair *satisfies* the
//! dependency it was driven by (property-tested), mirroring the paper's
//! premise that the adversary produces data consistent with all shared
//! metadata.

#![warn(missing_docs)]

mod adversary;
mod adversary_model;
mod cfd_gen;
mod interval;
mod mapping;
mod sampler;

pub use adversary::{Adversary, SynthConfig};
pub use adversary_model::AdversaryModel;
pub use cfd_gen::generate_cfd_column;
pub use interval::{generate_dd_column, generate_od_column, generate_sd_column};
pub use mapping::{
    generate_afd_column, generate_fd_column, generate_nd_column, generate_ofd_column, DEFAULT_BINS,
};
pub use sampler::{
    collect_typed, enumerate_domain, sample_column, sample_column_from_distribution,
    sample_from_distribution, sample_typed_column, sample_typed_column_from_distribution,
    sample_uniform,
};
