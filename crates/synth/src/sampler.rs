//! Uniform sampling from shared attribute domains.
//!
//! §III-A of the paper: with only a name and a domain, the adversary's best
//! move is uniform random generation, giving per-cell success probability
//! `θ_A = 1/|D_A|` (categorical) or an ε-ball hit rate `2ε/range`
//! (continuous). This module is that baseline generator, plus the
//! discretisation used when mapping-based generators need a finite view of
//! a continuous domain.

use mp_metadata::Distribution;
use mp_relation::{Bitmap, Column, Domain, Value};
use rand::Rng;

/// Samples one value uniformly from `domain`.
///
/// Categorical domains pick one of their listed values (which may include
/// `Null` — the echocardiogram evaluation treats `?` as a domain value).
/// Continuous domains sample uniformly from `[min, max]`.
pub fn sample_uniform<R: Rng + ?Sized>(domain: &Domain, rng: &mut R) -> Value {
    match domain {
        Domain::Categorical(vals) => {
            if vals.is_empty() {
                Value::Null
            } else {
                vals[rng.gen_range(0..vals.len())].clone()
            }
        }
        Domain::Continuous { min, max } => {
            if max > min {
                Value::Float(rng.gen_range(*min..=*max))
            } else {
                Value::Float(*min)
            }
        }
    }
}

/// Samples a whole column of `n` independent uniform values.
pub fn sample_column<R: Rng + ?Sized>(domain: &Domain, n: usize, rng: &mut R) -> Vec<Value> {
    (0..n).map(|_| sample_uniform(domain, rng)).collect()
}

/// Samples a whole column directly into a typed [`Column`], consuming the
/// same RNG stream as [`sample_column`] (the two are interchangeable).
///
/// Continuous domains fill an `f64` buffer with no `Value` boxing; all-text
/// categorical domains share their value list as the dictionary and sample
/// `u32` codes. Mixed-type categorical domains fall back to pushing owned
/// values.
pub fn sample_typed_column<R: Rng + ?Sized>(domain: &Domain, n: usize, rng: &mut R) -> Column {
    match domain {
        Domain::Continuous { min, max } => {
            let values: Vec<f64> = (0..n)
                .map(|_| {
                    if max > min {
                        rng.gen_range(*min..=*max)
                    } else {
                        *min
                    }
                })
                .collect();
            Column::Float {
                values,
                nulls: Bitmap::filled(n, false),
                ints: Bitmap::filled(n, false),
            }
        }
        Domain::Categorical(vals)
            if !vals.is_empty() && vals.iter().all(|v| matches!(v, Value::Text(_))) =>
        {
            let dict: Vec<String> = vals
                .iter()
                // lint: allow(no-panic) reason="the arm guard checks every value is Value::Text before this runs"
                .map(|v| v.as_str().expect("all-text checked above").to_string())
                .collect();
            let codes: Vec<u32> = (0..n)
                .map(|_| rng.gen_range(0..vals.len()) as u32 + 1)
                .collect();
            Column::Categorical { dict, codes }
        }
        _ => collect_typed(sample_column(domain, n, rng)),
    }
}

/// Samples a whole typed column from a distribution, consuming the same
/// RNG stream as [`sample_column_from_distribution`]. Histograms emit
/// floats directly; categorical frequency tables fall back to owned values.
pub fn sample_typed_column_from_distribution<R: Rng + ?Sized>(
    dist: &Distribution,
    n: usize,
    rng: &mut R,
) -> Column {
    match dist {
        Distribution::Histogram { .. } => {
            let values: Vec<f64> = (0..n)
                .map(|_| match sample_from_distribution(dist, rng) {
                    Value::Float(f) => f,
                    v => v.as_f64().unwrap_or(f64::NAN),
                })
                .collect();
            Column::Float {
                values,
                nulls: Bitmap::filled(n, false),
                ints: Bitmap::filled(n, false),
            }
        }
        Distribution::Categorical(_) => {
            collect_typed(sample_column_from_distribution(dist, n, rng))
        }
    }
}

/// Folds owned values into a typed column (the `Value` boundary of the
/// generators that still work row-wise).
pub fn collect_typed(values: Vec<Value>) -> Column {
    let mut col = Column::default();
    for v in values {
        col.push_value(v);
    }
    col
}

/// Samples one value from a shared [`Distribution`] — the adversary's
/// move when the party over-shared value statistics. Categorical:
/// frequency-weighted pick; continuous: pick a bucket by density, then
/// uniform within the bucket.
pub fn sample_from_distribution<R: Rng + ?Sized>(dist: &Distribution, rng: &mut R) -> Value {
    match dist {
        Distribution::Categorical(freqs) => {
            if freqs.is_empty() {
                return Value::Null;
            }
            let total: f64 = freqs.iter().map(|(_, p)| p).sum();
            let mut u = rng.gen::<f64>() * total.max(f64::MIN_POSITIVE);
            for (v, p) in freqs {
                u -= p;
                if u <= 0.0 {
                    return v.clone();
                }
            }
            freqs.last().map(|(v, _)| v.clone()).unwrap_or(Value::Null)
        }
        Distribution::Histogram {
            min,
            max,
            densities,
        } => {
            if densities.is_empty() || max <= min {
                return Value::Float(*min);
            }
            let total: f64 = densities.iter().sum();
            let mut u = rng.gen::<f64>() * total.max(f64::MIN_POSITIVE);
            let width = (max - min) / densities.len() as f64;
            for (b, p) in densities.iter().enumerate() {
                u -= p;
                if u <= 0.0 {
                    let lo = min + b as f64 * width;
                    return Value::Float(rng.gen_range(lo..=lo + width));
                }
            }
            Value::Float(rng.gen_range(*min..=*max))
        }
    }
}

/// Samples a whole column from a distribution.
pub fn sample_column_from_distribution<R: Rng + ?Sized>(
    dist: &Distribution,
    n: usize,
    rng: &mut R,
) -> Vec<Value> {
    (0..n)
        .map(|_| sample_from_distribution(dist, rng))
        .collect()
}

/// A finite, ordered list of representative values of a domain, used by
/// mapping-based generators (FD/ND/OFD) that need to enumerate the
/// codomain.
///
/// Categorical domains return their values (already sorted); continuous
/// domains are discretised into `bins` equally spaced grid points.
pub fn enumerate_domain(domain: &Domain, bins: usize) -> Vec<Value> {
    match domain {
        Domain::Categorical(vals) => vals.clone(),
        Domain::Continuous { min, max } => {
            let bins = bins.max(1);
            if bins == 1 || max <= min {
                return vec![Value::Float((min + max) / 2.0)];
            }
            (0..bins)
                .map(|i| Value::Float(min + (max - min) * i as f64 / (bins - 1) as f64))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn categorical_sampling_stays_in_domain() {
        let d = Domain::categorical(vec!["a", "b", "c"]);
        let mut rng = StdRng::seed_from_u64(1);
        for v in sample_column(&d, 200, &mut rng) {
            assert!(d.contains(&v));
        }
    }

    #[test]
    fn categorical_sampling_is_roughly_uniform() {
        let d = Domain::categorical(vec![0i64, 1, 2]);
        let mut rng = StdRng::seed_from_u64(7);
        let col = sample_column(&d, 3000, &mut rng);
        for target in [0i64, 1, 2] {
            let count = col.iter().filter(|v| **v == Value::Int(target)).count();
            assert!((800..1200).contains(&count), "count {count} for {target}");
        }
    }

    #[test]
    fn continuous_sampling_in_bounds() {
        let d = Domain::continuous(-2.0, 5.0);
        let mut rng = StdRng::seed_from_u64(3);
        for v in sample_column(&d, 500, &mut rng) {
            let x = v.as_f64().unwrap();
            assert!((-2.0..=5.0).contains(&x));
        }
    }

    #[test]
    fn degenerate_domains() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            sample_uniform(&Domain::Categorical(vec![]), &mut rng),
            Value::Null
        );
        assert_eq!(
            sample_uniform(&Domain::continuous(4.0, 4.0), &mut rng),
            Value::Float(4.0)
        );
    }

    #[test]
    fn null_in_domain_is_sampled() {
        let d = Domain::categorical(vec![Value::Null, Value::Int(1)]);
        let mut rng = StdRng::seed_from_u64(2);
        let col = sample_column(&d, 200, &mut rng);
        assert!(col.iter().any(Value::is_null));
        assert!(col.iter().any(|v| !v.is_null()));
    }

    #[test]
    fn enumerate_categorical_is_identity() {
        let d = Domain::categorical(vec![2i64, 1]);
        assert_eq!(enumerate_domain(&d, 10), vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn enumerate_continuous_grid() {
        let d = Domain::continuous(0.0, 10.0);
        let grid = enumerate_domain(&d, 5);
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0], Value::Float(0.0));
        assert_eq!(grid[4], Value::Float(10.0));
        assert_eq!(grid[2], Value::Float(5.0));
        // Grid is sorted.
        let mut sorted = grid.clone();
        sorted.sort();
        assert_eq!(grid, sorted);
    }

    #[test]
    fn enumerate_degenerate_bins() {
        let d = Domain::continuous(1.0, 3.0);
        assert_eq!(enumerate_domain(&d, 0), vec![Value::Float(2.0)]);
        assert_eq!(enumerate_domain(&d, 1), vec![Value::Float(2.0)]);
        let point = Domain::continuous(5.0, 5.0);
        assert_eq!(enumerate_domain(&point, 8), vec![Value::Float(5.0)]);
    }
}
