//! Adversary models beyond the paper's single honest-but-curious
//! receiver.
//!
//! The paper evaluates one adversary: a party that receives a (possibly
//! redacted) metadata package and synthesizes data from it (§III/§V).
//! Practical VFL attacks widen that space — partial PSI alignment,
//! coalitions of receivers pooling what each was sent, and deliberately
//! perturbed domains — so the leakage matrix sweeps an explicit
//! [`AdversaryModel`] axis. Each model maps the *shared* package to the
//! package the adversary actually generates from ([`AdversaryModel::shared_package`]);
//! row-subset effects (partial alignment) are applied at scoring time by
//! `mp_core::matrix` since they change what the adversary can *verify*,
//! not what it can generate.

use mp_metadata::MetadataPackage;

/// Which adversary receives the shared metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryModel {
    /// The paper's honest-but-curious receiver: one party, full PSI
    /// alignment, the package exactly as shared.
    Baseline,
    /// The adversary's PSI intersection covers only `aligned_pct`% of the
    /// victim's rows; reconstructed cells outside the intersection cannot
    /// be attributed to a tuple, so only the aligned fraction scores.
    PartialAlignment {
        /// Aligned fraction in percent, `1..=100`.
        aligned_pct: u8,
    },
    /// `parties` receivers collude: each holds a differently-redacted
    /// view of the same package and the coalition pools them via
    /// [`MetadataPackage::pool`].
    Collusion {
        /// Coalition size, `2..=8`.
        parties: u8,
    },
    /// The sharing party perturbed every domain by `noise_pct`% before
    /// sharing ([`MetadataPackage::with_noisy_domains`]); the adversary
    /// generates from the widened domains.
    NoisyDomains {
        /// Perturbation level in percent, `0..=100`.
        noise_pct: u8,
    },
}

impl AdversaryModel {
    /// The canonical short label (`baseline`, `partial50`, `collude2`,
    /// `noisy10`) used in matrix JSON keys and CLI `--adversaries` lists.
    pub fn label(&self) -> String {
        match self {
            AdversaryModel::Baseline => "baseline".to_owned(),
            AdversaryModel::PartialAlignment { aligned_pct } => format!("partial{aligned_pct}"),
            AdversaryModel::Collusion { parties } => format!("collude{parties}"),
            AdversaryModel::NoisyDomains { noise_pct } => format!("noisy{noise_pct}"),
        }
    }

    /// The label the *generation* seed is derived from.
    ///
    /// Partial alignment generates exactly like the baseline (alignment
    /// restricts scoring, not synthesis), so it shares the baseline's
    /// streams — which is what makes leakage *exactly* monotone in the
    /// aligned fraction: scoring a superset of rows of the same synthetic
    /// relation can only add matches.
    pub fn generation_label(&self) -> String {
        match self {
            AdversaryModel::PartialAlignment { .. } => "baseline".to_owned(),
            other => other.label(),
        }
    }

    /// Fraction of victim rows the adversary can score, in percent.
    pub fn aligned_pct(&self) -> u8 {
        match self {
            AdversaryModel::PartialAlignment { aligned_pct } => *aligned_pct,
            _ => 100,
        }
    }

    /// The package the adversary synthesizes from, given what the owner
    /// shared under the active policy.
    ///
    /// * `Baseline` / `PartialAlignment` — the shared package as-is.
    /// * `Collusion` — the pool of the per-party views
    ///   ([`Self::collusion_views`]).
    /// * `NoisyDomains` — the shared package with perturbed domains.
    pub fn shared_package(&self, shared: &MetadataPackage) -> Result<MetadataPackage, String> {
        match self {
            AdversaryModel::Baseline | AdversaryModel::PartialAlignment { .. } => {
                Ok(shared.clone())
            }
            AdversaryModel::Collusion { parties } => {
                let views = Self::collusion_views(shared, usize::from(*parties));
                MetadataPackage::pool(&views).map_err(|e| e.to_string())
            }
            AdversaryModel::NoisyDomains { noise_pct } => Ok(shared.with_noisy_domains(*noise_pct)),
        }
    }

    /// The `k` per-party views of a shared package: view `i` keeps the
    /// domain and distribution of attributes `a` with `a % k == i` and
    /// sees only names/kinds for the rest. Every view keeps the full
    /// dependency list (dependencies are schema-level, not per-column).
    /// Pooling all `k` views reassembles exactly the shared package, so
    /// collusion leakage is an upper bound on any single view's.
    pub fn collusion_views(shared: &MetadataPackage, k: usize) -> Vec<MetadataPackage> {
        let k = k.max(1);
        (0..k)
            .map(|i| {
                let mut view = shared.clone();
                view.party = format!("{}#{i}", shared.party);
                for (a, meta) in view.attributes.iter_mut().enumerate() {
                    if a % k != i {
                        meta.domain = None;
                        meta.distribution = None;
                    }
                }
                view
            })
            .collect()
    }

    /// Parses a CLI label: `baseline`, `partialNN` (NN in `1..=100`),
    /// `colludeK` (K in `2..=8`), `noisyNN` (NN in `0..=100`).
    pub fn parse(label: &str) -> Result<AdversaryModel, String> {
        if label == "baseline" {
            return Ok(AdversaryModel::Baseline);
        }
        if let Some(rest) = label.strip_prefix("partial") {
            let pct: u8 = rest
                .parse()
                .map_err(|_| format!("bad aligned fraction in `{label}`"))?;
            if !(1..=100).contains(&pct) {
                return Err(format!("aligned fraction must be 1..=100, got {pct}"));
            }
            return Ok(AdversaryModel::PartialAlignment { aligned_pct: pct });
        }
        if let Some(rest) = label.strip_prefix("collude") {
            let k: u8 = rest
                .parse()
                .map_err(|_| format!("bad coalition size in `{label}`"))?;
            if !(2..=8).contains(&k) {
                return Err(format!("coalition size must be 2..=8, got {k}"));
            }
            return Ok(AdversaryModel::Collusion { parties: k });
        }
        if let Some(rest) = label.strip_prefix("noisy") {
            let pct: u8 = rest
                .parse()
                .map_err(|_| format!("bad noise level in `{label}`"))?;
            if pct > 100 {
                return Err(format!("noise level must be 0..=100, got {pct}"));
            }
            return Ok(AdversaryModel::NoisyDomains { noise_pct: pct });
        }
        Err(format!(
            "unknown adversary `{label}` (expected baseline, partialNN, colludeK or noisyNN)"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_metadata::Fd;
    use mp_relation::{Attribute, Relation, Schema};

    fn pkg() -> MetadataPackage {
        let schema = Schema::new(vec![
            Attribute::categorical("a"),
            Attribute::continuous("b"),
            Attribute::categorical("c"),
        ])
        .unwrap();
        let rel = Relation::from_rows(
            schema,
            vec![
                vec!["x".into(), 1.0.into(), "p".into()],
                vec!["y".into(), 2.0.into(), "q".into()],
            ],
        )
        .unwrap();
        MetadataPackage::describe("owner", &rel, vec![Fd::new(0usize, 2).into()]).unwrap()
    }

    #[test]
    fn labels_round_trip_through_parse() {
        let models = [
            AdversaryModel::Baseline,
            AdversaryModel::PartialAlignment { aligned_pct: 50 },
            AdversaryModel::Collusion { parties: 3 },
            AdversaryModel::NoisyDomains { noise_pct: 10 },
        ];
        for m in models {
            assert_eq!(AdversaryModel::parse(&m.label()), Ok(m));
        }
    }

    #[test]
    fn parse_rejects_out_of_range_and_garbage() {
        for bad in [
            "partial0",
            "partial101",
            "collude1",
            "collude9",
            "noisy101",
            "partialx",
            "mallory",
            "",
        ] {
            assert!(AdversaryModel::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn partial_alignment_generates_like_baseline() {
        let m = AdversaryModel::PartialAlignment { aligned_pct: 25 };
        assert_eq!(m.generation_label(), "baseline");
        assert_eq!(m.aligned_pct(), 25);
        assert_eq!(m.shared_package(&pkg()).unwrap(), pkg());
    }

    #[test]
    fn collusion_pool_reassembles_the_shared_package() {
        let shared = pkg();
        for k in 2..=4u8 {
            let m = AdversaryModel::Collusion { parties: k };
            let pooled = m.shared_package(&shared).unwrap();
            for (p, s) in pooled.attributes.iter().zip(&shared.attributes) {
                assert_eq!(p.domain, s.domain);
                assert_eq!(p.kind, s.kind);
            }
            assert_eq!(pooled.dependencies, shared.dependencies);
        }
    }

    #[test]
    fn each_collusion_view_is_strictly_poorer() {
        let shared = pkg();
        for view in AdversaryModel::collusion_views(&shared, 3) {
            assert!(view.attributes.iter().any(|a| a.domain.is_none()));
            assert_eq!(view.dependencies, shared.dependencies);
        }
    }

    #[test]
    fn noisy_model_perturbs_domains() {
        let shared = pkg();
        let m = AdversaryModel::NoisyDomains { noise_pct: 50 };
        let noisy = m.shared_package(&shared).unwrap();
        assert_ne!(noisy, shared);
        assert_eq!(
            noisy,
            shared.with_noisy_domains(50),
            "model must delegate to the canonical perturbation"
        );
    }
}
