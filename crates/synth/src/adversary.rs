//! The metadata adversary: reconstructs a synthetic relation `R_syn` from
//! a shared [`MetadataPackage`].
//!
//! This is the attack model of the paper's §II-B: *"When party A
//! communicates its metadata with party B, there arises a possibility that
//! party B might use this metadata to construct a synthetic dataset,
//! essentially an inferred approximation of A's real dataset."* The
//! adversary builds the dependency graph from the shared dependencies,
//! plans a generation order ([`mp_metadata::DependencyGraph::plan`]), and
//! produces each attribute either independently from its shared domain or
//! through the mapping/interval generator of its driving dependency.

use crate::cfd_gen::generate_cfd_column;
use crate::interval::{generate_dd_column, generate_od_column};
use crate::mapping::{
    generate_afd_column, generate_fd_column, generate_nd_column, generate_ofd_column,
};
use crate::sampler::{collect_typed, sample_typed_column, sample_typed_column_from_distribution};
use mp_metadata::{Dependency, MetadataPackage, PlanStep};
use mp_relation::{AttrKind, Attribute, Column, Domain, Relation, Result, Schema, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Options for the synthesis attack.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of tuples to generate. In VFL the intersection size is known
    /// to both parties after PSI, so the adversary uses the true N.
    pub n_rows: usize,
    /// RNG seed; experiments average over many seeds.
    pub seed: u64,
    /// Use shared dependencies for generation. With `false` the adversary
    /// ignores them — the paper's "Random Generation" baseline.
    pub use_dependencies: bool,
}

impl SynthConfig {
    /// Random-generation baseline (§III-A): domains only.
    pub fn random_baseline(n_rows: usize, seed: u64) -> Self {
        Self {
            n_rows,
            seed,
            use_dependencies: false,
        }
    }

    /// Dependency-driven attack (§III-B/§IV).
    pub fn with_dependencies(n_rows: usize, seed: u64) -> Self {
        Self {
            n_rows,
            seed,
            use_dependencies: true,
        }
    }
}

/// The adversary.
#[derive(Debug, Clone)]
pub struct Adversary {
    package: MetadataPackage,
}

impl Adversary {
    /// Creates an adversary holding the (possibly redacted) metadata it
    /// received.
    pub fn new(package: MetadataPackage) -> Self {
        Self { package }
    }

    /// The metadata the adversary holds.
    pub fn package(&self) -> &MetadataPackage {
        &self.package
    }

    /// Synthesises `R_syn`.
    ///
    /// Attributes without a shared domain cannot be generated and come out
    /// as all-null columns (the adversary knows the name but nothing about
    /// the values) — this is exactly why the paper's recommended policy of
    /// withholding domains blocks the attack.
    pub fn synthesize(&self, config: &SynthConfig) -> Result<Relation> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.n_rows;
        let arity = self.package.arity();
        let mut columns: Vec<Option<Column>> = vec![None; arity];

        let plan = if config.use_dependencies {
            self.package
                .dependency_graph()
                .map(|g| g.plan())
                .unwrap_or_else(|_| (0..arity).map(|attr| PlanStep::Free { attr }).collect())
        } else {
            (0..arity).map(|attr| PlanStep::Free { attr }).collect()
        };

        for step in &plan {
            let attr = step.attr();
            let meta = &self.package.attributes[attr];
            let domain = meta.domain.as_ref();
            // A shared distribution is strictly richer than a domain: use
            // it for free generation whenever present.
            if matches!(step, PlanStep::Free { .. }) {
                if let Some(dist) = &meta.distribution {
                    columns[attr] = Some(sample_typed_column_from_distribution(dist, n, &mut rng));
                    continue;
                }
            }
            let col = match (step, domain) {
                // No domain shared: nothing to sample from.
                (_, None) => collect_typed(vec![Value::Null; n]),
                (PlanStep::Free { .. }, Some(dom)) => sample_typed_column(dom, n, &mut rng),
                (PlanStep::Derive { dep, .. }, Some(dom)) => {
                    let dep = &self.package.dependencies[*dep];
                    collect_typed(self.derive_column(dep, &columns, dom, n, &mut rng))
                }
            };
            columns[attr] = Some(col);
        }

        let attrs: Vec<Attribute> = self
            .package
            .attributes
            .iter()
            .map(|a| {
                let kind = a.kind.unwrap_or(match &a.domain {
                    Some(Domain::Continuous { .. }) => AttrKind::Continuous,
                    _ => AttrKind::Categorical,
                });
                Attribute::new(a.name.clone(), kind)
            })
            .collect();
        let columns: Vec<Column> = columns
            .into_iter()
            // lint: allow(no-panic) reason="the generation plan covers every attribute exactly once; a hole is a planner bug"
            .map(|c| c.expect("plan covers all attributes"))
            .collect();
        Relation::from_typed_columns(Schema::new(attrs)?, columns)
    }

    /// Generates one dependent column through `dep`, given the columns
    /// already generated (the plan guarantees the determinants exist).
    fn derive_column(
        &self,
        dep: &Dependency,
        columns: &[Option<Column>],
        rhs_domain: &Domain,
        n: usize,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // The mapping/interval generators work on owned values — the
        // typed determinant columns materialise at this boundary only.
        let lhs_owned: Vec<Vec<Value>> = dep
            .lhs()
            .iter()
            .map(|a| {
                columns[a]
                    .as_ref()
                    // lint: allow(no-panic) reason="the plan topologically orders dependents after their determinants; absence is a planner bug"
                    .expect("determinant generated before dependent")
                    .to_values()
            })
            .collect();
        let lhs_cols: Vec<&[Value]> = lhs_owned.iter().map(Vec::as_slice).collect();
        match dep {
            Dependency::Fd(_) => generate_fd_column(&lhs_cols, rhs_domain, n, rng),
            Dependency::Afd(afd) => {
                generate_afd_column(&lhs_cols, rhs_domain, afd.g3_threshold, n, rng)
            }
            // lint: allow(no-literal-index) reason="Od/Nd/Dd/Ofd dependencies have a single-attribute determinant by construction"
            Dependency::Od(od) => generate_od_column(lhs_cols[0], rhs_domain, od.direction, n, rng),
            // lint: allow(no-literal-index) reason="Od/Nd/Dd/Ofd dependencies have a single-attribute determinant by construction"
            Dependency::Nd(nd) => generate_nd_column(lhs_cols[0], rhs_domain, nd.k, n, rng),
            Dependency::Dd(dd) => {
                // lint: allow(no-literal-index) reason="Od/Nd/Dd/Ofd dependencies have a single-attribute determinant by construction"
                generate_dd_column(lhs_cols[0], rhs_domain, dd.eps_lhs, dd.delta_rhs, n, rng)
            }
            // lint: allow(no-literal-index) reason="Od/Nd/Dd/Ofd dependencies have a single-attribute determinant by construction"
            Dependency::Ofd(_) => generate_ofd_column(lhs_cols[0], rhs_domain, n, rng),
            Dependency::Cfd(cfd) => {
                // CFD pattern cells are positional; rebuild the columns in
                // tableau order rather than sorted-set order.
                let cols_owned: Vec<Vec<Value>> = cfd
                    .lhs
                    .iter()
                    .map(|(a, _)| {
                        columns[*a]
                            .as_ref()
                            // lint: allow(no-panic) reason="the plan topologically orders dependents after their determinants; absence is a planner bug"
                            .expect("determinant generated before dependent")
                            .to_values()
                    })
                    .collect();
                let cols: Vec<&[Value]> = cols_owned.iter().map(Vec::as_slice).collect();
                generate_cfd_column(cfd, &cols, rhs_domain, n, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_metadata::{Fd, NumericalDep, OrderDep, SharePolicy};

    fn package() -> MetadataPackage {
        let rel = mp_datasets::employee();
        MetadataPackage::describe(
            "a",
            &rel,
            vec![
                Fd::new(0usize, 1).into(),         // Name → Age
                OrderDep::ascending(3, 1).into(),  // Salary orders Age
                NumericalDep::new(2, 3, 2).into(), // Dept →≤2 Salary
            ],
        )
        .unwrap()
    }

    #[test]
    fn synthesis_matches_schema_and_size() {
        let adv = Adversary::new(package());
        let syn = adv
            .synthesize(&SynthConfig::with_dependencies(50, 1))
            .unwrap();
        assert_eq!(syn.n_rows(), 50);
        assert_eq!(syn.arity(), 4);
        assert_eq!(syn.schema().attribute(0).unwrap().name, "Name");
    }

    #[test]
    fn generated_values_stay_in_shared_domains() {
        let pkg = package();
        let adv = Adversary::new(pkg.clone());
        let syn = adv
            .synthesize(&SynthConfig::with_dependencies(100, 2))
            .unwrap();
        for (i, meta) in pkg.attributes.iter().enumerate() {
            let dom = meta.domain.as_ref().unwrap();
            for v in syn.column_values(i).unwrap() {
                assert!(dom.contains(&v), "attr {i}: {v} outside {dom}");
            }
        }
    }

    #[test]
    fn shared_dependencies_hold_on_synthetic_data() {
        // The defining property of the attack: R_syn satisfies every shared
        // dependency that drove generation.
        let pkg = package();
        let adv = Adversary::new(pkg.clone());
        let syn = adv
            .synthesize(&SynthConfig::with_dependencies(200, 3))
            .unwrap();
        // Name → Age drove attr 1 (FD preferred by the planner).
        assert!(Fd::new(0usize, 1).holds(&syn).unwrap());
        // Dept →≤2 Salary drove attr 3.
        assert!(NumericalDep::new(2, 3, 2).holds(&syn).unwrap());
    }

    #[test]
    fn random_baseline_ignores_dependencies() {
        let adv = Adversary::new(package());
        let syn = adv
            .synthesize(&SynthConfig::random_baseline(300, 4))
            .unwrap();
        // With 300 rows over 4 names and independent ages the FD breaks
        // (same name must collide with different ages).
        assert!(!Fd::new(0usize, 1).holds(&syn).unwrap());
    }

    #[test]
    fn determinism_per_seed() {
        let adv = Adversary::new(package());
        let a = adv
            .synthesize(&SynthConfig::with_dependencies(40, 9))
            .unwrap();
        let b = adv
            .synthesize(&SynthConfig::with_dependencies(40, 9))
            .unwrap();
        let c = adv
            .synthesize(&SynthConfig::with_dependencies(40, 10))
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn redacted_domains_block_generation() {
        let pkg = SharePolicy::PAPER_RECOMMENDED.apply(&package());
        let adv = Adversary::new(pkg);
        let syn = adv
            .synthesize(&SynthConfig::with_dependencies(20, 5))
            .unwrap();
        for c in 0..syn.arity() {
            assert!(
                syn.column(c).unwrap().iter().all(|v| v.is_null()),
                "column {c} should be unguessable without a domain"
            );
        }
    }

    #[test]
    fn invalid_dependency_graph_falls_back_to_free() {
        let mut pkg = package();
        pkg.dependencies.push(Fd::new(0usize, 99).into()); // out of range
        let adv = Adversary::new(pkg);
        let syn = adv
            .synthesize(&SynthConfig::with_dependencies(10, 6))
            .unwrap();
        assert_eq!(syn.n_rows(), 10);
    }

    #[test]
    fn echocardiogram_end_to_end() {
        let rel = mp_datasets::echocardiogram();
        let deps = mp_datasets::verified_dependencies();
        let pkg = MetadataPackage::describe("hospital", &rel, deps.clone()).unwrap();
        let adv = Adversary::new(pkg);
        let syn = adv
            .synthesize(&SynthConfig::with_dependencies(rel.n_rows(), 7))
            .unwrap();
        assert_eq!(syn.n_rows(), 132);
        assert_eq!(syn.arity(), 13);
    }
}
