//! Generation under a conditional functional dependency.
//!
//! The CFD is the one dependency class whose metadata carries raw data
//! values (tableau constants), so the adversary can do better than random
//! on the matching partition: rows whose generated determinants match the
//! LHS pattern receive the RHS constant *verbatim* (constant CFDs), or go
//! through an FD mapping restricted to the matching partition (variable
//! CFDs). Non-matching rows fall back to uniform generation.

use crate::mapping::generate_fd_column;
use crate::sampler::sample_uniform;
use mp_metadata::{ConditionalFd, PatternCell};
use mp_relation::{Domain, Value};
use rand::Rng;

/// Generates the dependent column of `cfd` given the already-generated
/// determinant columns (`lhs_cols[i]` corresponds to `cfd.lhs[i]`).
pub fn generate_cfd_column<R: Rng + ?Sized>(
    cfd: &ConditionalFd,
    lhs_cols: &[&[Value]],
    rhs_domain: &Domain,
    n_rows: usize,
    rng: &mut R,
) -> Vec<Value> {
    assert_eq!(lhs_cols.len(), cfd.lhs.len(), "one column per pattern cell");
    let matches: Vec<bool> = (0..n_rows)
        .map(|r| {
            cfd.lhs
                .iter()
                .zip(lhs_cols)
                .all(|((_, cell), col)| cell.matches(&col[r]))
        })
        .collect();

    match &cfd.rhs_pattern {
        PatternCell::Const(c) => (0..n_rows)
            .map(|r| {
                if matches[r] {
                    c.clone()
                } else {
                    sample_uniform(rhs_domain, rng)
                }
            })
            .collect(),
        PatternCell::Wildcard => {
            // FD mapping keyed on the wildcard determinants, applied only
            // to matching rows; the rest are uniform.
            let wildcard_cols: Vec<&[Value]> = cfd
                .lhs
                .iter()
                .zip(lhs_cols)
                .filter(|((_, cell), _)| matches!(cell, PatternCell::Wildcard))
                .map(|(_, col)| *col)
                .collect();
            let mapped = if wildcard_cols.is_empty() {
                // Pure-constant LHS with free RHS: one shared value for the
                // whole partition (the FD on zero key attributes).
                let v = sample_uniform(rhs_domain, rng);
                vec![v; n_rows]
            } else {
                generate_fd_column(&wildcard_cols, rhs_domain, n_rows, rng)
            };
            (0..n_rows)
                .map(|r| {
                    if matches[r] {
                        mapped[r].clone()
                    } else {
                        sample_uniform(rhs_domain, rng)
                    }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Relation, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lhs(n: usize, card: usize) -> Vec<Value> {
        (0..n).map(|i| Value::Int((i % card) as i64)).collect()
    }

    #[test]
    fn constant_cfd_forces_value_on_matches() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = lhs(90, 3);
        let cfd = ConditionalFd::constant(0, 1i64, 1, 7i64);
        let dom = Domain::categorical((0i64..10).collect::<Vec<_>>());
        let y = generate_cfd_column(&cfd, &[&x], &dom, 90, &mut rng);
        for (xi, yi) in x.iter().zip(&y) {
            if *xi == Value::Int(1) {
                assert_eq!(*yi, Value::Int(7));
            }
            assert!(dom.contains(yi) || *yi == Value::Int(7));
        }
        // Non-matching rows are not all the constant.
        assert!(x
            .iter()
            .zip(&y)
            .any(|(xi, yi)| *xi != Value::Int(1) && *yi != Value::Int(7)));
    }

    #[test]
    fn generated_pair_satisfies_the_cfd() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = lhs(120, 4);
        let cfd = ConditionalFd::constant(0, 2i64, 1, 0i64);
        let dom = Domain::categorical((0i64..5).collect::<Vec<_>>());
        let y = generate_cfd_column(&cfd, &[&x], &dom, 120, &mut rng);
        let schema = Schema::new(vec![
            Attribute::categorical("x"),
            Attribute::categorical("y"),
        ])
        .unwrap();
        let rel = Relation::from_columns(schema, vec![x, y]).unwrap();
        assert!(cfd.holds(&rel).unwrap());
    }

    #[test]
    fn variable_cfd_respects_partition_fd() {
        let mut rng = StdRng::seed_from_u64(3);
        let cond = lhs(200, 2); // attrs 0 (condition) and 1 (fd key)
        let key = lhs(200, 5);
        let cfd = ConditionalFd::variable(0, 0i64, 1, 2);
        let dom = Domain::categorical((0i64..8).collect::<Vec<_>>());
        let y = generate_cfd_column(&cfd, &[&cond, &key], &dom, 200, &mut rng);
        let schema = Schema::new(vec![
            Attribute::categorical("cond"),
            Attribute::categorical("key"),
            Attribute::categorical("y"),
        ])
        .unwrap();
        let rel = Relation::from_columns(schema, vec![cond, key, y]).unwrap();
        assert!(cfd.holds(&rel).unwrap());
    }

    #[test]
    fn all_constant_lhs_with_wildcard_rhs() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = lhs(40, 2);
        let cfd = ConditionalFd {
            lhs: vec![(0, PatternCell::Const(Value::Int(0)))],
            rhs: 1,
            rhs_pattern: PatternCell::Wildcard,
        };
        let dom = Domain::categorical((0i64..6).collect::<Vec<_>>());
        let y = generate_cfd_column(&cfd, &[&x], &dom, 40, &mut rng);
        // All matching rows share one value.
        let matched: Vec<&Value> = x
            .iter()
            .zip(&y)
            .filter(|(xi, _)| **xi == Value::Int(0))
            .map(|(_, yi)| yi)
            .collect();
        assert!(matched.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn empty_input() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfd = ConditionalFd::constant(0, 1i64, 1, 2i64);
        let dom = Domain::categorical(vec![0i64]);
        let empty: &[Value] = &[];
        assert!(generate_cfd_column(&cfd, &[empty], &dom, 0, &mut rng).is_empty());
    }
}
