//! Property-based tests: every generator's output satisfies the dependency
//! that drove it, over randomised domains, sizes and seeds.

use mp_metadata::{
    ConditionalFd, DifferentialDep, Fd, MetricFd, NumericalDep, OrderDep, OrderDirection, OrderedFd,
};
use mp_relation::{Attribute, Domain, Relation, Schema, Value};
use mp_synth::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rel2(x: Vec<Value>, x_cat: bool, y: Vec<Value>, y_cat: bool) -> Relation {
    let attr = |name: &str, cat: bool| {
        if cat {
            Attribute::categorical(name)
        } else {
            Attribute::continuous(name)
        }
    };
    Relation::from_columns(
        Schema::new(vec![attr("x", x_cat), attr("y", y_cat)]).unwrap(),
        vec![x, y],
    )
    .unwrap()
}

fn lhs_column(n: usize, card: usize, seed: u64) -> Vec<Value> {
    let dom = Domain::categorical((0..card as i64).collect::<Vec<_>>());
    let mut rng = StdRng::seed_from_u64(seed);
    sample_column(&dom, n, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fd_generator_always_satisfies_fd(
        n in 1usize..150,
        card_x in 1usize..10,
        card_y in 1usize..10,
        seed in 0u64..10_000,
    ) {
        let x = lhs_column(n, card_x, seed);
        let dom_y = Domain::categorical((0..card_y as i64).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let y = generate_fd_column(&[&x], &dom_y, n, &mut rng);
        prop_assert!(Fd::new(0usize, 1).holds(&rel2(x, true, y, true)).unwrap());
    }

    #[test]
    fn nd_generator_respects_k(
        n in 1usize..150,
        card_x in 1usize..8,
        card_y in 2usize..16,
        k in 1usize..16,
        seed in 0u64..10_000,
    ) {
        let x = lhs_column(n, card_x, seed);
        let dom_y = Domain::categorical((0..card_y as i64).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let y = generate_nd_column(&x, &dom_y, k, n, &mut rng);
        let rel = rel2(x, true, y, true);
        prop_assert!(NumericalDep::new(0, 1, k.min(card_y)).holds(&rel).unwrap());
    }

    #[test]
    fn od_generator_satisfies_both_directions(
        n in 1usize..150,
        card_x in 1usize..10,
        seed in 0u64..10_000,
        descending in any::<bool>(),
        categorical_y in any::<bool>(),
    ) {
        let x = lhs_column(n, card_x, seed);
        let dom_y = if categorical_y {
            Domain::categorical((0i64..12).collect::<Vec<_>>())
        } else {
            Domain::continuous(-5.0, 5.0)
        };
        let dir = if descending {
            OrderDirection::Descending
        } else {
            OrderDirection::Ascending
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCAFE);
        let y = generate_od_column(&x, &dom_y, dir, n, &mut rng);
        let rel = rel2(x, true, y, categorical_y);
        let od = OrderDep { lhs: 0, rhs: 1, direction: dir };
        prop_assert!(od.holds(&rel).unwrap());
    }

    #[test]
    fn ofd_generator_is_fd_plus_od(
        n in 1usize..120,
        card_x in 1usize..10,
        card_y in 1usize..30,
        seed in 0u64..10_000,
    ) {
        let x = lhs_column(n, card_x, seed);
        let dom_y = Domain::categorical((0..card_y as i64).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let y = generate_ofd_column(&x, &dom_y, n, &mut rng);
        let rel = rel2(x, true, y, true);
        prop_assert!(Fd::new(0usize, 1).holds(&rel).unwrap());
        prop_assert!(OrderDep::ascending(0, 1).holds(&rel).unwrap());
        // Full strictness whenever the codomain is large enough.
        let distinct = rel.distinct_count(0).unwrap();
        if distinct <= card_y {
            prop_assert!(OrderedFd::new(0, 1).holds(&rel).unwrap());
        }
    }

    #[test]
    fn dd_generator_satisfies_dd(
        n in 1usize..120,
        eps in 0.01f64..5.0,
        delta in 0.0f64..5.0,
        seed in 0u64..10_000,
    ) {
        let dom_x = Domain::continuous(0.0, 20.0);
        let dom_y = Domain::continuous(0.0, 10.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = sample_column(&dom_x, n, &mut rng);
        let y = generate_dd_column(&x, &dom_y, eps, delta, n, &mut rng);
        let rel = rel2(x, false, y, false);
        prop_assert!(DifferentialDep::new(0, 1, eps, delta).holds(&rel).unwrap());
    }

    #[test]
    fn afd_generator_g3_bounded(
        n in 50usize..300,
        card_x in 2usize..8,
        eps in 0.0f64..0.4,
        seed in 0u64..10_000,
    ) {
        let x = lhs_column(n, card_x, seed);
        let dom_y = Domain::categorical((0i64..6).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
        let y = generate_afd_column(&[&x], &dom_y, eps, n, &mut rng);
        let rel = rel2(x, true, y, true);
        let g3 = Fd::new(0usize, 1).g3_error(&rel).unwrap();
        // g3 concentrates well below the perturbation rate (each perturbed
        // row violates at most once, some land on the mapped value).
        prop_assert!(g3 <= eps + 0.25, "g3 {} vs eps {}", g3, eps);
    }

    #[test]
    fn cfd_generator_satisfies_cfd(
        n in 1usize..150,
        card_x in 1usize..6,
        card_y in 1usize..6,
        pattern_x in 0i64..6,
        pattern_y in 0i64..6,
        seed in 0u64..10_000,
    ) {
        let x = lhs_column(n, card_x, seed);
        let dom_y = Domain::categorical((0..card_y as i64).collect::<Vec<_>>());
        let cfd = ConditionalFd::constant(0, pattern_x, 1, pattern_y);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAAAA);
        let y = generate_cfd_column(&cfd, &[&x], &dom_y, n, &mut rng);
        let rel = rel2(x, true, y, true);
        prop_assert!(cfd.holds(&rel).unwrap());
    }

    #[test]
    fn distribution_sampling_preserves_support(
        weights in prop::collection::vec(0.01f64..1.0, 1..8),
        n in 1usize..200,
        seed in 0u64..10_000,
    ) {
        use mp_metadata::Distribution;
        let total: f64 = weights.iter().sum();
        let dist = Distribution::Categorical(
            weights
                .iter()
                .enumerate()
                .map(|(i, w)| (Value::Int(i as i64), w / total))
                .collect(),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let col = sample_column_from_distribution(&dist, n, &mut rng);
        for v in col {
            let idx = v.as_i64().unwrap() as usize;
            prop_assert!(idx < weights.len());
        }
    }

    #[test]
    fn fd_generation_mse_behaviour_is_metric_consistent(
        n in 10usize..100,
        seed in 0u64..1000,
    ) {
        // Generated continuous FD images stay inside the domain, so the
        // MFD with delta = range holds trivially — a consistency link
        // between the generator and the metric-FD class.
        let x = lhs_column(n, 5, seed);
        let dom_y = Domain::continuous(2.0, 12.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let y = generate_fd_column(&[&x], &dom_y, n, &mut rng);
        let rel = rel2(x, true, y, false);
        prop_assert!(MetricFd::new(0, 1, 10.0).holds(&rel).unwrap());
        // And the FD itself gives tight delta 0 per partition.
        prop_assert_eq!(MetricFd::tight_delta(0, 1, &rel).unwrap(), Some(0.0));
    }
}
