//! Offline vendored subset of the `proptest` API.
//!
//! Implements the surface this workspace uses: the [`Strategy`] trait with
//! `prop_map`, range / tuple / regex-literal strategies, `prop::collection::vec`,
//! `prop::option::of`, `any::<T>()`, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros. Instead of upstream's shrinking test runner, cases
//! are sampled from a PRNG seeded deterministically from the test's module
//! path and case index, so failures reproduce exactly across runs.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;

pub mod test_runner;

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform + PartialOrd + Copy> Strategy for std::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: rand::SampleUniform + PartialOrd + Copy> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---- regex-literal string strategies ---------------------------------

/// One parsed atom of the supported regex subset.
enum RegexAtom {
    /// A set of candidate characters with a repetition count range.
    Class {
        chars: Vec<char>,
        min: usize,
        max: usize,
    },
}

/// Parses the regex subset used as string strategies: sequences of
/// literal characters and character classes `[a-z0-9_]`, each optionally
/// followed by `{n}` or `{m,n}`. Panics on anything else — strategies are
/// test-author input, not user data.
fn parse_simple_regex(pattern: &str) -> Vec<RegexAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in regex `{pattern}`"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range in regex `{pattern}`");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                let lit = chars.get(i + 1).copied().unwrap_or('\\');
                i += 2;
                vec![lit]
            }
            c => {
                assert!(
                    !"(){}|*+?.^$".contains(c),
                    "unsupported regex construct `{c}` in `{pattern}`"
                );
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in regex `{pattern}`"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repetition min"),
                    n.trim().parse().expect("bad repetition max"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(RegexAtom::Class {
            chars: class,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in parse_simple_regex(self) {
            let RegexAtom::Class { chars, min, max } = atom;
            let count = if min == max {
                min
            } else {
                rng.gen_range(min..=max)
            };
            for _ in 0..count {
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

// ---- any::<T>() ------------------------------------------------------

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Raw bit patterns so NaN / infinities / subnormals all appear.
        f64::from_bits(rand::RngCore::next_u64(rng))
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        f32::from_bits(rand::RngCore::next_u64(rng) as u32)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`, covering the full bit range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- prop:: namespace ------------------------------------------------

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Number-of-elements specification for [`vec()`].
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        /// Strategy for `Vec`s of values from `element` with a length
        /// drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = if self.size.min == self.size.max {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..=self.size.max)
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::*;

        /// Strategy for `Option`s of values from `inner` (mostly `Some`).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// Strategy returned by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
                if rng.gen_bool(0.75) {
                    Some(self.inner.sample(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// The glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy,
    };
}

// ---- macros ----------------------------------------------------------

/// Defines deterministic property tests.
///
/// Supports the upstream form: an optional
/// `#![proptest_config(expr)]` header followed by
/// `fn name(arg in strategy, ...) { body }` items, each of which becomes
/// a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config($config) $($rest)* }
    };
    (@with_config($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases {
                let mut proptest_case_rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case as u64,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_case_rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} of {}: {}", case, stringify!($name), msg);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Fails the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property-test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Rejects (skips) the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = crate::test_runner::case_rng("regex", 0);
        for _ in 0..50 {
            let s = Strategy::sample(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::sample(&"[A-C0-2]{4}", &mut rng);
            assert_eq!(t.len(), 4);
            assert!(t.chars().all(|c| "ABC012".contains(c)));
            let u = Strategy::sample(&"x[ab]", &mut rng);
            assert!(u == "xa" || u == "xb");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = prop::collection::vec(0i64..100, 0..20);
        let a: Vec<Vec<i64>> = (0..10)
            .map(|i| strat.sample(&mut crate::test_runner::case_rng("d", i)))
            .collect();
        let b: Vec<Vec<i64>> = (0..10)
            .map(|i| strat.sample(&mut crate::test_runner::case_rng("d", i)))
            .collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|v| !v.is_empty()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn macro_forms_work(
            n in 1usize..10,
            xs in prop::collection::vec(0i64..5, 3),
            flag in any::<bool>(),
            pair in (0u32..4, "[a-z]{1,3}"),
        ) {
            prop_assume!(n > 0);
            prop_assert!(n < 10, "n was {}", n);
            prop_assert_eq!(xs.len(), 3);
            let _ = (flag, pair);
        }
    }
}
