//! Deterministic case runner support for the vendored `proptest`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Property-test configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases each property test runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was skipped by `prop_assume!`.
    Reject(String),
    /// The case failed a `prop_assert!` / `prop_assert_eq!`.
    Fail(String),
}

/// Deterministic per-case PRNG: seeded from the test's identity and case
/// index via `DefaultHasher` (fixed keys), so every run samples the same
/// inputs and failures reproduce exactly.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut hasher);
    case.hash(&mut hasher);
    StdRng::seed_from_u64(hasher.finish())
}
