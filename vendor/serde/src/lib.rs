//! Offline vendored subset of the `serde` API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the small serialization surface the workspace uses. Instead of serde's
//! visitor architecture, values serialize into a [`Content`] tree that
//! `serde_json` (also vendored) renders/parses. The derive macros from
//! the sibling `serde_derive` crate generate impls of the two traits
//! here, with serde's external enum tagging, so the JSON wire shape of
//! the workspace's metadata packages matches upstream serde for every
//! type the workspace defines.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree (the JSON data model).
///
/// Maps preserve insertion order so serialized output is stable and
/// follows field declaration order, like serde's derive.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (beyond `i64::MAX`, or from unsigned sources).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map view, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence view, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String view, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Looks a field up in a map's entries (linear: maps are tiny).
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X while deserializing T, found Y".
    pub fn expected(what: &str, ty: &str, found: &Content) -> Self {
        DeError(format!("expected {what} for {ty}, found {}", found.kind()))
    }

    /// A missing struct field.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An unknown enum variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for enum {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Content`] tree.
pub trait Serialize {
    /// The content-tree form of `self`.
    fn to_content(&self) -> Content;
}

/// Deserialization from the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a content tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let wide: i128 = match c {
                    Content::I64(i) => *i as i128,
                    Content::U64(u) => *u as i128,
                    Content::F64(f) if f.fract() == 0.0 => *f as i128,
                    other => return Err(DeError::expected("integer", stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!(
                        "integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let wide: u128 = match c {
                    Content::I64(i) if *i >= 0 => *i as u128,
                    Content::U64(u) => *u as u128,
                    Content::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u128,
                    other => return Err(DeError::expected("unsigned integer", stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!(
                        "integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(f) => Ok(*f as $t),
                    Content::I64(i) => Ok(*i as $t),
                    Content::U64(u) => Ok(*u as $t),
                    other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", "char", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                const LEN: usize = [$($idx as usize),+].len();
                match c {
                    Content::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("fixed-size array", "tuple", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items
                .iter()
                .map(|entry| match entry.as_seq() {
                    Some([k, v]) => Ok((K::from_content(k)?, V::from_content(v)?)),
                    _ => Err(DeError::expected("[key, value] pair", "BTreeMap", entry)),
                })
                .collect(),
            other => Err(DeError::expected("array of pairs", "BTreeMap", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some = Some(3usize).to_content();
        assert_eq!(Option::<usize>::from_content(&some), Ok(Some(3usize)));
        assert_eq!(Option::<usize>::from_content(&Content::Null), Ok(None));
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(f64::from_content(&Content::I64(3)), Ok(3.0));
        assert_eq!(usize::from_content(&Content::I64(7)), Ok(7));
        assert!(usize::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn tuple_roundtrip() {
        let c = (1usize, "x".to_owned()).to_content();
        assert_eq!(
            <(usize, String)>::from_content(&c),
            Ok((1usize, "x".to_owned()))
        );
    }
}
