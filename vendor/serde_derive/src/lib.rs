//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no crates.io access (so no `syn`/`quote`);
//! this crate parses the derive input token stream by hand. It supports
//! exactly the shapes the workspace derives on:
//!
//! * structs with named fields (honouring `#[serde(default)]`),
//! * tuple structs (newtype structs serialize transparently),
//! * enums with unit, tuple and struct variants (serde's external
//!   tagging: `"Variant"`, `{"Variant": payload}`).
//!
//! Generics, lifetimes and other serde attributes are rejected with a
//! compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- input model -----------------------------------------------------

struct Field {
    name: String,
    default: bool,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Data {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    data: Data,
}

// ---- token-stream parsing --------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == kw)
    }

    /// Consumes attributes (`#[...]`), returning true if any of them is
    /// `#[serde(default)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut has_default = false;
        while self.at_punct('#') {
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                let text = g.stream().to_string().replace(' ', "");
                if text.starts_with("serde(") && text.contains("default") {
                    has_default = true;
                }
            }
        }
        has_default
    }

    /// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }

    /// Consumes type tokens up to (not including) a top-level comma,
    /// tracking `<`/`>` depth so `Map<K, V>` does not split early.
    fn skip_type(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let default = c.skip_attrs();
        c.skip_visibility();
        let name = c.expect_ident("field name");
        assert!(
            c.at_punct(':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        c.next();
        c.skip_type();
        if c.at_punct(',') {
            c.next();
        }
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    let mut count = 0;
    while c.peek().is_some() {
        c.skip_attrs();
        c.skip_visibility();
        c.skip_type();
        count += 1;
        if c.at_punct(',') {
            c.next();
        }
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(group);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs();
        let name = c.expect_ident("variant name");
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                c.next();
                Shape::Tuple(count_tuple_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                c.next();
                Shape::Named(parse_named_fields(inner))
            }
            _ => Shape::Unit,
        };
        if c.at_punct('=') {
            // Explicit discriminant: skip to the comma.
            while c.peek().is_some() && !c.at_punct(',') {
                c.next();
            }
        }
        if c.at_punct(',') {
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let kind = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if c.at_punct('<') {
        panic!("serde_derive (vendored): generic types are not supported; write the impl by hand");
    }
    let data = match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Shape::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Shape::Unit),
            other => panic!("serde_derive: unsupported struct body: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde_derive: expected struct or enum, found `{other}`"),
    };
    Input { name, data }
}

// ---- code generation -------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Shape::Named(fields)) => {
            let mut s = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_content(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Content::Map(__fields)");
            s
        }
        Data::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_content(&self.0)".to_owned(),
        Data::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Data::Struct(Shape::Unit) => {
            format!("::serde::Content::Str(::std::string::String::from(\"{name}\"))")
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_content(__f0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Content::Seq(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_content({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Content::Map(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn to_content(&self) -> ::serde::Content {{\n        {body}\n    }}\n}}\n"
    )
}

fn named_fields_ctor(ty_path: &str, ty_label: &str, fields: &[Field], map_expr: &str) -> String {
    let mut s = format!("{ty_path} {{\n");
    for f in fields {
        let missing = if f.default {
            "::std::default::Default::default()".to_owned()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{}\", \"{ty_label}\"))",
                f.name
            )
        };
        s.push_str(&format!(
            "{0}: match ::serde::content_get({map_expr}, \"{0}\") {{\n                ::std::option::Option::Some(__v) => ::serde::Deserialize::from_content(__v)?,\n                ::std::option::Option::None => {missing},\n            }},\n",
            f.name
        ));
    }
    s.push('}');
    s
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Shape::Named(fields)) => {
            let ctor = named_fields_ctor(name, name, fields, "__map");
            format!(
                "let __map = __c.as_map().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\", __c))?;\n::std::result::Result::Ok({ctor})"
            )
        }
        Data::Struct(Shape::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Data::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = __c.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\", __c))?;\nif __seq.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong tuple length for {name}\")); }}\n::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Data::Struct(Shape::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Shape::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_content(__v)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_content(&__seq[{i}])?")
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n  let __seq = __v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}::{vn}\", __v))?;\n  if __seq.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong payload length for {name}::{vn}\")); }}\n  ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let ctor = named_fields_ctor(
                            &format!("{name}::{vn}"),
                            &format!("{name}::{vn}"),
                            fields,
                            "__vmap",
                        );
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n  let __vmap = __v.as_map().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}::{vn}\", __v))?;\n  ::std::result::Result::Ok({ctor})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n}},\n\
                 ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = &__m[0];\n\
                 match __k.as_str() {{\n{payload_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::expected(\"string or single-key object\", \"{name}\", __other)),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n        {body}\n    }}\n}}\n"
    )
}

/// Derives the vendored `serde::Serialize` (content-tree form).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` (content-tree form).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl parses")
}
