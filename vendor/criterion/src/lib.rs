//! Offline vendored subset of the `criterion` API.
//!
//! Provides the `Criterion` / `BenchmarkGroup` / `Bencher` surface the
//! workspace's benches use, backed by a plain warm-up + sampled timing
//! loop instead of criterion's statistical machinery. Results print as
//! `group/id  time: [min mean max]` lines on stdout.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Benchmark driver: holds timing configuration and runs benchmarks.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(700),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total duration over which samples are spread.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let label = id.into_benchmark_id().text;
        let mut bencher = Bencher::new(self);
        f(&mut bencher);
        bencher.report(&label);
    }
}

/// A named collection of benchmarks sharing the driver's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    fn label(&self, id: BenchmarkId) -> String {
        format!("{}/{}", self.name, id.text)
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let label = self.label(id.into_benchmark_id());
        let mut bencher = Bencher::new(self.criterion);
        f(&mut bencher);
        bencher.report(&label);
    }

    /// Runs one benchmark in this group, passing `input` to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = self.label(id.into_benchmark_id());
        let mut bencher = Bencher::new(self.criterion);
        f(&mut bencher, input);
        bencher.report(&label);
    }

    /// Ends the group (separator line, matching upstream's explicit close).
    pub fn finish(self) {
        println!();
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/param`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so string literals work as ids.
pub trait IntoBenchmarkId {
    /// Converts `self` into a benchmark id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            text: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { text: self }
    }
}

/// Times closures: warm-up to calibrate, then `sample_size` timed samples.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(config: &Criterion) -> Self {
        Bencher {
            sample_size: config.sample_size,
            warm_up_time: config.warm_up_time,
            measurement_time: config.measurement_time,
            samples_ns: Vec::new(),
        }
    }

    /// Benchmarks `routine`, keeping its output alive so the optimizer
    /// cannot discard the computation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Spread the measurement budget across the configured samples.
        let budget_per_sample = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_per_sample / est_ns) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    fn report(&self, label: &str) {
        if self.samples_ns.is_empty() {
            println!("{label:<50} (no samples — b.iter was never called)");
            return;
        }
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(0.0f64, f64::max);
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        println!(
            "{label:<50} time: [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Defines a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("smoke");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("add", 1), &21u64, |b, &x| {
            b.iter(|| x * 2);
            ran = true;
        });
        group.finish();
        assert!(ran);
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("f", 10).text, "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).text, "7");
        assert_eq!("lit".into_benchmark_id().text, "lit");
    }
}
