//! Offline vendored subset of the `serde_json` API.
//!
//! Renders and parses the vendored `serde` [`Content`] tree as JSON.
//! Supports everything the workspace's metadata wire format needs:
//! objects, arrays, strings with escapes, integers, floats (including
//! non-finite values, written as bare `NaN` / `inf` / `-inf` tokens —
//! consumed only by this parser), booleans and null.

#![warn(missing_docs)]

use serde::{Content, Deserialize, Serialize};

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Maximum nesting depth the parser accepts. Untrusted input such as
/// `[[[[…` would otherwise recurse once per bracket and overflow the
/// stack (an abort, not a catchable panic), so depth is bounded with a
/// typed error instead. The workspace's metadata packages nest four or
/// five levels deep; 128 leaves generous headroom.
pub const MAX_DEPTH: usize = 128;

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

// ---- writer ----------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f == f64::INFINITY {
        out.push_str("inf");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-inf");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a fractional marker so floats stay visually floats.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => write_f64(*f, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space
                    }
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(Content::Null),
            Some(b't') if self.eat("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Content::Bool(false)),
            Some(b'N') if self.eat("NaN") => Ok(Content::F64(f64::NAN)),
            Some(b'i') if self.eat("inf") => Ok(Content::F64(f64::INFINITY)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-inf") => {
                self.pos += 4;
                Ok(Content::F64(f64::NEG_INFINITY))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::new(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            )));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries: Vec<(String, Content)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            // Duplicate keys would silently resolve first-wins in
            // `content_get`; reject them so a smuggled second value can
            // never disagree with the one a reader observes.
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(Error::new(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(from_str::<i64>(&to_string(&-42i64).unwrap()).unwrap(), -42);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<f64>(&to_string(&1.5f64).unwrap()).unwrap(), 1.5);
        let s = "he\"llo\n\tworld\\ üñî";
        assert_eq!(from_str::<String>(&to_string(s).unwrap()).unwrap(), s);
    }

    #[test]
    fn nonfinite_floats_roundtrip() {
        let v = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.5];
        let json = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert!(back[0].is_nan());
        assert_eq!(back[1], f64::INFINITY);
        assert_eq!(back[2], f64::NEG_INFINITY);
        assert_eq!(back[3], 0.5);
    }

    #[test]
    fn collections_roundtrip() {
        let v: Vec<(usize, String)> = vec![(1, "a".into()), (2, "b,}".into())];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(usize, String)>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        let err = from_str::<Vec<u8>>(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting deeper"));
        let deep_obj = "{\"k\":".repeat(100_000);
        assert!(from_str::<bool>(&deep_obj).is_err());
        // Depths at or under the cap still parse.
        let ok = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(from_str::<serde::Content>(&ok).is_ok());
    }

    #[test]
    fn duplicate_object_keys_are_rejected() {
        let err = from_str::<serde::Content>(r#"{"a": 1, "a": 2}"#).unwrap_err();
        assert!(err.to_string().contains("duplicate object key `a`"));
        // Same key in sibling objects is fine.
        assert!(from_str::<serde::Content>(r#"[{"a": 1}, {"a": 2}]"#).is_ok());
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<bool>("true false").is_err());
    }
}
