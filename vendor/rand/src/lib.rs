//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no crates.io access, so
//! this crate re-implements exactly the surface the workspace uses:
//! [`Rng::gen_range`] over integer/float ranges, [`Rng::gen`] for `f64`
//! and `bool`, [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12, which is fine for this
//! workspace: nothing depends on the exact stream, only on determinism
//! for a fixed seed (all tests and experiments seed explicitly).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform generator: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a half-open or inclusive range.
///
/// Implemented for the integer and float types the workspace draws.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                (low as i128).wrapping_add(uniform_u128(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                (low as i128).wrapping_add(uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = unit_f64(rng) as $t;
                let v = low + (high - low) * unit;
                // Guard against rounding up to the excluded bound.
                if v >= high { low } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let unit = unit_f64_inclusive(rng) as $t;
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform integer in `[0, span)` by rejection sampling (span ≤ u64::MAX
/// for every caller; u128 arithmetic keeps the i64 full range correct).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Rejection zone: the largest multiple of `span` that fits in u64+1.
    let zone = (u64::MAX as u128 + 1) - ((u64::MAX as u128 + 1) % span);
    loop {
        let v = rng.next_u64() as u128;
        if v < zone {
            return v % span;
        }
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f64` in `[0, 1]`.
fn unit_f64_inclusive<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for i64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(0.0..=1.0)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A value from the standard distribution, e.g. `rng.gen::<f64>()`
    /// (uniform in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256**
    /// (Blackman & Vigna), seeded via SplitMix64.
    ///
    /// Not the upstream ChaCha12 `StdRng` — streams differ, determinism
    /// and statistical quality do not.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    /// Alias: the workspace treats `SmallRng` and `StdRng` identically.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_i64_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let _ = rng.gen_range(i64::MIN..i64::MAX);
        }
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn distribution_covers_buckets() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
